"""Parallelism scaling models: speed-up curves and work inflation.

Figure 2 of the paper shows that TPC-H queries have very different parallelism
"sweet spots": Q9 on 100 GB keeps speeding up until ~40 parallel tasks, Q2
stops gaining at ~20, and Q9 on 2 GB needs only ~5.  We model each job with an
Amdahl-style speed-up curve plus a *work-inflation* term that kicks in beyond
the sweet spot (wider shuffles slow individual tasks down, §6.2 item 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["ScalingProfile", "estimated_runtime", "runtime_vs_parallelism"]


@dataclass(frozen=True)
class ScalingProfile:
    """Parallelism behaviour of one job.

    Parameters
    ----------
    sweet_spot:
        Degree of parallelism beyond which extra executors add only
        diminishing (and eventually negative) returns.
    parallel_fraction:
        Fraction of the job's work that can be parallelised (Amdahl's law).
    inflation_rate:
        How quickly per-task work inflates beyond the sweet spot: the
        multiplier is ``1 + inflation_rate * (p - sweet_spot) / sweet_spot``.
    """

    sweet_spot: float = 30.0
    parallel_fraction: float = 0.95
    inflation_rate: float = 0.35

    def work_inflation(self, parallelism: int) -> float:
        """Task-duration multiplier at the given job parallelism (>= 1)."""
        excess = max(0.0, parallelism - self.sweet_spot)
        return 1.0 + self.inflation_rate * excess / max(self.sweet_spot, 1.0)

    def as_callable(self) -> Callable[[int], float]:
        return self.work_inflation

    def scaled(self, size_gb: float, reference_gb: float = 100.0) -> "ScalingProfile":
        """Sweet spot shrinks with input size (Q9 needs 40 tasks at 100 GB but 5 at 2 GB)."""
        if size_gb <= 0:
            raise ValueError("input size must be positive")
        factor = (size_gb / reference_gb) ** 0.55
        return ScalingProfile(
            sweet_spot=max(2.0, self.sweet_spot * factor),
            parallel_fraction=self.parallel_fraction,
            inflation_rate=self.inflation_rate,
        )


def estimated_runtime(total_work: float, profile: ScalingProfile, parallelism: int) -> float:
    """Analytic estimate of job runtime at a fixed degree of parallelism.

    ``runtime(p) = serial + parallel_work * inflation(p) / p`` where ``serial``
    is the non-parallelisable fraction of the work.  This is the model used to
    regenerate Figure 2.
    """
    if parallelism < 1:
        raise ValueError("parallelism must be at least 1")
    serial = total_work * (1.0 - profile.parallel_fraction)
    parallel = total_work * profile.parallel_fraction
    return serial + parallel * profile.work_inflation(parallelism) / parallelism


def runtime_vs_parallelism(
    total_work: float, profile: ScalingProfile, max_parallelism: int = 100
) -> list[tuple[int, float]]:
    """The (parallelism, runtime) series for one job, for Figure 2."""
    return [
        (p, estimated_runtime(total_work, profile, p))
        for p in range(1, max_parallelism + 1)
    ]
