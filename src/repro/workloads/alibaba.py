"""Synthetic industrial workload (substitute for the Alibaba cluster trace).

The paper's multi-resource experiments replay ~20,000 production jobs from
Alibaba's cluster-trace-v2018.  The trace itself is not available offline, so
this module generates a statistically similar workload:

* 59% of jobs have four or more stages and a heavy tail reaches hundreds of
  stages (the paper: "some have hundreds");
* task counts and durations are heavy-tailed (log-normal);
* each stage carries a memory request in ``(0, 1]`` so the jobs exercise the
  multi-resource executor classes of §7.3;
* jobs arrive following a Poisson process.

Everything is seeded and deterministic given the generator passed in, so the
"first half for training, second half for testing" split of §7.3 is
reproducible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..simulator.jobdag import JobDAG, Node
from .scaling import ScalingProfile

__all__ = ["sample_alibaba_job", "sample_alibaba_jobs", "split_trace"]


def _sample_num_stages(rng: np.random.Generator) -> int:
    """Stage-count distribution: 41% small (1-3), 59% >= 4 with a Pareto tail."""
    if rng.random() < 0.41:
        return int(rng.integers(1, 4))
    # Heavy tail: most jobs have 4-20 stages, a few have hundreds.
    value = 4 + int(rng.pareto(1.6) * 6)
    return int(min(value, 300))


def sample_alibaba_job(
    rng: np.random.Generator,
    arrival_time: float = 0.0,
    name: Optional[str] = None,
    with_memory: bool = True,
) -> JobDAG:
    """Generate one industrial-style job DAG."""
    num_stages = _sample_num_stages(rng)
    nodes = []
    for stage_id in range(num_stages):
        num_tasks = int(np.clip(rng.lognormal(mean=1.8, sigma=1.0), 1, 2000))
        duration = float(np.clip(rng.lognormal(mean=0.8, sigma=0.8), 0.2, 120.0))
        mem_request = float(rng.uniform(0.05, 1.0)) if with_memory else 0.0
        nodes.append(
            Node(
                node_id=stage_id,
                num_tasks=num_tasks,
                task_duration=duration,
                mem_request=mem_request,
                name=f"stage-{stage_id}",
            )
        )

    # Random layered DAG: each stage depends on 1-2 earlier stages.
    edges: list[tuple[int, int]] = []
    for stage_id in range(1, num_stages):
        num_parents = int(min(stage_id, 1 + rng.integers(0, 2)))
        parents = rng.choice(stage_id, size=num_parents, replace=False)
        for parent in parents:
            edges.append((int(parent), stage_id))

    scaling = ScalingProfile(
        sweet_spot=float(rng.uniform(5.0, 80.0)),
        parallel_fraction=float(rng.uniform(0.8, 0.99)),
        inflation_rate=float(rng.uniform(0.1, 0.5)),
    )
    return JobDAG(
        nodes=nodes,
        edges=edges,
        name=name or f"alibaba-{num_stages}stg",
        arrival_time=arrival_time,
        work_inflation=scaling.work_inflation,
    )


def sample_alibaba_jobs(
    num_jobs: int,
    rng: np.random.Generator,
    mean_interarrival: float = 30.0,
    with_memory: bool = True,
) -> list[JobDAG]:
    """Generate ``num_jobs`` jobs with Poisson arrivals."""
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    jobs = []
    arrival = 0.0
    for index in range(num_jobs):
        if index > 0:
            arrival += float(rng.exponential(mean_interarrival))
        jobs.append(
            sample_alibaba_job(
                rng, arrival_time=arrival, name=f"alibaba-{index}", with_memory=with_memory
            )
        )
    return jobs


def split_trace(jobs: list[JobDAG]) -> tuple[list[JobDAG], list[JobDAG]]:
    """First half for training, second half for testing (§7.3)."""
    half = len(jobs) // 2
    return jobs[:half], jobs[half:]
