"""Workload generators: TPC-H-like queries, Alibaba-like trace, arrival processes."""

from .alibaba import sample_alibaba_job, sample_alibaba_jobs, split_trace
from .arrivals import (
    batched_arrivals,
    bursty_arrivals,
    estimate_cluster_load,
    pareto_arrivals,
    poisson_arrivals,
    trace_arrivals,
)
from .generator import chain_job, fork_join_job, random_dag_edges, random_job
from .scaling import ScalingProfile, estimated_runtime, runtime_vs_parallelism
from .tpch import (
    TPCH_INPUT_SIZES_GB,
    TPCH_QUERY_IDS,
    QueryTemplate,
    StageTemplate,
    make_tpch_job,
    sample_tpch_jobs,
    total_work_of,
    tpch_query_template,
)

__all__ = [
    "sample_alibaba_job",
    "sample_alibaba_jobs",
    "split_trace",
    "batched_arrivals",
    "bursty_arrivals",
    "pareto_arrivals",
    "poisson_arrivals",
    "trace_arrivals",
    "estimate_cluster_load",
    "chain_job",
    "fork_join_job",
    "random_dag_edges",
    "random_job",
    "ScalingProfile",
    "estimated_runtime",
    "runtime_vs_parallelism",
    "TPCH_INPUT_SIZES_GB",
    "TPCH_QUERY_IDS",
    "QueryTemplate",
    "StageTemplate",
    "make_tpch_job",
    "sample_tpch_jobs",
    "total_work_of",
    "tpch_query_template",
]
