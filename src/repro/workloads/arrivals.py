"""Job arrival processes: batched, Poisson, and trace replay (§7.2)."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..simulator.jobdag import JobDAG

__all__ = [
    "batched_arrivals",
    "poisson_arrivals",
    "bursty_arrivals",
    "pareto_arrivals",
    "trace_arrivals",
    "estimate_cluster_load",
]


def batched_arrivals(jobs: Iterable[JobDAG], start_time: float = 0.0) -> list[JobDAG]:
    """All jobs arrive together at ``start_time`` (the batched-arrival setting)."""
    jobs = list(jobs)
    for job in jobs:
        job.arrival_time = float(start_time)
    return jobs


def poisson_arrivals(
    jobs: Iterable[JobDAG],
    mean_interarrival: float,
    rng: np.random.Generator,
    start_time: float = 0.0,
) -> list[JobDAG]:
    """Assign Poisson-process arrival times with the given mean interarrival.

    The continuous-arrival TPC-H experiment uses a 45-second mean interarrival
    time, which yields roughly 85% cluster load on 50 executors.
    """
    if mean_interarrival <= 0:
        raise ValueError("mean interarrival time must be positive")
    jobs = list(jobs)
    arrival = float(start_time)
    for index, job in enumerate(jobs):
        if index > 0:
            arrival += float(rng.exponential(mean_interarrival))
        job.arrival_time = arrival
    return jobs


def bursty_arrivals(
    jobs: Iterable[JobDAG],
    mean_interarrival: float,
    rng: np.random.Generator,
    burst_factor: float = 6.0,
    enter_burst: float = 0.15,
    exit_burst: float = 0.4,
    start_time: float = 0.0,
) -> list[JobDAG]:
    """Markov-modulated Poisson arrivals: quiet periods with sudden bursts.

    A two-state Markov chain modulates the arrival rate: in the *quiet* state
    interarrivals are exponential with the quiet mean, in the *burst* state
    they are ``burst_factor`` times shorter.  After each arrival the chain
    enters a burst with probability ``enter_burst`` (or leaves one with
    probability ``exit_burst``).  The quiet mean is scaled so the long-run
    average interarrival stays ``mean_interarrival``, which keeps the offered
    load comparable to a plain Poisson process at the same mean.
    """
    if mean_interarrival <= 0:
        raise ValueError("mean interarrival time must be positive")
    if burst_factor < 1:
        raise ValueError("burst_factor must be at least 1")
    if not (0 <= enter_burst <= 1 and 0 <= exit_burst <= 1):
        raise ValueError("burst transition probabilities must be in [0, 1]")
    # Stationary fraction of arrivals in the burst state, and the quiet mean
    # that keeps the overall average interarrival at ``mean_interarrival``.
    if enter_burst + exit_burst > 0:
        burst_share = enter_burst / (enter_burst + exit_burst)
    else:
        burst_share = 0.0
    quiet_mean = mean_interarrival / (1.0 - burst_share + burst_share / burst_factor)
    jobs = list(jobs)
    arrival = float(start_time)
    bursting = False
    for index, job in enumerate(jobs):
        if index > 0:
            mean = quiet_mean / burst_factor if bursting else quiet_mean
            arrival += float(rng.exponential(mean))
        job.arrival_time = arrival
        if bursting:
            bursting = not (rng.random() < exit_burst)
        else:
            bursting = rng.random() < enter_burst
    return jobs


def pareto_arrivals(
    jobs: Iterable[JobDAG],
    mean_interarrival: float,
    rng: np.random.Generator,
    shape: float = 1.5,
    start_time: float = 0.0,
) -> list[JobDAG]:
    """Heavy-tailed (Pareto/Lomax) interarrival times with the given mean.

    ``shape`` must exceed 1 for the mean to exist; smaller shapes give heavier
    tails (long lulls punctuated by tight clusters of arrivals).  Interarrival
    samples are ``mean * (shape - 1) * Lomax(shape)``, whose expectation is
    exactly ``mean_interarrival``.
    """
    if mean_interarrival <= 0:
        raise ValueError("mean interarrival time must be positive")
    if shape <= 1:
        raise ValueError("shape must be > 1 so the mean interarrival is finite")
    jobs = list(jobs)
    arrival = float(start_time)
    for index, job in enumerate(jobs):
        if index > 0:
            arrival += float(mean_interarrival * (shape - 1.0) * rng.pareto(shape))
        job.arrival_time = arrival
    return jobs


def trace_arrivals(jobs: Sequence[JobDAG], arrival_times: Sequence[float]) -> list[JobDAG]:
    """Replay explicit arrival times (e.g. from a production trace)."""
    if len(jobs) != len(arrival_times):
        raise ValueError("jobs and arrival_times must have the same length")
    jobs = list(jobs)
    for job, time in zip(jobs, arrival_times):
        if time < 0:
            raise ValueError("arrival times must be non-negative")
        job.arrival_time = float(time)
    return jobs


def estimate_cluster_load(
    jobs: Sequence[JobDAG], num_executors: int, horizon: Optional[float] = None
) -> float:
    """Offered load: total work divided by available executor-time.

    The paper reports ~85% load for the continuous-arrival experiment; this
    helper lets workload generators calibrate interarrival times to a target
    load.

    When ``horizon`` is omitted it is inferred from the arrival-time span.
    Batched arrivals have no span, so the horizon falls back to the ideal
    drain time ``total_work / num_executors`` — a batch offered all at once
    saturates the cluster, i.e. the load is reported as 1.0.
    """
    if not jobs:
        raise ValueError("need at least one job")
    if num_executors <= 0:
        raise ValueError("num_executors must be positive")
    if horizon is not None and horizon <= 0:
        raise ValueError("horizon must be positive when given explicitly")
    total_work = float(sum(job.total_work for job in jobs))
    if horizon is None:
        span = max(job.arrival_time for job in jobs) - min(job.arrival_time for job in jobs)
        if span > 0:
            horizon = span
        else:
            # Batched arrivals: all jobs land at the same instant, so the
            # only defensible horizon is the time a perfectly packed cluster
            # needs to drain the batch.
            if total_work <= 0:
                raise ValueError(
                    "cannot infer a horizon: jobs arrive together and carry no work; "
                    "pass horizon explicitly"
                )
            horizon = total_work / num_executors
    return float(total_work / (num_executors * horizon))
