"""Job arrival processes: batched, Poisson, and trace replay (§7.2)."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..simulator.jobdag import JobDAG

__all__ = [
    "batched_arrivals",
    "poisson_arrivals",
    "trace_arrivals",
    "estimate_cluster_load",
]


def batched_arrivals(jobs: Iterable[JobDAG], start_time: float = 0.0) -> list[JobDAG]:
    """All jobs arrive together at ``start_time`` (the batched-arrival setting)."""
    jobs = list(jobs)
    for job in jobs:
        job.arrival_time = float(start_time)
    return jobs


def poisson_arrivals(
    jobs: Iterable[JobDAG],
    mean_interarrival: float,
    rng: np.random.Generator,
    start_time: float = 0.0,
) -> list[JobDAG]:
    """Assign Poisson-process arrival times with the given mean interarrival.

    The continuous-arrival TPC-H experiment uses a 45-second mean interarrival
    time, which yields roughly 85% cluster load on 50 executors.
    """
    if mean_interarrival <= 0:
        raise ValueError("mean interarrival time must be positive")
    jobs = list(jobs)
    arrival = float(start_time)
    for index, job in enumerate(jobs):
        if index > 0:
            arrival += float(rng.exponential(mean_interarrival))
        job.arrival_time = arrival
    return jobs


def trace_arrivals(jobs: Sequence[JobDAG], arrival_times: Sequence[float]) -> list[JobDAG]:
    """Replay explicit arrival times (e.g. from a production trace)."""
    if len(jobs) != len(arrival_times):
        raise ValueError("jobs and arrival_times must have the same length")
    jobs = list(jobs)
    for job, time in zip(jobs, arrival_times):
        if time < 0:
            raise ValueError("arrival times must be non-negative")
        job.arrival_time = float(time)
    return jobs


def estimate_cluster_load(
    jobs: Sequence[JobDAG], num_executors: int, horizon: Optional[float] = None
) -> float:
    """Offered load: total work divided by available executor-time.

    The paper reports ~85% load for the continuous-arrival experiment; this
    helper lets workload generators calibrate interarrival times to a target
    load.
    """
    if not jobs:
        raise ValueError("need at least one job")
    if num_executors <= 0:
        raise ValueError("num_executors must be positive")
    total_work = sum(job.total_work for job in jobs)
    if horizon is None:
        horizon = max(job.arrival_time for job in jobs) - min(job.arrival_time for job in jobs)
        if horizon <= 0:
            raise ValueError("cannot infer horizon from batched arrivals; pass horizon explicitly")
    return float(total_work / (num_executors * horizon))
