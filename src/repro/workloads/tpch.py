"""Synthetic TPC-H-like workload (substitute for Spark-profiled TPC-H queries).

The paper runs all 22 TPC-H queries at input sizes of 2/5/10/20/50/100 GB on a
real Spark cluster and uses the profiled DAGs (task counts, durations, shuffle
sizes) in its simulator.  We cannot profile Spark offline, so this module
generates, for each query id, a *deterministic* DAG template whose shape and
statistics follow Figure 1 and §7.2:

* queries have between 3 and ~25 stages arranged in layered join trees;
* per-stage task counts range from a handful to hundreds and scale with the
  input size;
* each query has its own parallelism sweet spot and work-inflation behaviour
  (Figure 2: Q9 scales to ~40 tasks at 100 GB, Q2 stops at ~20);
* the six input sizes produce a heavy-tailed work distribution (in the paper
  23% of jobs carry 82% of the work).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence

import numpy as np

from ..simulator.jobdag import JobDAG, Node
from .scaling import ScalingProfile

__all__ = [
    "TPCH_QUERY_IDS",
    "TPCH_INPUT_SIZES_GB",
    "QueryTemplate",
    "StageTemplate",
    "tpch_query_template",
    "make_tpch_job",
    "sample_tpch_jobs",
    "total_work_of",
]

TPCH_QUERY_IDS = tuple(range(1, 23))
TPCH_INPUT_SIZES_GB = (2.0, 5.0, 10.0, 20.0, 50.0, 100.0)
_REFERENCE_SIZE_GB = 100.0


@dataclass(frozen=True)
class StageTemplate:
    """Shape of one stage at the reference input size (100 GB)."""

    stage_id: int
    num_tasks: int
    task_duration: float
    shuffle_mb: float


@dataclass(frozen=True)
class QueryTemplate:
    """Deterministic template for one TPC-H query."""

    query_id: int
    stages: tuple[StageTemplate, ...]
    edges: tuple[tuple[int, int], ...]
    scaling: ScalingProfile

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def total_work(self, size_gb: float) -> float:
        """Total work (task-seconds) of the query at the given input size."""
        return sum(
            _scaled_num_tasks(stage.num_tasks, size_gb) * _scaled_duration(stage.task_duration, size_gb)
            for stage in self.stages
        )


def _scaled_num_tasks(reference_tasks: int, size_gb: float) -> int:
    """Task counts scale sub-linearly with input size (more, larger shards)."""
    return max(1, int(round(reference_tasks * (size_gb / _REFERENCE_SIZE_GB) ** 0.8)))


def _scaled_duration(reference_duration: float, size_gb: float) -> float:
    """Per-task durations grow mildly with input size (larger shards)."""
    return reference_duration * (0.5 + 0.5 * (size_gb / _REFERENCE_SIZE_GB) ** 0.4)


@lru_cache(maxsize=None)
def tpch_query_template(query_id: int) -> QueryTemplate:
    """Build the deterministic template for ``query_id`` (1..22)."""
    if query_id not in TPCH_QUERY_IDS:
        raise ValueError(f"query_id must be in 1..22, got {query_id}")
    rng = np.random.default_rng(7919 * query_id + 13)

    # DAG shape: a layered join tree.  Query complexity varies widely (Fig. 1).
    num_stages = int(rng.integers(3, 26))
    num_levels = max(2, int(np.ceil(np.sqrt(num_stages))))
    levels = np.sort(rng.integers(0, num_levels, size=num_stages))
    levels[0] = 0
    levels[-1] = num_levels - 1

    stages: list[StageTemplate] = []
    for stage_id in range(num_stages):
        # Heavy-tailed task counts: scans have many tasks, reduces fewer.
        base_tasks = int(np.clip(rng.lognormal(mean=3.0, sigma=1.0), 2, 500))
        duration = float(np.clip(rng.lognormal(mean=1.2, sigma=0.7), 0.5, 40.0))
        shuffle = float(np.clip(rng.lognormal(mean=3.0, sigma=1.2), 0.1, 500.0))
        stages.append(StageTemplate(stage_id, base_tasks, duration, shuffle))

    edges: list[tuple[int, int]] = []
    for stage_id in range(num_stages):
        level = levels[stage_id]
        if level == 0:
            continue
        upstream = [s for s in range(num_stages) if levels[s] < level]
        num_parents = int(min(len(upstream), 1 + rng.integers(0, 2)))
        parents = rng.choice(upstream, size=num_parents, replace=False)
        for parent in parents:
            edges.append((int(parent), stage_id))

    # Per-query scaling behaviour: some queries parallelise well, others do not.
    sweet_spot = float(rng.uniform(15.0, 60.0))
    parallel_fraction = float(rng.uniform(0.85, 0.99))
    inflation_rate = float(rng.uniform(0.2, 0.6))
    scaling = ScalingProfile(sweet_spot, parallel_fraction, inflation_rate)

    return QueryTemplate(
        query_id=query_id,
        stages=tuple(stages),
        edges=tuple(sorted(set(edges))),
        scaling=scaling,
    )


def make_tpch_job(
    query_id: int,
    size_gb: float,
    arrival_time: float = 0.0,
    name: Optional[str] = None,
) -> JobDAG:
    """Instantiate a job DAG for ``query_id`` at ``size_gb`` of input."""
    if size_gb <= 0:
        raise ValueError("input size must be positive")
    template = tpch_query_template(query_id)
    nodes = [
        Node(
            node_id=stage.stage_id,
            num_tasks=_scaled_num_tasks(stage.num_tasks, size_gb),
            task_duration=_scaled_duration(stage.task_duration, size_gb),
            name=f"q{query_id}-s{stage.stage_id}",
        )
        for stage in template.stages
    ]
    profile = template.scaling.scaled(size_gb, _REFERENCE_SIZE_GB)
    job_name = name or f"tpch-q{query_id}-{size_gb:g}gb"
    return JobDAG(
        nodes=nodes,
        edges=template.edges,
        name=job_name,
        arrival_time=arrival_time,
        work_inflation=profile.work_inflation,
        query_size_gb=size_gb,
    )


def sample_tpch_jobs(
    num_jobs: int,
    rng: np.random.Generator,
    sizes: Sequence[float] = TPCH_INPUT_SIZES_GB,
    query_ids: Sequence[int] = TPCH_QUERY_IDS,
) -> list[JobDAG]:
    """Sample ``num_jobs`` (query, size) combinations uniformly at random.

    Arrival times are all zero; use :mod:`repro.workloads.arrivals` to assign
    batched or Poisson arrival times.
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    jobs = []
    for index in range(num_jobs):
        query_id = int(rng.choice(query_ids))
        size_gb = float(rng.choice(sizes))
        jobs.append(
            make_tpch_job(query_id, size_gb, name=f"tpch-q{query_id}-{size_gb:g}gb-{index}")
        )
    return jobs


def total_work_of(jobs: Sequence[JobDAG]) -> float:
    """Total work (task-seconds) over a set of jobs."""
    return float(sum(job.total_work for job in jobs))
