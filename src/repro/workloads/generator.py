"""Random DAG generators used for property tests and the Appendix-E study."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..simulator.jobdag import JobDAG, Node

__all__ = ["random_dag_edges", "random_job", "chain_job", "fork_join_job"]


def random_dag_edges(
    num_nodes: int, rng: np.random.Generator, edge_probability: float = 0.3
) -> list[tuple[int, int]]:
    """Random edges respecting the node-index order (hence acyclic)."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    edges = []
    for dst in range(1, num_nodes):
        has_parent = False
        for src in range(dst):
            if rng.random() < edge_probability:
                edges.append((src, dst))
                has_parent = True
        if not has_parent and rng.random() < 0.7:
            edges.append((int(rng.integers(0, dst)), dst))
    return edges


def random_job(
    num_nodes: int,
    rng: np.random.Generator,
    edge_probability: float = 0.3,
    max_tasks: int = 20,
    max_duration: float = 10.0,
    name: Optional[str] = None,
) -> JobDAG:
    """A random job DAG with uniform task counts and durations."""
    nodes = [
        Node(
            node_id=i,
            num_tasks=int(rng.integers(1, max_tasks + 1)),
            task_duration=float(rng.uniform(0.5, max_duration)),
        )
        for i in range(num_nodes)
    ]
    edges = random_dag_edges(num_nodes, rng, edge_probability)
    return JobDAG(nodes=nodes, edges=edges, name=name or f"random-{num_nodes}")


def chain_job(
    num_nodes: int, num_tasks: int = 4, task_duration: float = 1.0, name: str = "chain"
) -> JobDAG:
    """A linear chain of stages (worst case for parallelism)."""
    nodes = [Node(i, num_tasks, task_duration) for i in range(num_nodes)]
    edges = [(i, i + 1) for i in range(num_nodes - 1)]
    return JobDAG(nodes=nodes, edges=edges, name=name)


def fork_join_job(
    num_branches: int, tasks_per_branch: int = 4, task_duration: float = 1.0, name: str = "forkjoin"
) -> JobDAG:
    """A fork-join DAG: one source, ``num_branches`` parallel stages, one sink."""
    nodes = [Node(0, 1, task_duration, name="source")]
    for branch in range(num_branches):
        nodes.append(Node(branch + 1, tasks_per_branch, task_duration, name=f"branch-{branch}"))
    sink_id = num_branches + 1
    nodes.append(Node(sink_id, 1, task_duration, name="sink"))
    edges = [(0, branch + 1) for branch in range(num_branches)]
    edges += [(branch + 1, sink_id) for branch in range(num_branches)]
    return JobDAG(nodes=nodes, edges=edges, name=name)
