"""Parallel sweep engine over the (scenario x scheduler x seed) matrix.

The engine fans the evaluation cells of a scenario matrix out across a
persistent pool of worker processes (the master/worker pipe protocol of
:mod:`repro.core.parallel`), then folds the per-cell results into per-scenario
JSON artifacts (``SWEEP_<scenario>.json``) with mean/p95 JCT and bootstrap
confidence intervals.

Determinism is a design constraint, not an afterthought:

* a cell is a pure function of its ``(scenario, scheduler, seed)`` coordinates
  — workers rebuild the scenario registry locally and derive the workload
  generator from a stable hash of the coordinates (``zlib.crc32``, never the
  salted builtin ``hash``);
* the master reassembles worker replies into the original cell order, and all
  aggregation (including the bootstrap resampling) is seeded from the cell
  coordinates alone — so the emitted artifacts are byte-identical no matter
  how many workers the sweep ran on.
"""

from __future__ import annotations

import json
import traceback
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..core.parallel import PipeWorkerPool
from ..schedulers import make_scheduler, scheduler_names
from ..simulator.environment import SchedulingEnvironment, SimulatorConfig
from ..simulator.metrics import latency_histogram
from .runner import run_episode
from .scenarios import scenario_registry, scenario_workload_rng

__all__ = [
    "SweepCell",
    "CellResult",
    "SCHEDULER_NAMES",
    "make_scheduler",
    "run_cell",
    "SweepWorkerPool",
    "run_sweep",
    "write_sweep_artifacts",
]

_BOOTSTRAP_SAMPLES = 1000

# The name → factory mapping now lives in the scheduler registry
# (``repro.schedulers.register_scheduler``), shared with the policy-serving
# fallback path.  This tuple is a snapshot taken at import time, kept as a
# stable import point for existing tests; anything that must see schedulers
# registered later should call ``scheduler_names()`` instead (run_sweep's
# validation and the sweep CLI's help text both do).
SCHEDULER_NAMES = scheduler_names()


# ------------------------------------------------------------------- the cell
@dataclass(frozen=True)
class SweepCell:
    """Coordinates of one evaluation: scenario x scheduler x seed."""

    scenario: str
    scheduler: str
    seed: int


@dataclass(frozen=True)
class CellResult:
    """Plain-data outcome of one cell (picklable, no job DAGs)."""

    scenario: str
    scheduler: str
    seed: int
    num_finished: int
    num_unfinished: int
    jcts: tuple[float, ...]
    makespan: Optional[float]
    wall_time: float
    total_reward: float
    num_actions: int

    @property
    def average_jct(self) -> Optional[float]:
        if not self.jcts:
            return None
        return float(np.mean(self.jcts))


def _cell_rng(cell: SweepCell) -> np.random.Generator:
    """Workload generator for a cell: a stable function of its coordinates.

    Delegates to :func:`repro.experiments.scenarios.scenario_workload_rng`,
    the shared derivation the verification recorder also uses — keeping
    recorded traces workload-identical to sweep cells by construction.
    """
    return scenario_workload_rng(cell.scenario, cell.seed)


def run_cell(
    cell: SweepCell,
    num_jobs: Optional[int] = None,
    num_executors: Optional[int] = None,
) -> CellResult:
    """Run one (scenario, scheduler, seed) evaluation and summarize it.

    The same seed drives the workload of every scheduler in a scenario row,
    so comparisons are on identical job sequences.
    """
    registry = scenario_registry(num_jobs=num_jobs, num_executors=num_executors)
    spec = registry[cell.scenario]
    jobs = spec.build_jobs(_cell_rng(cell))
    config = spec.build_config(seed=cell.seed)
    scheduler = make_scheduler(cell.scheduler, config)
    environment = SchedulingEnvironment(config)
    result = run_episode(environment, scheduler, jobs, seed=cell.seed)
    jcts = tuple(float(job.completion_duration()) for job in result.finished_jobs)
    return CellResult(
        scenario=cell.scenario,
        scheduler=cell.scheduler,
        seed=cell.seed,
        num_finished=len(result.finished_jobs),
        num_unfinished=len(result.unfinished_jobs),
        jcts=jcts,
        makespan=float(result.makespan) if result.finished_jobs else None,
        wall_time=float(result.wall_time),
        total_reward=float(result.total_reward),
        num_actions=int(result.num_actions),
    )


# ----------------------------------------------------------------- worker pool
def _sweep_worker_main(
    conn,
    num_jobs: Optional[int],
    num_executors: Optional[int],
) -> None:
    """Loop of one sweep worker process.

    Protocol mirrors :func:`repro.core.parallel._worker_main`: one
    ``(command, payload)`` tuple per message, replies are ``("ok", value)`` or
    ``("error", traceback)``.  ``run`` takes a list of :class:`SweepCell` and
    returns the matching list of :class:`CellResult`.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        command, payload = message
        if command == "close":
            return
        try:
            if command == "run":
                reply = [
                    run_cell(cell, num_jobs=num_jobs, num_executors=num_executors)
                    for cell in payload
                ]
            elif command == "trace":
                # Record each cell's episode trace and return its content
                # digest (the full trace stays in the worker: digests are all
                # the worker-count-invariance check needs, and they're cheap
                # to ship).  Imported lazily — repro.verify imports this
                # module's scenario registry at import time.
                from ..verify.recorder import record_scenario_trace

                reply = [
                    record_scenario_trace(
                        cell.scenario,
                        scheduler=cell.scheduler,
                        seed=cell.seed,
                        num_jobs=num_jobs,
                        num_executors=num_executors,
                    ).digest
                    for cell in payload
                ]
            else:
                raise ValueError(f"unknown sweep worker command {command!r}")
            conn.send(("ok", reply))
        except Exception:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                return


class SweepWorkerPool(PipeWorkerPool):
    """A persistent pool of sweep worker processes.

    The process/pipe lifecycle (start-up, reply draining, shutdown) comes
    from :class:`~repro.core.parallel.PipeWorkerPool`; this class only routes
    cells to workers and re-interleaves the replies.
    """

    worker_description = "sweep worker"

    def __init__(
        self,
        num_workers: int,
        num_jobs: Optional[int] = None,
        num_executors: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        super().__init__(
            num_workers,
            target=_sweep_worker_main,
            worker_args=lambda index: (num_jobs, num_executors),
            start_method=start_method,
        )

    def run_cells(self, cells: Sequence[SweepCell]) -> list[CellResult]:
        """Fan ``cells`` out over the workers; results come back in cell order."""
        return self._fan_out("run", cells)

    def record_trace_digests(self, cells: Sequence[SweepCell]) -> list[str]:
        """Record each cell's episode trace in a worker; returns the digests.

        Traces are pure functions of the cell coordinates
        (:func:`repro.verify.record_scenario_trace`), so the returned digests
        are identical for any worker count — which is exactly what the
        golden-replay invariance test asserts.
        """
        return self._fan_out("trace", cells)

    def _fan_out(self, command: str, cells: Sequence[SweepCell]) -> list:
        assignment = [index % self.num_workers for index in range(len(cells))]
        payloads: list[list[SweepCell]] = [[] for _ in range(self.num_workers)]
        for cell, owner in zip(cells, assignment):
            payloads[owner].append(cell)
        replies = self.run(command, payloads)
        # Re-interleave the per-worker replies back into cell order so the
        # output is invariant to the worker count.
        cursors = [0] * self.num_workers
        results = []
        for owner in assignment:
            results.append(replies[owner][cursors[owner]])
            cursors[owner] += 1
        return results


# ----------------------------------------------------------------- aggregation
def _bootstrap_ci(
    values: Sequence[float], rng: np.random.Generator, num_samples: int = _BOOTSTRAP_SAMPLES
) -> Optional[list[float]]:
    """Percentile-bootstrap 95% CI of the mean of ``values``."""
    values = [float(v) for v in values]
    if not values:
        return None
    if len(values) == 1:
        return [values[0], values[0]]
    array = np.asarray(values)
    indices = rng.integers(0, len(array), size=(num_samples, len(array)))
    means = array[indices].mean(axis=1)
    low, high = np.percentile(means, [2.5, 97.5])
    return [float(low), float(high)]


def _aggregate_scheduler(
    scenario: str, scheduler: str, results: Sequence[CellResult]
) -> dict:
    """Fold one scenario row's per-seed results into summary statistics."""
    per_seed = []
    seed_jcts = []
    pooled_jcts: list[float] = []
    makespans = []
    for result in results:
        average = result.average_jct
        per_seed.append(
            {
                "seed": result.seed,
                "average_jct": average,
                "p95_jct": float(np.percentile(result.jcts, 95)) if result.jcts else None,
                "makespan": result.makespan,
                "num_finished": result.num_finished,
                "num_unfinished": result.num_unfinished,
                "wall_time": result.wall_time,
                "total_reward": result.total_reward,
                "num_actions": result.num_actions,
            }
        )
        if average is not None:
            seed_jcts.append(average)
        pooled_jcts.extend(result.jcts)
        if result.makespan is not None:
            makespans.append(result.makespan)
    # The bootstrap stream is keyed on the cell coordinates so aggregation is
    # independent of worker count and of the other schedulers in the sweep.
    ci_rng = np.random.default_rng(zlib.crc32(f"{scenario}:{scheduler}".encode("utf-8")))
    return {
        "num_seeds": len(results),
        "mean_jct": float(np.mean(seed_jcts)) if seed_jcts else None,
        "jct_ci95": _bootstrap_ci(seed_jcts, ci_rng),
        "p95_jct": float(np.percentile(pooled_jcts, 95)) if pooled_jcts else None,
        # Same p50/p95/p99 summary the serving layer reports for its
        # per-request latencies (simulator.metrics.latency_histogram).
        "jct_histogram": latency_histogram(pooled_jcts),
        "mean_makespan": float(np.mean(makespans)) if makespans else None,
        "total_finished": int(sum(r.num_finished for r in results)),
        "total_unfinished": int(sum(r.num_unfinished for r in results)),
        "per_seed": per_seed,
    }


def aggregate_results(
    results: Sequence[CellResult],
    scenarios: Sequence[str],
    schedulers: Sequence[str],
    num_jobs: Optional[int] = None,
    num_executors: Optional[int] = None,
) -> dict[str, dict]:
    """Group cell results into one summary dict per scenario."""
    registry = scenario_registry(num_jobs=num_jobs, num_executors=num_executors)
    by_key: dict[tuple[str, str], list[CellResult]] = {}
    for result in results:
        by_key.setdefault((result.scenario, result.scheduler), []).append(result)
    aggregates: dict[str, dict] = {}
    for scenario in scenarios:
        spec = registry[scenario]
        seeds = sorted({r.seed for r in results if r.scenario == scenario})
        aggregates[scenario] = {
            "scenario": scenario,
            "description": spec.description,
            "tags": list(spec.tags),
            "num_jobs": spec.num_jobs,
            "num_executors": spec.simulator.num_executors,
            "seeds": seeds,
            "schedulers": {
                scheduler: _aggregate_scheduler(
                    scenario, scheduler, by_key.get((scenario, scheduler), [])
                )
                for scheduler in schedulers
            },
        }
    return aggregates


def write_sweep_artifacts(aggregates: dict[str, dict], out_dir) -> list[Path]:
    """Write one ``SWEEP_<scenario>.json`` per scenario; returns the paths.

    ``sort_keys`` plus a fixed indent make the artifacts byte-stable: two
    sweeps over the same matrix produce identical files regardless of worker
    count.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for scenario, aggregate in aggregates.items():
        path = out / f"SWEEP_{scenario}.json"
        path.write_text(json.dumps(aggregate, indent=2, sort_keys=True) + "\n")
        paths.append(path)
    return paths


# ------------------------------------------------------------------ the sweep
def run_sweep(
    scenarios: Sequence[str],
    schedulers: Sequence[str],
    seeds: Sequence[int],
    num_workers: int = 1,
    out_dir=None,
    num_jobs: Optional[int] = None,
    num_executors: Optional[int] = None,
    start_method: Optional[str] = None,
) -> dict[str, dict]:
    """Evaluate the (scenario x scheduler x seed) matrix and aggregate it.

    Cells run serially when ``num_workers <= 1`` and on a persistent
    :class:`SweepWorkerPool` otherwise; either way the aggregates (and the
    ``SWEEP_<scenario>.json`` artifacts, when ``out_dir`` is given) are
    identical.
    """
    registry = scenario_registry(num_jobs=num_jobs, num_executors=num_executors)
    if not scenarios:
        raise ValueError("need at least one scenario")
    if not schedulers:
        raise ValueError("need at least one scheduler")
    if not seeds:
        raise ValueError("need at least one seed")
    for scenario in scenarios:
        if scenario not in registry:
            known = ", ".join(sorted(registry))
            raise KeyError(f"unknown scenario {scenario!r}; registered scenarios: {known}")
    for scheduler in schedulers:
        if scheduler not in scheduler_names():
            known = ", ".join(scheduler_names())
            raise KeyError(f"unknown scheduler {scheduler!r}; known schedulers: {known}")
    cells = [
        SweepCell(scenario=scenario, scheduler=scheduler, seed=int(seed))
        for scenario in scenarios
        for scheduler in schedulers
        for seed in seeds
    ]
    if num_workers <= 1:
        results = [
            run_cell(cell, num_jobs=num_jobs, num_executors=num_executors)
            for cell in cells
        ]
    else:
        with SweepWorkerPool(
            num_workers=min(num_workers, len(cells)),
            num_jobs=num_jobs,
            num_executors=num_executors,
            start_method=start_method,
        ) as pool:
            results = pool.run_cells(cells)
    aggregates = aggregate_results(
        results, scenarios, schedulers, num_jobs=num_jobs, num_executors=num_executors
    )
    if out_dir is not None:
        write_sweep_artifacts(aggregates, out_dir)
    return aggregates
