"""Experiment harness: runners and per-figure/per-table reproduction functions."""

from .appendix import (
    figure16_appendix_example,
    figure18_simulator_fidelity,
    figure19_expressiveness,
    figure20_multi_resource_timeseries,
    figure22_optimality,
    figure23_incomplete_information,
    toy_join_dag,
)
from .figures import (
    compare_schedulers,
    concurrency_series,
    figure2_parallelism_curves,
    figure3_illustrative_example,
    figure7_arrival_variance,
    figure9a_batched_arrivals,
    figure9b_continuous_arrivals,
    figure10_time_series,
    figure11_multi_resource,
    figure12_executor_profile,
    figure13_objectives,
    figure14_ablations,
    figure15a_learning_curves,
    figure15b_scheduling_delay,
)
from .reporting import format_cdf_summary, format_scalar_table, format_series, improvement_over
from .runner import clone_jobs, run_episode, run_scheduler_on_jobs, tune_weighted_fair
from .tables import table2_generalization, table3_scale_generalization
from .training import tpch_batch_factory, tpch_poisson_factory, train_decima_agent

__all__ = [
    "figure16_appendix_example",
    "figure18_simulator_fidelity",
    "figure19_expressiveness",
    "figure20_multi_resource_timeseries",
    "figure22_optimality",
    "figure23_incomplete_information",
    "toy_join_dag",
    "compare_schedulers",
    "concurrency_series",
    "figure2_parallelism_curves",
    "figure3_illustrative_example",
    "figure7_arrival_variance",
    "figure9a_batched_arrivals",
    "figure9b_continuous_arrivals",
    "figure10_time_series",
    "figure11_multi_resource",
    "figure12_executor_profile",
    "figure13_objectives",
    "figure14_ablations",
    "figure15a_learning_curves",
    "figure15b_scheduling_delay",
    "format_cdf_summary",
    "format_scalar_table",
    "format_series",
    "improvement_over",
    "clone_jobs",
    "run_episode",
    "run_scheduler_on_jobs",
    "tune_weighted_fair",
    "table2_generalization",
    "table3_scale_generalization",
    "tpch_batch_factory",
    "tpch_poisson_factory",
    "train_decima_agent",
]
