"""Plain-text reporting helpers: print the rows/series the paper's figures show."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "format_scalar_table",
    "format_series",
    "format_cdf_summary",
    "improvement_over",
]


def format_scalar_table(title: str, rows: Mapping[str, float], unit: str = "sec") -> str:
    """Render a ``name -> value`` mapping as an aligned text table."""
    lines = [title, "-" * len(title)]
    width = max((len(name) for name in rows), default=4)
    for name, value in rows.items():
        lines.append(f"{name:<{width}}  {value:10.2f} {unit}")
    return "\n".join(lines)


def format_series(title: str, series: Mapping[str, Sequence[tuple[float, float]]]) -> str:
    """Render named (x, y) series compactly (first/middle/last points)."""
    lines = [title, "-" * len(title)]
    for name, points in series.items():
        points = list(points)
        if not points:
            lines.append(f"{name}: (empty)")
            continue
        picks = [points[0], points[len(points) // 2], points[-1]]
        rendered = ", ".join(f"({x:.1f}, {y:.1f})" for x, y in picks)
        lines.append(f"{name}: {len(points)} points; {rendered}")
    return "\n".join(lines)


def format_cdf_summary(title: str, samples: Mapping[str, Sequence[float]]) -> str:
    """Summarise per-scheduler JCT samples by mean / p50 / p95 (Fig. 9a material)."""
    lines = [title, "-" * len(title)]
    width = max((len(name) for name in samples), default=4)
    for name, values in samples.items():
        values = np.asarray(list(values), dtype=float)
        if values.size == 0:
            lines.append(f"{name:<{width}}  (no samples)")
            continue
        lines.append(
            f"{name:<{width}}  mean={values.mean():8.2f}  p50={np.percentile(values, 50):8.2f}"
            f"  p95={np.percentile(values, 95):8.2f}"
        )
    return "\n".join(lines)


def improvement_over(results: Mapping[str, float], subject: str, reference: str) -> float:
    """Relative improvement of ``subject`` over ``reference`` (positive = better/lower)."""
    if reference not in results or subject not in results:
        raise KeyError("both subject and reference must be present in results")
    ref = results[reference]
    if ref == 0:
        return float("nan")
    return (ref - results[subject]) / ref
