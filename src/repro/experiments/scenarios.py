"""Declarative scenario registry for the scenario-matrix evaluation subsystem.

The paper's headline claims rest on evaluating Decima against every baseline
under many cluster conditions: batched vs. continuous Poisson arrivals (§7.2),
heterogeneous executors and multi-resource packing (§7.3).  This module turns
those one-off experiment set-ups — plus harder conditions the paper alludes to
(bursty and heavy-tailed arrivals, executor churn, straggler-prone clusters) —
into named, frozen :class:`ScenarioSpec` values that the sweep engine
(:mod:`repro.experiments.sweep`) and CI can fan out over.

A scenario bundles a *workload factory* (which jobs arrive, with their arrival
process already applied) and a :class:`~repro.simulator.SimulatorConfig`
(cluster size, executor classes, duration-model fidelity, timed churn events).
Everything is deterministic given the generator handed to the factory, and
every factory is built from module-level functions via :func:`functools.partial`
so specs pickle cleanly across sweep worker processes.

Scenario sizes default to a few jobs on a small cluster so the full matrix
runs on a laptop (and in the CI smoke tier) in minutes; ``num_jobs`` /
``num_executors`` overrides scale every scenario up with the same code path.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from functools import partial
from typing import Callable, Optional, Sequence

import numpy as np

from ..simulator.duration import DurationModelConfig
from ..simulator.environment import ExecutorChurnEvent, SimulatorConfig
from ..simulator.jobdag import JobDAG
from ..simulator.multi_resource import assign_memory_requests, multi_resource_config
from ..workloads.alibaba import sample_alibaba_jobs
from ..workloads.arrivals import (
    batched_arrivals,
    bursty_arrivals,
    pareto_arrivals,
    poisson_arrivals,
)
from ..workloads.tpch import sample_tpch_jobs, total_work_of

__all__ = [
    "ScenarioSpec",
    "scenario_registry",
    "scenario_names",
    "get_scenario",
    "scenario_workload_rng",
]


def scenario_workload_rng(scenario: str, seed: int) -> np.random.Generator:
    """The workload generator for a ``(scenario, seed)`` evaluation cell.

    The single source of truth for this derivation: the sweep engine's
    ``run_cell`` and the verification recorder's ``record_scenario_trace``
    both build their job sequences from it, which is what makes recorded
    traces workload-identical to sweep cells.  Keyed with ``zlib.crc32``
    (never the salted builtin ``hash``) so every process derives the same
    stream for the same cell.
    """
    return np.random.default_rng([int(seed), zlib.crc32(scenario.encode("utf-8"))])

# Small input sizes keep per-scenario work laptop-friendly; overrides scale up.
_SMALL_SIZES = (2.0, 5.0, 10.0)
_TARGET_LOAD = 0.85
_MAX_TIME = 50_000.0


@dataclass(frozen=True)
class ScenarioSpec:
    """One named evaluation scenario: a workload plus a cluster configuration.

    ``job_factory`` maps a ``numpy`` generator to a fully specified job list
    (arrival times assigned); ``simulator`` carries the cluster — executor
    classes, duration-model fidelity switches and timed churn events all ride
    inside it, so every scheduler sees the scenario identically.
    """

    name: str
    description: str
    job_factory: Callable[[np.random.Generator], list[JobDAG]]
    simulator: SimulatorConfig
    num_jobs: int
    tags: tuple[str, ...] = ()

    def build_jobs(self, rng: np.random.Generator) -> list[JobDAG]:
        """Instantiate the scenario's job set from ``rng`` (deterministic)."""
        return self.job_factory(rng)

    def build_config(self, seed: int) -> SimulatorConfig:
        """The scenario's simulator config reseeded for one evaluation cell."""
        return replace(self.simulator, seed=int(seed))


# ------------------------------------------------------------- job factories
def _calibrated_interarrival(
    jobs: Sequence[JobDAG], num_executors: int, target_load: float
) -> float:
    """Mean interarrival giving roughly ``target_load`` offered load.

    Offered load is total work over executor-time; with ``n`` jobs spanning
    about ``n * mean_interarrival`` seconds, the mean interarrival that hits
    the target is ``total_work / (n * num_executors * target_load)``.
    """
    return total_work_of(jobs) / (max(len(jobs), 1) * num_executors * target_load)


def _tpch_batched_jobs(
    rng: np.random.Generator, num_jobs: int, sizes: Sequence[float]
) -> list[JobDAG]:
    return batched_arrivals(sample_tpch_jobs(num_jobs, rng, sizes=sizes))


def _tpch_poisson_jobs(
    rng: np.random.Generator, num_jobs: int, sizes: Sequence[float], num_executors: int
) -> list[JobDAG]:
    jobs = sample_tpch_jobs(num_jobs, rng, sizes=sizes)
    mean = _calibrated_interarrival(jobs, num_executors, _TARGET_LOAD)
    return poisson_arrivals(jobs, mean, rng)


def _tpch_bursty_jobs(
    rng: np.random.Generator, num_jobs: int, sizes: Sequence[float], num_executors: int
) -> list[JobDAG]:
    jobs = sample_tpch_jobs(num_jobs, rng, sizes=sizes)
    mean = _calibrated_interarrival(jobs, num_executors, _TARGET_LOAD)
    return bursty_arrivals(jobs, mean, rng)


def _tpch_pareto_jobs(
    rng: np.random.Generator, num_jobs: int, sizes: Sequence[float], num_executors: int
) -> list[JobDAG]:
    jobs = sample_tpch_jobs(num_jobs, rng, sizes=sizes)
    mean = _calibrated_interarrival(jobs, num_executors, _TARGET_LOAD)
    return pareto_arrivals(jobs, mean, rng, shape=1.3)


def _tpch_memory_jobs(
    rng: np.random.Generator, num_jobs: int, sizes: Sequence[float]
) -> list[JobDAG]:
    jobs = batched_arrivals(sample_tpch_jobs(num_jobs, rng, sizes=sizes))
    return assign_memory_requests(jobs, seed=int(rng.integers(0, 2**31 - 1)))


def _alibaba_poisson_jobs(
    rng: np.random.Generator, num_jobs: int, mean_interarrival: float
) -> list[JobDAG]:
    return sample_alibaba_jobs(num_jobs, rng, mean_interarrival=mean_interarrival)


# ----------------------------------------------------------------- registry
def _standalone_config(num_executors: int, **kwargs) -> SimulatorConfig:
    return SimulatorConfig(num_executors=num_executors, max_time=_MAX_TIME, **kwargs)


def scenario_registry(
    num_jobs: Optional[int] = None, num_executors: Optional[int] = None
) -> dict[str, ScenarioSpec]:
    """Build the named scenario registry.

    ``num_jobs`` / ``num_executors`` override every scenario's default size so
    the same matrix runs as a tiny CI smoke tier or a full evaluation.
    """

    def jobs_of(default: int) -> int:
        return int(num_jobs) if num_jobs is not None else default

    def executors_of(default: int) -> int:
        return int(num_executors) if num_executors is not None else default

    registry: dict[str, ScenarioSpec] = {}

    def register(spec: ScenarioSpec) -> None:
        registry[spec.name] = spec

    # 1. Batched TPC-H (§7.2 batched-arrival setting).
    n, e = jobs_of(8), executors_of(16)
    register(
        ScenarioSpec(
            name="tpch_batched",
            description="Batched TPC-H: all jobs arrive at time zero (§7.2)",
            job_factory=partial(_tpch_batched_jobs, num_jobs=n, sizes=_SMALL_SIZES),
            simulator=_standalone_config(e),
            num_jobs=n,
            tags=("tpch", "batched"),
        )
    )

    # 2. Continuous Poisson arrivals at ~85% offered load (§7.2).
    n, e = jobs_of(10), executors_of(16)
    register(
        ScenarioSpec(
            name="tpch_poisson",
            description="Continuous TPC-H: Poisson arrivals at ~85% cluster load (§7.2)",
            job_factory=partial(
                _tpch_poisson_jobs, num_jobs=n, sizes=_SMALL_SIZES, num_executors=e
            ),
            simulator=_standalone_config(e),
            num_jobs=n,
            tags=("tpch", "continuous", "poisson"),
        )
    )

    # 3. Bursty Markov-modulated arrivals (same long-run load as Poisson).
    n, e = jobs_of(10), executors_of(16)
    register(
        ScenarioSpec(
            name="tpch_bursty",
            description="Bursty TPC-H: Markov-modulated arrivals, quiet spells with bursts",
            job_factory=partial(
                _tpch_bursty_jobs, num_jobs=n, sizes=_SMALL_SIZES, num_executors=e
            ),
            simulator=_standalone_config(e),
            num_jobs=n,
            tags=("tpch", "continuous", "bursty"),
        )
    )

    # 4. Heavy-tailed (Pareto) interarrivals: long lulls, tight clusters.
    n, e = jobs_of(10), executors_of(16)
    register(
        ScenarioSpec(
            name="tpch_pareto",
            description="Heavy-tailed TPC-H: Pareto interarrival times (shape 1.3)",
            job_factory=partial(
                _tpch_pareto_jobs, num_jobs=n, sizes=_SMALL_SIZES, num_executors=e
            ),
            simulator=_standalone_config(e),
            num_jobs=n,
            tags=("tpch", "continuous", "heavy-tail"),
        )
    )

    # 5. Heterogeneous executor classes: TPC-H with memory requests on the
    #    four-class cluster of §7.3.
    n, e = jobs_of(8), executors_of(20)
    register(
        ScenarioSpec(
            name="hetero_executors",
            description="Heterogeneous executors: TPC-H with memory requests on four classes (§7.3)",
            job_factory=partial(_tpch_memory_jobs, num_jobs=n, sizes=_SMALL_SIZES),
            simulator=replace(multi_resource_config(total_executors=e), max_time=_MAX_TIME),
            num_jobs=n,
            tags=("tpch", "multi-resource", "heterogeneous"),
        )
    )

    # 6. Multi-resource packing on an industrial-style (Alibaba-like) trace.
    n, e = jobs_of(6), executors_of(20)
    register(
        ScenarioSpec(
            name="multi_resource_packing",
            description="Multi-resource packing: Alibaba-style jobs on four executor classes (§7.3)",
            job_factory=partial(_alibaba_poisson_jobs, num_jobs=n, mean_interarrival=30.0),
            simulator=replace(multi_resource_config(total_executors=e), max_time=_MAX_TIME),
            num_jobs=n,
            tags=("alibaba", "multi-resource", "packing"),
        )
    )

    # 7. Executor churn: a third of the fleet decommissions mid-run and
    #    rejoins later, via timed events every scheduler observes uniformly.
    n, e = jobs_of(10), executors_of(16)
    churn = (
        ExecutorChurnEvent(time=120.0, kind="executor_removed", count=max(1, e // 3)),
        ExecutorChurnEvent(time=360.0, kind="executor_added", count=max(1, e // 3)),
    )
    register(
        ScenarioSpec(
            name="executor_churn",
            description="Executor churn: a third of the executors leave at t=120s and return at t=360s",
            job_factory=partial(
                _tpch_poisson_jobs, num_jobs=n, sizes=_SMALL_SIZES, num_executors=e
            ),
            simulator=_standalone_config(e, churn_events=churn),
            num_jobs=n,
            tags=("tpch", "dynamics", "churn"),
        )
    )

    # 8. Straggler-prone cluster: tasks independently straggle 5x with 8%
    #    probability (duration-model inflation hook).
    n, e = jobs_of(8), executors_of(16)
    register(
        ScenarioSpec(
            name="straggler_cluster",
            description="Straggler-prone cluster: 8% of tasks run 5x slower",
            job_factory=partial(_tpch_batched_jobs, num_jobs=n, sizes=_SMALL_SIZES),
            simulator=_standalone_config(
                e,
                duration=DurationModelConfig(
                    straggler_probability=0.08, straggler_slowdown=5.0
                ),
            ),
            num_jobs=n,
            tags=("tpch", "dynamics", "stragglers"),
        )
    )

    return registry


def scenario_names() -> tuple[str, ...]:
    """Names of every registered scenario, in registry order."""
    return tuple(scenario_registry().keys())


def get_scenario(
    name: str,
    num_jobs: Optional[int] = None,
    num_executors: Optional[int] = None,
) -> ScenarioSpec:
    """Look up one scenario by name (with optional size overrides)."""
    registry = scenario_registry(num_jobs=num_jobs, num_executors=num_executors)
    if name not in registry:
        known = ", ".join(sorted(registry))
        raise KeyError(f"unknown scenario {name!r}; registered scenarios: {known}")
    return registry[name]
