"""Episode runner: execute a scheduler against the simulator and collect metrics."""

from __future__ import annotations

import copy
import time
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from ..schedulers.base import Scheduler
from ..schedulers.fair import ALPHA_SWEEP, WeightedFairScheduler
from ..simulator.environment import SchedulingEnvironment, SimulatorConfig
from ..simulator.jobdag import JobDAG
from ..simulator.metrics import SimulationResult

__all__ = ["run_episode", "run_scheduler_on_jobs", "tune_weighted_fair", "clone_jobs"]


def clone_jobs(jobs: Iterable[JobDAG]) -> list[JobDAG]:
    """Deep-copy a job set so several schedulers can run on identical inputs."""
    return copy.deepcopy(list(jobs))


def run_episode(
    environment: SchedulingEnvironment,
    scheduler: Scheduler,
    jobs: Iterable[JobDAG],
    seed: Optional[int] = None,
    max_steps: Optional[int] = None,
    record_delays: bool = False,
    decision_hook: Optional[Callable] = None,
) -> SimulationResult:
    """Run one full episode of ``scheduler`` on ``jobs`` in ``environment``.

    ``max_steps`` bounds the number of agent invocations (a safety valve for
    experiments with truncated horizons).  When ``record_delays`` is set, the
    wall-clock time of each ``scheduler.schedule`` call is recorded so the
    Figure-15b scheduling-delay distribution can be reproduced.
    ``decision_hook`` is the verification harness's instrumentation seam:
    when given, it is called as ``decision_hook(step_index, observation,
    action)`` *before* the step executes (the observation still reflects
    exactly what the scheduler saw — stepping mutates the live job DAGs in
    place); if the hook returns a callable, it is invoked with the step's
    reward once the step completes.  Hooks must not mutate their arguments.
    """
    scheduler.reset()
    observation = environment.reset(jobs, seed=seed)
    delays: list[float] = []
    steps = 0
    done = False
    while not done:
        start = time.perf_counter()
        action = scheduler.schedule(observation)
        if record_delays:
            delays.append(time.perf_counter() - start)
        finish_hook = (
            decision_hook(steps, observation, action)
            if decision_hook is not None
            else None
        )
        observation, reward, done = environment.step(action)
        if callable(finish_hook):
            finish_hook(reward)
        steps += 1
        if max_steps is not None and steps >= max_steps:
            break
    result = environment.result()
    result.scheduling_delays = delays
    return result


def run_scheduler_on_jobs(
    scheduler: Scheduler,
    jobs: Sequence[JobDAG],
    config: Optional[SimulatorConfig] = None,
    seed: Optional[int] = None,
) -> SimulationResult:
    """Convenience wrapper: build an environment, clone the jobs, run one episode."""
    environment = SchedulingEnvironment(config or SimulatorConfig())
    return run_episode(environment, scheduler, clone_jobs(jobs), seed=seed)


def tune_weighted_fair(
    jobs: Sequence[JobDAG],
    config: Optional[SimulatorConfig] = None,
    alphas: Sequence[float] = ALPHA_SWEEP,
    seed: int = 0,
) -> tuple[WeightedFairScheduler, float, dict[float, float]]:
    """Sweep the weighted-fair exponent and return the best scheduler (§7.1 item 5).

    Returns ``(best_scheduler, best_average_jct, jct_by_alpha)``.
    """
    config = config or SimulatorConfig()
    jct_by_alpha: dict[float, float] = {}
    best_alpha = None
    best_jct = float("inf")
    for alpha in alphas:
        scheduler = WeightedFairScheduler(alpha=alpha)
        result = run_scheduler_on_jobs(scheduler, jobs, config=config, seed=seed)
        if not result.finished_jobs:
            continue
        jct = result.average_jct
        jct_by_alpha[float(alpha)] = jct
        if jct < best_jct:
            best_jct = jct
            best_alpha = float(alpha)
    if best_alpha is None:
        raise RuntimeError("no alpha in the sweep produced finished jobs")
    return WeightedFairScheduler(alpha=best_alpha), best_jct, jct_by_alpha
