"""Reproduction functions for the paper's tables (Table 2 and Table 3)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.agent import DecimaConfig
from ..core.features import FeatureConfig
from ..simulator.environment import SimulatorConfig
from ..workloads.arrivals import poisson_arrivals
from ..workloads.alibaba import sample_alibaba_jobs
from ..workloads.tpch import sample_tpch_jobs
from .runner import run_scheduler_on_jobs, tune_weighted_fair
from .training import tpch_poisson_factory, train_decima_agent

__all__ = ["table2_generalization", "table3_scale_generalization"]


def _mixed_interarrival_factory(num_jobs: int, interarrivals: Sequence[float]):
    """Training factory sampling a different interarrival time each sequence."""

    def factory(rng: np.random.Generator):
        interarrival = float(rng.choice(interarrivals))
        jobs = sample_tpch_jobs(num_jobs, rng)
        return poisson_arrivals(jobs, interarrival, rng)

    return factory


def table2_generalization(
    test_interarrival: float = 45.0,
    anti_skewed_interarrival: float = 75.0,
    mixed_interarrivals: Sequence[float] = (42.0, 55.0, 65.0, 75.0),
    num_jobs: int = 30,
    num_executors: int = 50,
    seed: int = 0,
    train_iterations: int = 8,
    num_test_sequences: int = 2,
) -> dict[str, dict[str, float]]:
    """Table 2: generalisation of Decima across job interarrival times.

    Trains four agents (on the test workload, on an anti-skewed workload, on a
    mix of workloads, and on a mix with an interarrival-time input feature) and
    evaluates all of them, plus the tuned weighted-fair heuristic, on unseen
    sequences with the test interarrival time.  Returns mean and standard
    deviation of the average JCT per scheme.
    """
    config = SimulatorConfig(num_executors=num_executors, seed=seed)

    trained_agents = {}
    scenarios = {
        "decima_trained_on_test": (
            tpch_poisson_factory(num_jobs, test_interarrival),
            DecimaConfig(seed=seed),
            None,
        ),
        "decima_anti_skewed": (
            tpch_poisson_factory(num_jobs, anti_skewed_interarrival),
            DecimaConfig(seed=seed),
            None,
        ),
        "decima_mixed": (
            _mixed_interarrival_factory(num_jobs, mixed_interarrivals),
            DecimaConfig(seed=seed),
            None,
        ),
        "decima_mixed_with_hint": (
            _mixed_interarrival_factory(num_jobs, mixed_interarrivals),
            DecimaConfig(seed=seed, feature=FeatureConfig(include_interarrival_hint=True)),
            test_interarrival,
        ),
    }
    for name, (factory, agent_config, hint) in scenarios.items():
        agent, _ = train_decima_agent(
            config,
            factory,
            num_iterations=train_iterations,
            agent_config=agent_config,
            seed=seed,
        )
        if hint is not None:
            agent.interarrival_hint = hint
        trained_agents[name] = agent

    rows: dict[str, list[float]] = {name: [] for name in trained_agents}
    rows["opt_weighted_fair"] = []
    for sequence in range(num_test_sequences):
        rng = np.random.default_rng(seed + 500 + sequence)
        test_jobs = poisson_arrivals(sample_tpch_jobs(num_jobs, rng), test_interarrival, rng)
        tuned, tuned_jct, _ = tune_weighted_fair(
            test_jobs, config=config, alphas=np.arange(-2.0, 2.01, 0.5), seed=seed
        )
        rows["opt_weighted_fair"].append(tuned_jct)
        for name, agent in trained_agents.items():
            result = run_scheduler_on_jobs(agent, test_jobs, config=config, seed=seed)
            rows[name].append(result.average_jct if result.finished_jobs else float("inf"))

    return {
        name: {"mean_jct": float(np.mean(values)), "std_jct": float(np.std(values))}
        for name, values in rows.items()
    }


def table3_scale_generalization(
    test_num_jobs: int = 30,
    test_num_executors: int = 50,
    job_scale_down: int = 5,
    executor_scale_down: int = 5,
    mean_interarrival: float = 45.0,
    seed: int = 0,
    train_iterations: int = 8,
) -> dict[str, float]:
    """Table 3: generalisation to deployments with more jobs / more executors.

    Agents trained with ``job_scale_down`` x fewer concurrent jobs or
    ``executor_scale_down`` x fewer executors are evaluated on the full test
    setting and compared against an agent trained directly on it.
    """
    test_config = SimulatorConfig(num_executors=test_num_executors, seed=seed)
    rng = np.random.default_rng(seed + 99)
    test_jobs = poisson_arrivals(
        sample_tpch_jobs(test_num_jobs, rng), mean_interarrival, rng
    )

    scenarios = {
        "trained_on_test_setting": (test_config, test_num_jobs),
        "trained_with_fewer_jobs": (test_config, max(2, test_num_jobs // job_scale_down)),
        "trained_on_smaller_cluster": (
            SimulatorConfig(
                num_executors=max(2, test_num_executors // executor_scale_down), seed=seed
            ),
            test_num_jobs,
        ),
    }
    outputs = {}
    for name, (train_config, train_jobs) in scenarios.items():
        agent, _ = train_decima_agent(
            train_config,
            tpch_poisson_factory(train_jobs, mean_interarrival),
            num_iterations=train_iterations,
            seed=seed,
        )
        # Evaluation always happens on the full-size test setting; the agent's
        # limit levels refer to its training cluster, so rebuild them for the
        # test cluster size (the policy itself is size-independent).
        agent.total_executors = test_num_executors
        agent._limit_levels = agent._build_limit_levels()
        result = run_scheduler_on_jobs(agent, test_jobs, config=test_config, seed=seed)
        outputs[name] = result.average_jct if result.finished_jobs else float("inf")
    return outputs
