"""Reproduction functions for the appendix experiments (Appendices A, D, E, G, H, I, J)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.agent import DecimaAgent, DecimaConfig
from ..core.features import FeatureConfig
from ..core.supervised import (
    CriticalPathDataset,
    CriticalPathRegressor,
    train_critical_path_regressor,
)
from ..schedulers import SJFCPScheduler, StaticOrderScheduler, exhaustive_search
from ..schedulers.base import Scheduler, critical_path_node, runnable_by_job
from ..simulator.duration import DurationModelConfig
from ..simulator.environment import Action, Observation, SimulatorConfig
from ..simulator.jobdag import JobDAG, Node
from ..simulator.multi_resource import multi_resource_config
from ..workloads.alibaba import sample_alibaba_jobs
from ..workloads.arrivals import batched_arrivals, poisson_arrivals
from ..workloads.tpch import TPCH_QUERY_IDS, make_tpch_job, sample_tpch_jobs
from .figures import compare_schedulers, concurrency_series
from .runner import clone_jobs, run_scheduler_on_jobs, tune_weighted_fair
from .training import tpch_batch_factory, tpch_poisson_factory, train_decima_agent

__all__ = [
    "toy_join_dag",
    "figure16_appendix_example",
    "figure18_simulator_fidelity",
    "figure19_expressiveness",
    "figure20_multi_resource_timeseries",
    "figure22_optimality",
    "figure23_incomplete_information",
]


# -------------------------------------------------------------- Appendix A (Fig 16)
def toy_join_dag(epsilon: float = 0.05) -> JobDAG:
    """The two-branch join DAG of Appendix A (Fig. 16).

    Left branch:  (5, eps) -> (1, 10);      right branch: (5, eps) -> (40, 1) -> (5, 10);
    both feed a final (5, eps) join stage.  On 5 task slots, a critical-path
    schedule takes 28 + 3eps while the optimal plan takes 20 + 3eps.
    """
    nodes = [
        Node(0, num_tasks=5, task_duration=epsilon, name="left-head"),
        Node(1, num_tasks=1, task_duration=10.0, name="left-tail"),
        Node(2, num_tasks=5, task_duration=epsilon, name="right-head"),
        Node(3, num_tasks=40, task_duration=1.0, name="right-mid"),
        Node(4, num_tasks=5, task_duration=10.0, name="right-tail"),
        Node(5, num_tasks=5, task_duration=epsilon, name="join"),
    ]
    edges = [(0, 1), (2, 3), (3, 4), (1, 5), (4, 5)]
    return JobDAG(nodes=nodes, edges=edges, name="appendix-a-join")


class _BalancedToyScheduler(Scheduler):
    """Hand-crafted optimal plan for the Appendix-A DAG: 1 slot left, 4 slots right."""

    name = "optimal_plan"

    def schedule(self, observation: Observation) -> Optional[Action]:
        grouped = runnable_by_job(observation)
        if not grouped:
            return None
        job, nodes = next(iter(grouped.items()))
        by_name = {node.name: node for node in nodes}
        # Give the long-running left tail its single slot first, then fill the
        # wide right branch with everything else.
        for name, limit in (
            ("left-head", observation.total_executors),
            ("right-head", observation.total_executors),
            ("left-tail", job.num_active_executors + 1),
            ("right-mid", observation.total_executors),
            ("right-tail", observation.total_executors),
            ("join", observation.total_executors),
        ):
            if name in by_name:
                return Action(node=by_name[name], parallelism_limit=limit)
        return Action(node=nodes[0], parallelism_limit=observation.total_executors)


class _CriticalPathToyScheduler(Scheduler):
    """Greedy critical-path-first schedule (the suboptimal plan of Fig. 16)."""

    name = "critical_path"

    def schedule(self, observation: Observation) -> Optional[Action]:
        grouped = runnable_by_job(observation)
        if not grouped:
            return None
        job, nodes = next(iter(grouped.items()))
        node = critical_path_node(nodes)
        return Action(node=node, parallelism_limit=observation.total_executors)


def figure16_appendix_example(epsilon: float = 0.05, num_slots: int = 5) -> dict[str, float]:
    """Makespan of the critical-path vs the optimal schedule on the toy DAG."""
    config = SimulatorConfig(
        num_executors=num_slots,
        duration=DurationModelConfig().simplified(),
        seed=0,
    )
    outputs = {}
    for scheduler in (_CriticalPathToyScheduler(), _BalancedToyScheduler()):
        result = run_scheduler_on_jobs(scheduler, [toy_join_dag(epsilon)], config=config)
        outputs[scheduler.name] = result.makespan
    outputs["theoretical_critical_path"] = 28 + 3 * epsilon
    outputs["theoretical_optimal"] = 20 + 3 * epsilon
    return outputs


# -------------------------------------------------------------- Appendix D (Fig 18)
def figure18_simulator_fidelity(
    query_ids: Sequence[int] = TPCH_QUERY_IDS,
    size_gb: float = 20.0,
    num_executors: int = 50,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Simulated vs "real" job durations, alone and in a shared cluster.

    Substitution: the paper compares its simulator against a real Spark
    cluster; offline we compare two independent stochastic executions of the
    full-fidelity simulator (different duration-noise seeds), which bounds the
    run-to-run error a user of the simulator would observe.
    """
    alone_errors = {}
    shared_errors = {}
    scheduler = SJFCPScheduler()
    config = SimulatorConfig(num_executors=num_executors, seed=seed)
    # Jobs in isolation.
    for query_id in query_ids:
        durations = []
        for replica in range(2):
            job = make_tpch_job(query_id, size_gb)
            result = run_scheduler_on_jobs(scheduler, [job], config=config, seed=seed + replica)
            durations.append(result.average_jct)
        reference, simulated = durations
        alone_errors[f"q{query_id}"] = abs(simulated - reference) / max(reference, 1e-9)
    # Jobs sharing the cluster.
    jobs = batched_arrivals([make_tpch_job(query_id, size_gb) for query_id in query_ids])
    per_run: list[dict[str, float]] = []
    for replica in range(2):
        result = run_scheduler_on_jobs(scheduler, jobs, config=config, seed=seed + replica)
        per_run.append(result.job_completion_times())
    for name in per_run[0]:
        reference = per_run[0][name]
        simulated = per_run[1].get(name, reference)
        shared_errors[name] = abs(simulated - reference) / max(reference, 1e-9)
    return {"isolated_relative_error": alone_errors, "shared_relative_error": shared_errors}


# -------------------------------------------------------------- Appendix E (Fig 19)
def figure19_expressiveness(
    num_train_graphs: int = 40,
    num_test_graphs: int = 20,
    num_iterations: int = 150,
    seed: int = 0,
) -> dict[str, list[float]]:
    """Critical-path identification accuracy: two-level vs single-level aggregation."""
    rng = np.random.default_rng(seed)
    train_set = CriticalPathDataset.generate(num_train_graphs, rng)
    test_set = CriticalPathDataset.generate(num_test_graphs, rng)
    curves = {}
    for name, two_level in (("two_level_aggregation", True), ("single_aggregation", False)):
        model = CriticalPathRegressor(two_level_aggregation=two_level, seed=seed)
        result = train_critical_path_regressor(
            model,
            train_set,
            test_set,
            num_iterations=num_iterations,
            rng=np.random.default_rng(seed + 1),
        )
        curves[name] = result.accuracy_per_eval
    return curves


# -------------------------------------------------------------- Appendix G (Fig 20/21)
def figure20_multi_resource_timeseries(
    multi_resource_results: dict[str, dict],
    step: float = 30.0,
) -> dict[str, dict]:
    """Concurrent jobs and executor usage over time for Decima vs Graphene* (Fig. 20/21)."""
    analysis = {}
    for name in ("decima", "graphene"):
        if name not in multi_resource_results:
            continue
        result = multi_resource_results[name]["result"]
        per_job_executors: dict[str, set[int]] = {}
        for record in result.timeline:
            per_job_executors.setdefault(record.job_name, set()).add(record.executor_id)
        analysis[name] = {
            "concurrency": concurrency_series(result, step=step),
            "executors_per_job": {k: len(v) for k, v in per_job_executors.items()},
            "average_jct": result.average_jct if result.finished_jobs else float("nan"),
        }
    return analysis


# -------------------------------------------------------------- Appendix H (Fig 22)
def figure22_optimality(
    num_jobs: int = 5,
    num_executors: int = 20,
    seed: int = 0,
    decima_agent: Optional[DecimaAgent] = None,
    train_iterations: int = 15,
) -> dict[str, float]:
    """Decima vs exhaustive job-ordering search in the simplified environment."""
    rng = np.random.default_rng(seed)
    jobs = batched_arrivals(sample_tpch_jobs(num_jobs, rng))
    config = SimulatorConfig(
        num_executors=num_executors,
        duration=DurationModelConfig().simplified(),
        seed=seed,
    )

    def evaluate_order(order: tuple[str, ...]) -> float:
        result = run_scheduler_on_jobs(StaticOrderScheduler(order), jobs, config=config, seed=seed)
        return result.average_jct

    _, best_jct, _ = exhaustive_search([job.name for job in jobs], evaluate_order)
    sjf_result = run_scheduler_on_jobs(SJFCPScheduler(), jobs, config=config, seed=seed)
    tuned, tuned_jct, _ = tune_weighted_fair(
        jobs, config=config, alphas=np.arange(-2.0, 2.01, 0.5), seed=seed
    )
    if decima_agent is None:
        decima_agent, _ = train_decima_agent(
            config,
            tpch_batch_factory(num_jobs),
            num_iterations=train_iterations,
            seed=seed,
        )
    decima_result = run_scheduler_on_jobs(decima_agent, jobs, config=config, seed=seed)
    return {
        "exhaustive_search": best_jct,
        "sjf_cp": sjf_result.average_jct,
        "opt_weighted_fair": tuned_jct,
        "decima": decima_result.average_jct,
    }


# -------------------------------------------------------------- Appendix J (Fig 23)
def figure23_incomplete_information(
    num_jobs: int = 15,
    num_executors: int = 50,
    seed: int = 0,
    train_iterations: int = 10,
) -> dict[str, float]:
    """Decima trained without task-duration estimates vs the tuned heuristic."""
    rng = np.random.default_rng(seed)
    jobs = batched_arrivals(sample_tpch_jobs(num_jobs, rng))
    config = SimulatorConfig(num_executors=num_executors, seed=seed)
    tuned, tuned_jct, _ = tune_weighted_fair(
        jobs, config=config, alphas=np.arange(-2.0, 2.01, 0.5), seed=seed
    )
    outputs = {"opt_weighted_fair": tuned_jct}
    for name, include_duration in (("decima", True), ("decima_no_duration", False)):
        agent_config = DecimaConfig(
            feature=FeatureConfig(include_task_duration=include_duration), seed=seed
        )
        agent, _ = train_decima_agent(
            config,
            tpch_batch_factory(num_jobs),
            num_iterations=train_iterations,
            agent_config=agent_config,
            seed=seed,
        )
        result = run_scheduler_on_jobs(agent, jobs, config=config, seed=seed)
        outputs[name] = result.average_jct
    return outputs
