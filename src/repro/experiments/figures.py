"""Reproduction functions for the figures in the paper's main body (§2, §7).

Every function regenerates the data behind one figure and returns plain Python
data structures (dicts of series / rows) that the benchmark harness prints.
Training budgets default to small values so the whole harness runs on a
laptop; the paper's qualitative shapes (who wins, by roughly what factor) are
what these functions reproduce, not the absolute testbed numbers.
"""

from __future__ import annotations

import copy
from dataclasses import replace
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.agent import DecimaAgent, DecimaConfig
from ..core.features import FeatureConfig
from ..core.reinforce import TrainingConfig
from ..schedulers import (
    FairScheduler,
    FIFOScheduler,
    GrapheneScheduler,
    NaiveWeightedFairScheduler,
    SJFCPScheduler,
    TetrisScheduler,
    WeightedFairScheduler,
)
from ..schedulers.base import Scheduler
from ..simulator.duration import DurationModelConfig
from ..simulator.environment import SimulatorConfig
from ..simulator.jobdag import JobDAG
from ..simulator.metrics import SimulationResult
from ..simulator.multi_resource import assign_memory_requests, multi_resource_config
from ..workloads.alibaba import sample_alibaba_jobs
from ..workloads.arrivals import batched_arrivals, poisson_arrivals
from ..workloads.scaling import runtime_vs_parallelism
from ..workloads.tpch import make_tpch_job, sample_tpch_jobs, tpch_query_template
from .runner import clone_jobs, run_episode, run_scheduler_on_jobs, tune_weighted_fair
from .training import tpch_batch_factory, tpch_poisson_factory, train_decima_agent

__all__ = [
    "compare_schedulers",
    "concurrency_series",
    "figure2_parallelism_curves",
    "figure3_illustrative_example",
    "figure7_arrival_variance",
    "figure9a_batched_arrivals",
    "figure9b_continuous_arrivals",
    "figure10_time_series",
    "figure11_multi_resource",
    "figure12_executor_profile",
    "figure13_objectives",
    "figure14_ablations",
    "figure15a_learning_curves",
    "figure15b_scheduling_delay",
]


# --------------------------------------------------------------------- helpers
def compare_schedulers(
    schedulers: dict[str, Scheduler],
    jobs: Sequence[JobDAG],
    config: SimulatorConfig,
    seed: int = 0,
) -> dict[str, SimulationResult]:
    """Run every scheduler on identical copies of ``jobs`` and return the results."""
    results = {}
    for name, scheduler in schedulers.items():
        results[name] = run_scheduler_on_jobs(scheduler, jobs, config=config, seed=seed)
    return results


def concurrency_series(result: SimulationResult, step: float = 1.0) -> list[tuple[float, int]]:
    """Number of jobs in the system over time (Fig. 10a / Fig. 20)."""
    jobs = result.finished_jobs + result.unfinished_jobs
    if not jobs:
        return []
    events: list[tuple[float, int]] = []
    for job in jobs:
        events.append((job.arrival_time, +1))
        end = job.completion_time if job.completion_time >= 0 else result.wall_time
        events.append((end, -1))
    events.sort()
    horizon = max(time for time, _ in events)
    series = []
    count = 0
    index = 0
    for time in np.arange(0.0, horizon + step, step):
        while index < len(events) and events[index][0] <= time:
            count += events[index][1]
            index += 1
        series.append((float(time), count))
    return series


def _standard_baselines() -> dict[str, Scheduler]:
    return {
        "fifo": FIFOScheduler(),
        "sjf_cp": SJFCPScheduler(),
        "fair": FairScheduler(),
        "naive_weighted_fair": NaiveWeightedFairScheduler(),
    }


# ----------------------------------------------------------------------- Fig 2
def figure2_parallelism_curves(
    configurations: Sequence[tuple[int, float]] = ((9, 100.0), (9, 2.0), (2, 100.0)),
    max_parallelism: int = 100,
) -> dict[str, list[tuple[int, float]]]:
    """Job runtime vs. degree of parallelism for selected (query, input size) pairs."""
    curves = {}
    for query_id, size_gb in configurations:
        template = tpch_query_template(query_id)
        profile = template.scaling.scaled(size_gb)
        total_work = template.total_work(size_gb)
        curves[f"Q{query_id}, {size_gb:g} GB"] = runtime_vs_parallelism(
            total_work, profile, max_parallelism
        )
    return curves


# ----------------------------------------------------------------------- Fig 3
def figure3_illustrative_example(
    num_jobs: int = 10,
    num_executors: int = 50,
    seed: int = 0,
    decima_agent: Optional[DecimaAgent] = None,
    train_iterations: int = 10,
) -> dict[str, dict]:
    """FIFO vs SJF vs fair vs Decima on a random 10-job TPC-H batch (§2.3)."""
    rng = np.random.default_rng(seed)
    jobs = batched_arrivals(sample_tpch_jobs(num_jobs, rng))
    config = SimulatorConfig(num_executors=num_executors, seed=seed)
    if decima_agent is None:
        decima_agent, _ = train_decima_agent(
            config,
            tpch_batch_factory(num_jobs),
            num_iterations=train_iterations,
            seed=seed,
        )
    schedulers: dict[str, Scheduler] = {
        "fifo": FIFOScheduler(),
        "sjf": SJFCPScheduler(),
        "fair": FairScheduler(),
        "decima": decima_agent,
    }
    results = compare_schedulers(schedulers, jobs, config, seed=seed)
    return {
        name: {
            "average_jct": result.average_jct,
            "makespan": result.makespan,
            "timeline": result.timeline,
        }
        for name, result in results.items()
    }


# ----------------------------------------------------------------------- Fig 7
def figure7_arrival_variance(
    num_sequences: int = 2,
    num_jobs: int = 40,
    mean_interarrival: float = 10.0,
    num_executors: int = 50,
    seed: int = 0,
    step: float = 10.0,
) -> dict[str, list[tuple[float, float]]]:
    """Penalty (jobs in system) over time for different job-arrival sequences.

    The same scheduler experiences vastly different penalties purely because of
    arrival randomness — the variance the input-dependent baseline removes.
    """
    series = {}
    for sequence_index in range(num_sequences):
        rng = np.random.default_rng(seed + sequence_index)
        jobs = poisson_arrivals(sample_tpch_jobs(num_jobs, rng), mean_interarrival, rng)
        config = SimulatorConfig(num_executors=num_executors, seed=seed)
        result = run_scheduler_on_jobs(FairScheduler(), jobs, config=config, seed=seed)
        penalty = [(time, float(count)) for time, count in concurrency_series(result, step=step)]
        series[f"job sequence {sequence_index + 1}"] = penalty
    return series


# ----------------------------------------------------------------------- Fig 9
def figure9a_batched_arrivals(
    num_experiments: int = 3,
    num_jobs: int = 20,
    num_executors: int = 50,
    seed: int = 0,
    decima_agent: Optional[DecimaAgent] = None,
    train_iterations: int = 10,
    include_multi_resource_baselines: bool = True,
) -> dict[str, list[float]]:
    """Average JCT of every baseline and Decima over repeated random batches.

    Returns one list of average JCTs per scheduler (the CDF material of
    Fig. 9a).  The tuned weighted-fair heuristic is re-tuned per experiment,
    exactly as in §7.1.
    """
    config = SimulatorConfig(num_executors=num_executors, seed=seed)
    if decima_agent is None:
        decima_agent, _ = train_decima_agent(
            config, tpch_batch_factory(num_jobs), num_iterations=train_iterations, seed=seed
        )
    jcts: dict[str, list[float]] = {}
    for experiment in range(num_experiments):
        rng = np.random.default_rng(seed + 1000 + experiment)
        jobs = batched_arrivals(sample_tpch_jobs(num_jobs, rng))
        schedulers: dict[str, Scheduler] = dict(_standard_baselines())
        tuned, _, _ = tune_weighted_fair(jobs, config=config, alphas=np.arange(-2.0, 2.01, 0.5))
        schedulers["opt_weighted_fair"] = tuned
        if include_multi_resource_baselines:
            schedulers["tetris"] = TetrisScheduler()
            schedulers["graphene"] = GrapheneScheduler()
        schedulers["decima"] = decima_agent
        results = compare_schedulers(schedulers, jobs, config, seed=seed + experiment)
        for name, result in results.items():
            jcts.setdefault(name, []).append(result.average_jct)
    return jcts


def figure9b_continuous_arrivals(
    num_jobs: int = 50,
    mean_interarrival: float = 45.0,
    num_executors: int = 50,
    seed: int = 0,
    decima_agent: Optional[DecimaAgent] = None,
    train_iterations: int = 10,
    max_time: float = float("inf"),
) -> dict[str, float]:
    """Continuous Poisson arrivals: Decima vs the strongest heuristic (Fig. 9b)."""
    rng = np.random.default_rng(seed)
    jobs = poisson_arrivals(sample_tpch_jobs(num_jobs, rng), mean_interarrival, rng)
    config = SimulatorConfig(num_executors=num_executors, seed=seed, max_time=max_time)
    if decima_agent is None:
        decima_agent, _ = train_decima_agent(
            config,
            tpch_poisson_factory(num_jobs, mean_interarrival),
            num_iterations=train_iterations,
            seed=seed,
        )
    tuned, _, _ = tune_weighted_fair(jobs, config=config, alphas=np.arange(-2.0, 2.01, 0.5))
    schedulers: dict[str, Scheduler] = {
        "opt_weighted_fair": tuned,
        "fair": FairScheduler(),
        "decima": decima_agent,
    }
    results = compare_schedulers(schedulers, jobs, config, seed=seed)
    return {name: result.average_jct for name, result in results.items()}


# ---------------------------------------------------------------------- Fig 10
def figure10_time_series(
    num_jobs: int = 50,
    mean_interarrival: float = 45.0,
    num_executors: int = 50,
    seed: int = 0,
    decima_agent: Optional[DecimaAgent] = None,
    train_iterations: int = 10,
    step: float = 30.0,
) -> dict[str, dict]:
    """Time-series analysis of continuous arrivals (Fig. 10a-e).

    For Decima and the tuned weighted-fair heuristic, returns: the number of
    concurrent jobs over time, per-job (total work, JCT) pairs, per-job
    executed work (work-inflation comparison), and per-job peak executor share.
    """
    rng = np.random.default_rng(seed)
    jobs = poisson_arrivals(sample_tpch_jobs(num_jobs, rng), mean_interarrival, rng)
    config = SimulatorConfig(num_executors=num_executors, seed=seed)
    if decima_agent is None:
        decima_agent, _ = train_decima_agent(
            config,
            tpch_poisson_factory(num_jobs, mean_interarrival),
            num_iterations=train_iterations,
            seed=seed,
        )
    tuned, _, _ = tune_weighted_fair(jobs, config=config, alphas=np.arange(-2.0, 2.01, 0.5))
    schedulers: dict[str, Scheduler] = {"opt_weighted_fair": tuned, "decima": decima_agent}
    results = compare_schedulers(schedulers, jobs, config, seed=seed)

    analysis: dict[str, dict] = {}
    for name, result in results.items():
        jct_vs_work = [
            (job.total_work, job.completion_duration()) for job in result.finished_jobs
        ]
        executed_work = result.per_job_work()
        executors_per_job: dict[str, int] = {}
        for record in result.timeline:
            executors_per_job.setdefault(record.job_name, set())
        per_job_executors = {}
        for record in result.timeline:
            per_job_executors.setdefault(record.job_name, set()).add(record.executor_id)
        analysis[name] = {
            "average_jct": result.average_jct if result.finished_jobs else float("nan"),
            "concurrency": concurrency_series(result, step=step),
            "jct_vs_work": jct_vs_work,
            "executed_work": executed_work,
            "executors_per_job": {k: len(v) for k, v in per_job_executors.items()},
        }
    return analysis


# ---------------------------------------------------------------------- Fig 11
def figure11_multi_resource(
    workload: str = "tpch",
    num_jobs: int = 20,
    total_executors: int = 40,
    mean_interarrival: float = 60.0,
    seed: int = 0,
    decima_agent: Optional[DecimaAgent] = None,
    train_iterations: int = 10,
    max_time: float = float("inf"),
) -> dict[str, dict]:
    """Multi-resource packing: Decima vs weighted fair, Tetris and Graphene* (§7.3)."""
    if workload not in ("tpch", "alibaba"):
        raise ValueError("workload must be 'tpch' or 'alibaba'")
    rng = np.random.default_rng(seed)
    if workload == "tpch":
        jobs = poisson_arrivals(sample_tpch_jobs(num_jobs, rng), mean_interarrival, rng)
        assign_memory_requests(jobs, seed=seed)
    else:
        jobs = sample_alibaba_jobs(num_jobs, rng, mean_interarrival=mean_interarrival)
    config = multi_resource_config(total_executors=total_executors, seed=seed, max_time=max_time)
    if decima_agent is None:
        agent_config = DecimaConfig(multi_resource=True, seed=seed)
        factory = (
            tpch_poisson_factory(num_jobs, mean_interarrival, with_memory=True)
            if workload == "tpch"
            else (lambda r: sample_alibaba_jobs(num_jobs, r, mean_interarrival=mean_interarrival))
        )
        decima_agent, _ = train_decima_agent(
            config,
            factory,
            num_iterations=train_iterations,
            agent_config=agent_config,
            seed=seed,
        )
    tuned, _, _ = tune_weighted_fair(jobs, config=config, alphas=np.arange(-2.0, 2.01, 0.5))
    schedulers: dict[str, Scheduler] = {
        "opt_weighted_fair": tuned,
        "tetris": TetrisScheduler(),
        "graphene": GrapheneScheduler(),
        "decima": decima_agent,
    }
    results = compare_schedulers(schedulers, jobs, config, seed=seed)
    return {
        name: {
            "average_jct": result.average_jct if result.finished_jobs else float("nan"),
            "result": result,
        }
        for name, result in results.items()
    }


# ---------------------------------------------------------------------- Fig 12
def figure12_executor_profile(
    multi_resource_results: Optional[dict[str, dict]] = None,
    num_bins: int = 4,
    small_fraction: float = 0.2,
    **figure11_kwargs,
) -> dict[str, object]:
    """Decima vs Graphene*: per-job-size JCT ratio and large-executor usage (Fig. 12).

    Either pass the output of :func:`figure11_multi_resource` or let this
    function run it with ``figure11_kwargs``.
    """
    if multi_resource_results is None:
        multi_resource_results = figure11_multi_resource(**figure11_kwargs)
    decima = multi_resource_results["decima"]["result"]
    graphene = multi_resource_results["graphene"]["result"]

    def jct_by_name(result: SimulationResult) -> dict[str, tuple[float, float]]:
        return {
            job.name: (job.total_work, job.completion_duration())
            for job in result.finished_jobs
        }

    decima_jcts = jct_by_name(decima)
    graphene_jcts = jct_by_name(graphene)
    common = sorted(set(decima_jcts) & set(graphene_jcts))
    if not common:
        return {"jct_ratio_by_work_bin": {}, "large_executor_usage_ratio": float("nan")}
    works = np.array([decima_jcts[name][0] for name in common])
    ratios = np.array(
        [decima_jcts[name][1] / max(graphene_jcts[name][1], 1e-9) for name in common]
    )
    bin_edges = np.quantile(works, np.linspace(0, 1, num_bins + 1))
    jct_ratio_by_bin = {}
    for bin_index in range(num_bins):
        low, high = bin_edges[bin_index], bin_edges[bin_index + 1]
        mask = (works >= low) & (works <= high if bin_index == num_bins - 1 else works < high)
        if mask.any():
            jct_ratio_by_bin[f"work<= {high:.0f}"] = float(ratios[mask].mean())

    # Usage of the largest executor class on the smallest jobs, Decima / Graphene*.
    small_names = {
        name for name, _ in sorted(
            ((name, decima_jcts[name][0]) for name in common), key=lambda item: item[1]
        )[: max(1, int(len(common) * small_fraction))]
    }

    def large_class_usage(result: SimulationResult) -> float:
        # Executors with the highest ids belong to the largest class (the config
        # builds classes in ascending memory order).
        large_threshold = 0.75 * max(
            (record.executor_id for record in result.timeline), default=0
        )
        usage = sum(
            1
            for record in result.timeline
            if record.job_name in small_names and record.executor_id >= large_threshold
        )
        return float(usage)

    decima_usage = large_class_usage(decima)
    graphene_usage = large_class_usage(graphene)
    if graphene_usage > 0:
        usage_ratio = decima_usage / graphene_usage
    else:
        usage_ratio = float("inf") if decima_usage > 0 else 1.0
    return {
        "jct_ratio_by_work_bin": jct_ratio_by_bin,
        "large_executor_usage_ratio": usage_ratio,
        "decima_large_executor_tasks": decima_usage,
        "graphene_large_executor_tasks": graphene_usage,
    }


# ---------------------------------------------------------------------- Fig 13
def figure13_objectives(
    num_jobs: int = 10,
    num_executors: int = 20,
    seed: int = 0,
    train_iterations: int = 10,
) -> dict[str, dict]:
    """Learned policies under different objectives and environments (Fig. 13).

    Three settings: (a) average JCT with costly executor movement, (b) average
    JCT with free executor movement, (c) makespan objective.
    """
    rng = np.random.default_rng(seed)
    jobs = batched_arrivals(sample_tpch_jobs(num_jobs, rng))
    settings = {
        "avg_jct": SimulatorConfig(num_executors=num_executors, seed=seed),
        "avg_jct_free_motion": SimulatorConfig(
            num_executors=num_executors,
            seed=seed,
            duration=DurationModelConfig(enable_moving_delay=False, moving_delay=0.0),
        ),
        "makespan": SimulatorConfig(
            num_executors=num_executors, seed=seed, reward_mode="makespan"
        ),
    }
    outputs = {}
    for name, config in settings.items():
        agent, _ = train_decima_agent(
            config,
            tpch_batch_factory(num_jobs),
            num_iterations=train_iterations,
            seed=seed,
        )
        result = run_scheduler_on_jobs(agent, jobs, config=config, seed=seed)
        outputs[name] = {
            "average_jct": result.average_jct,
            "makespan": result.makespan,
            "timeline": result.timeline,
        }
    return outputs


# ---------------------------------------------------------------------- Fig 14
def figure14_ablations(
    mean_interarrivals: Sequence[float] = (90.0, 45.0),
    num_jobs: int = 30,
    num_executors: int = 50,
    seed: int = 0,
    train_iterations: int = 8,
    max_time: float = float("inf"),
) -> dict[str, dict[float, float]]:
    """Contribution of each key idea (Fig. 14).

    Variants: full Decima, w/o graph embedding, w/o parallelism control,
    trained on batched arrivals, w/o input-dependent variance reduction — all
    compared against the tuned weighted-fair heuristic at several loads
    (parameterised here by the mean interarrival time; smaller = higher load).
    """
    variants: dict[str, Callable[[], tuple[DecimaConfig, TrainingConfig, bool]]] = {
        "decima": lambda: (DecimaConfig(seed=seed), TrainingConfig(seed=seed), False),
        "no_graph_embedding": lambda: (
            DecimaConfig(seed=seed, use_graph_embedding=False),
            TrainingConfig(seed=seed),
            False,
        ),
        "no_parallelism_control": lambda: (
            DecimaConfig(seed=seed, use_parallelism_control=False),
            TrainingConfig(seed=seed),
            False,
        ),
        "no_variance_reduction": lambda: (
            DecimaConfig(seed=seed),
            TrainingConfig(
                seed=seed,
                use_input_dependent_baseline=False,
                fix_job_sequence_per_iteration=False,
            ),
            False,
        ),
        "trained_on_batched": lambda: (DecimaConfig(seed=seed), TrainingConfig(seed=seed), True),
    }
    output: dict[str, dict[float, float]] = {name: {} for name in variants}
    output["opt_weighted_fair"] = {}

    for interarrival in mean_interarrivals:
        rng = np.random.default_rng(seed + 17)
        test_jobs = poisson_arrivals(sample_tpch_jobs(num_jobs, rng), interarrival, rng)
        config = SimulatorConfig(num_executors=num_executors, seed=seed, max_time=max_time)
        tuned, tuned_jct, _ = tune_weighted_fair(
            test_jobs, config=config, alphas=np.arange(-2.0, 2.01, 0.5)
        )
        output["opt_weighted_fair"][interarrival] = tuned_jct
        for name, make in variants.items():
            agent_config, training_config, batched_training = make()
            factory = (
                tpch_batch_factory(num_jobs)
                if batched_training
                else tpch_poisson_factory(num_jobs, interarrival)
            )
            agent, _ = train_decima_agent(
                config,
                factory,
                num_iterations=train_iterations,
                agent_config=agent_config,
                training_config=training_config,
                seed=seed,
            )
            result = run_scheduler_on_jobs(agent, test_jobs, config=config, seed=seed)
            jct = result.average_jct if result.finished_jobs else float("inf")
            output[name][interarrival] = jct
    return output


# ---------------------------------------------------------------------- Fig 15
def figure15a_learning_curves(
    num_iterations: int = 15,
    num_jobs: int = 8,
    num_executors: int = 20,
    seed: int = 0,
) -> dict[str, list[float]]:
    """Training reward curves for the three parallelism-control encodings (Fig. 15a)."""
    config = SimulatorConfig(num_executors=num_executors, seed=seed)
    factory = tpch_batch_factory(num_jobs)
    variants = {
        "decima": DecimaConfig(seed=seed),
        "limit_one_hot": DecimaConfig(seed=seed, limit_value_input=False),
        "no_parallelism_control": DecimaConfig(seed=seed, use_parallelism_control=False),
    }
    curves = {}
    for name, agent_config in variants.items():
        _, history = train_decima_agent(
            config,
            factory,
            num_iterations=num_iterations,
            agent_config=agent_config,
            seed=seed,
        )
        curves[name] = [float(stats.mean_total_reward) for stats in history.iterations]
    return curves


def figure15b_scheduling_delay(
    num_jobs: int = 20,
    mean_interarrival: float = 45.0,
    num_executors: int = 50,
    seed: int = 0,
    decima_agent: Optional[DecimaAgent] = None,
    train_iterations: int = 5,
) -> dict[str, list[float]]:
    """Scheduling-decision latency vs. time between scheduling events (Fig. 15b)."""
    rng = np.random.default_rng(seed)
    jobs = poisson_arrivals(sample_tpch_jobs(num_jobs, rng), mean_interarrival, rng)
    config = SimulatorConfig(num_executors=num_executors, seed=seed)
    if decima_agent is None:
        decima_agent, _ = train_decima_agent(
            config,
            tpch_poisson_factory(num_jobs, mean_interarrival),
            num_iterations=train_iterations,
            seed=seed,
        )
    from ..simulator.environment import SchedulingEnvironment

    environment = SchedulingEnvironment(config)
    result = run_episode(
        environment, decima_agent, clone_jobs(jobs), seed=seed, record_delays=True
    )
    event_times = sorted({record.finish_time for record in result.timeline})
    intervals = list(np.diff(event_times)) if len(event_times) > 1 else []
    return {
        "scheduling_delays": [float(delay) for delay in result.scheduling_delays],
        "event_intervals": [float(interval) for interval in intervals],
    }
