"""Convenience helpers to train Decima agents for the experiment harness.

The paper trains for 50,000 iterations on a GPU; the harness defaults are tiny
so every benchmark finishes on a laptop, and every budget is a parameter so
longer runs use exactly the same code path.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.agent import DecimaAgent, DecimaConfig
from ..core.parallel import ParallelRolloutBackend, RolloutBackend
from ..core.reinforce import ReinforceTrainer, TrainingConfig, TrainingHistory
from ..simulator.environment import SimulatorConfig
from ..simulator.jobdag import JobDAG
from ..simulator.multi_resource import assign_memory_requests
from ..workloads.arrivals import batched_arrivals, poisson_arrivals
from ..workloads.tpch import sample_tpch_jobs

__all__ = [
    "tpch_batch_factory",
    "tpch_poisson_factory",
    "train_decima_agent",
]


def tpch_batch_factory(
    num_jobs: int,
    sizes: Sequence[float] = (2.0, 5.0, 10.0, 20.0, 50.0, 100.0),
    with_memory: bool = False,
) -> Callable[[np.random.Generator], list[JobDAG]]:
    """Factory of batched TPC-H job sets (all jobs arrive at time zero)."""

    def factory(rng: np.random.Generator) -> list[JobDAG]:
        jobs = batched_arrivals(sample_tpch_jobs(num_jobs, rng, sizes=sizes))
        if with_memory:
            assign_memory_requests(jobs, seed=int(rng.integers(0, 2**31 - 1)))
        return jobs

    return factory


def tpch_poisson_factory(
    num_jobs: int,
    mean_interarrival: float,
    sizes: Sequence[float] = (2.0, 5.0, 10.0, 20.0, 50.0, 100.0),
    with_memory: bool = False,
) -> Callable[[np.random.Generator], list[JobDAG]]:
    """Factory of continuous-arrival TPC-H job sequences (Poisson arrivals)."""

    def factory(rng: np.random.Generator) -> list[JobDAG]:
        jobs = sample_tpch_jobs(num_jobs, rng, sizes=sizes)
        jobs = poisson_arrivals(jobs, mean_interarrival, rng)
        if with_memory:
            assign_memory_requests(jobs, seed=int(rng.integers(0, 2**31 - 1)))
        return jobs

    return factory


def train_decima_agent(
    simulator_config: SimulatorConfig,
    job_sequence_factory: Callable[[np.random.Generator], list[JobDAG]],
    num_iterations: int = 20,
    episodes_per_iteration: int = 2,
    agent_config: Optional[DecimaConfig] = None,
    training_config: Optional[TrainingConfig] = None,
    seed: int = 0,
    num_workers: int = 1,
    rollout_backend: Optional[RolloutBackend] = None,
) -> tuple[DecimaAgent, TrainingHistory]:
    """Build and train a Decima agent; returns the agent and its training history.

    ``num_workers > 1`` collects each iteration's episodes on a persistent
    pool of that many rollout worker processes (§5.3, Algorithm 1); the
    default serial path is bit-identical to the historical behaviour.  Pass
    ``rollout_backend`` to supply a pre-configured backend instead.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1 (1 = serial collection)")
    agent_config = agent_config or DecimaConfig(seed=seed)
    agent = DecimaAgent(total_executors=simulator_config.num_executors, config=agent_config)
    training_config = training_config or TrainingConfig(seed=seed)
    training_config = replace(
        training_config,
        num_iterations=num_iterations,
        episodes_per_iteration=episodes_per_iteration,
    )
    backend = rollout_backend
    if backend is None and num_workers > 1:
        backend = ParallelRolloutBackend(num_workers=num_workers, seed=seed)
    trainer = ReinforceTrainer(
        agent, simulator_config, job_sequence_factory, training_config, backend=backend
    )
    with trainer:
        history = trainer.train()
    return agent, history
