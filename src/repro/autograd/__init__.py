"""Reverse-mode automatic differentiation substrate (replaces TensorFlow)."""

from .tensor import (
    Tensor,
    as_tensor,
    concat,
    gather_rows,
    scatter_add_rows,
    segment_sum,
    stack,
)
from .functional import (
    entropy_from_log_probs,
    log_softmax,
    masked_log_softmax,
    masked_log_softmax_data,
    masked_softmax,
    softmax,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "gather_rows",
    "scatter_add_rows",
    "segment_sum",
    "softmax",
    "log_softmax",
    "masked_softmax",
    "masked_log_softmax",
    "masked_log_softmax_data",
    "entropy_from_log_probs",
]
