"""A small reverse-mode automatic differentiation engine over numpy arrays.

This module is the substrate that replaces TensorFlow in the original Decima
implementation.  It provides a :class:`Tensor` wrapper around ``numpy.ndarray``
that records the operations applied to it and can back-propagate gradients with
:meth:`Tensor.backward`.

Only the operations needed by Decima's graph neural network and policy network
are implemented, but each one supports full numpy broadcasting and is verified
against finite differences in the test suite.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "segment_sum",
    "gather_rows",
    "scatter_add_rows",
    "as_tensor",
]


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after a broadcasted operation.

    Numpy broadcasting may expand a tensor along leading axes or along axes of
    size one; the corresponding gradient must be summed back over those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over broadcast (size-1) dimensions.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` into a :class:`Tensor` (no copy if it already is one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A numpy array with reverse-mode gradient tracking.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False, _parents=(), _backward=None):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents = tuple(_parents)
        self._backward = _backward

    # ------------------------------------------------------------------ basic
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------- autograd
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (use a scalar tensor for loss values).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        # Topological order of the graph ending at ``self``.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node._accumulate(node_grad)
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None:
                    continue
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pgrad
                else:
                    grads[id(parent)] = pgrad

    @staticmethod
    def _needs_graph(*tensors: "Tensor") -> bool:
        return any(t.requires_grad or t._backward is not None for t in tensors)

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            return (_unbroadcast(grad, self.shape), _unbroadcast(grad, other.shape))

        if self._needs_graph(self, other):
            return Tensor(out_data, _parents=(self, other), _backward=backward)
        return Tensor(out_data)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad):
            return (-grad,)

        if self._needs_graph(self):
            return Tensor(out_data, _parents=(self,), _backward=backward)
        return Tensor(out_data)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        if self._needs_graph(self, other):
            return Tensor(out_data, _parents=(self, other), _backward=backward)
        return Tensor(out_data)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad):
            return (
                _unbroadcast(grad / other.data, self.shape),
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape),
            )

        if self._needs_graph(self, other):
            return Tensor(out_data, _parents=(self, other), _backward=backward)
        return Tensor(out_data)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        if self._needs_graph(self):
            return Tensor(out_data, _parents=(self,), _backward=backward)
        return Tensor(out_data)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad):
            grad = np.asarray(grad)
            grad_self = grad @ other.data.T if other.data.ndim == 2 else np.outer(grad, other.data)
            grad_other = self.data.T @ grad
            return (_unbroadcast(grad_self, self.shape), _unbroadcast(grad_other, other.shape))

        if self._needs_graph(self, other):
            return Tensor(out_data, _parents=(self, other), _backward=backward)
        return Tensor(out_data)

    # ------------------------------------------------------------ reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            grad = np.asarray(grad)
            if axis is None:
                return (np.broadcast_to(grad, self.shape).copy(),)
            if not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            return (np.broadcast_to(grad, self.shape).copy(),)

        if self._needs_graph(self):
            return Tensor(out_data, _parents=(self,), _backward=backward)
        return Tensor(out_data)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            grad = np.asarray(grad)
            if axis is None:
                mask = (self.data == out_data).astype(np.float64)
                mask /= mask.sum()
                return (grad * mask,)
            expanded = out_data if keepdims else np.expand_dims(out_data, axis=axis)
            g = grad if keepdims else np.expand_dims(grad, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            return (g * mask,)

        if self._needs_graph(self):
            return Tensor(out_data, _parents=(self,), _backward=backward)
        return Tensor(out_data)

    # ---------------------------------------------------------- elementwise
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            return (grad * out_data,)

        if self._needs_graph(self):
            return Tensor(out_data, _parents=(self,), _backward=backward)
        return Tensor(out_data)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad):
            return (grad / self.data,)

        if self._needs_graph(self):
            return Tensor(out_data, _parents=(self,), _backward=backward)
        return Tensor(out_data)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - out_data ** 2),)

        if self._needs_graph(self):
            return Tensor(out_data, _parents=(self,), _backward=backward)
        return Tensor(out_data)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            return (grad * out_data * (1.0 - out_data),)

        if self._needs_graph(self):
            return Tensor(out_data, _parents=(self,), _backward=backward)
        return Tensor(out_data)

    def relu(self) -> "Tensor":
        return self.leaky_relu(0.0)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = np.where(self.data > 0.0, 1.0, negative_slope)
        out_data = self.data * mask

        def backward(grad):
            return (grad * mask,)

        if self._needs_graph(self):
            return Tensor(out_data, _parents=(self,), _backward=backward)
        return Tensor(out_data)

    # -------------------------------------------------------------- reshape
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad):
            return (np.asarray(grad).reshape(self.shape),)

        if self._needs_graph(self):
            return Tensor(out_data, _parents=(self,), _backward=backward)
        return Tensor(out_data)

    @property
    def T(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad):
            return (np.asarray(grad).T,)

        if self._needs_graph(self):
            return Tensor(out_data, _parents=(self,), _backward=backward)
        return Tensor(out_data)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, np.asarray(grad))
            return (full,)

        if self._needs_graph(self):
            return Tensor(out_data, _parents=(self,), _backward=backward)
        return Tensor(out_data)


# --------------------------------------------------------------------- joins
def concat(tensors, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]

    def backward(grad):
        grad = np.asarray(grad)
        pieces = np.split(grad, np.cumsum(sizes)[:-1], axis=axis)
        return tuple(pieces)

    if Tensor._needs_graph(*tensors):
        return Tensor(out_data, _parents=tuple(tensors), _backward=backward)
    return Tensor(out_data)


def stack(tensors, axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        grad = np.asarray(grad)
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    if Tensor._needs_graph(*tensors):
        return Tensor(out_data, _parents=tuple(tensors), _backward=backward)
    return Tensor(out_data)


def gather_rows(tensor: Tensor, indices) -> Tensor:
    """Select rows of a 2-D tensor; equivalent to ``tensor[indices]``."""
    return as_tensor(tensor)[np.asarray(indices, dtype=np.intp)]


def scatter_add_rows(base: Tensor, rows, updates: Tensor) -> Tensor:
    """Add ``updates`` into ``base`` at the given row indices (out-of-place).

    ``out[rows[k]] += updates[k]``; duplicate row indices accumulate.  This is
    the scatter counterpart of :func:`gather_rows` and the primitive the
    sparse frontier message-passing path uses to write a height level's
    updated embeddings back into the full ``(N, D)`` embedding matrix.
    """
    base = as_tensor(base)
    updates = as_tensor(updates)
    rows = np.asarray(rows, dtype=np.intp)
    if rows.shape[0] != updates.shape[0]:
        raise ValueError("rows must have one entry per row of updates")
    out_data = np.array(base.data, copy=True)
    np.add.at(out_data, rows, updates.data)

    def backward(grad):
        grad = np.asarray(grad)
        return (grad, grad[rows])

    if Tensor._needs_graph(base, updates):
        return Tensor(out_data, _parents=(base, updates), _backward=backward)
    return Tensor(out_data)


def segment_sum(tensor: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Sum rows of ``tensor`` grouped by ``segment_ids``.

    ``segment_ids`` maps each row to an output segment in
    ``[0, num_segments)``; rows of the result are the per-segment sums.  This
    is the aggregation primitive used both for summing child-node messages and
    for per-job / global summaries in the graph neural network.
    """
    tensor = as_tensor(tensor)
    segment_ids = np.asarray(segment_ids, dtype=np.intp)
    if segment_ids.shape[0] != tensor.shape[0]:
        raise ValueError("segment_ids must have one entry per row of tensor")
    out_shape = (num_segments,) + tensor.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, segment_ids, tensor.data)

    def backward(grad):
        return (np.asarray(grad)[segment_ids],)

    if Tensor._needs_graph(tensor):
        return Tensor(out_data, _parents=(tensor,), _backward=backward)
    return Tensor(out_data)
