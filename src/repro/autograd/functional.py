"""Composite differentiable functions built from :mod:`repro.autograd.tensor` ops.

These helpers implement the softmax machinery Decima's policy network needs,
including *masked* softmaxes over variable-size action sets (Eq. 2 of the
paper restricts the softmax to the set of schedulable nodes).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "softmax",
    "log_softmax",
    "masked_softmax",
    "masked_log_softmax",
    "masked_log_softmax_data",
    "entropy_from_log_probs",
]

_NEG_INF = -1.0e9


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    logits = as_tensor(logits)
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    logits = as_tensor(logits)
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm

def _masked_logits(logits: Tensor, mask) -> tuple[Tensor, np.ndarray]:
    logits = as_tensor(logits)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != logits.shape:
        raise ValueError(f"mask shape {mask.shape} != logits shape {logits.shape}")
    if not mask.any():
        raise ValueError("masked softmax requires at least one valid entry")
    offset = np.where(mask, 0.0, _NEG_INF)
    return logits + Tensor(offset), mask


def masked_softmax(logits: Tensor, mask, axis: int = -1) -> Tensor:
    """Softmax restricted to entries where ``mask`` is True.

    Masked-out entries receive probability (numerically) zero, mirroring the
    restriction of Eq. 2 to the schedulable-node set ``A_t``.
    """
    shifted, _ = _masked_logits(logits, mask)
    return softmax(shifted, axis=axis)


def masked_log_softmax(logits: Tensor, mask, axis: int = -1) -> Tensor:
    """Log of :func:`masked_softmax` (stable; masked entries are ~-1e9)."""
    shifted, _ = _masked_logits(logits, mask)
    return log_softmax(shifted, axis=axis)


def masked_log_softmax_data(logits: np.ndarray, mask, axis: int = -1) -> np.ndarray:
    """Pure-numpy :func:`masked_log_softmax` on raw data (no autograd graph).

    Mirrors the Tensor version operation for operation, so the returned values
    are bit-identical to ``masked_log_softmax(...).data``.  The agent's
    inference path uses it for action selection, where the log-probabilities
    are consumed immediately and no gradient will ever flow.
    """
    logits = np.asarray(logits, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != logits.shape:
        raise ValueError(f"mask shape {mask.shape} != logits shape {logits.shape}")
    if not mask.any():
        raise ValueError("masked softmax requires at least one valid entry")
    shifted = logits + np.where(mask, 0.0, _NEG_INF)
    shifted = shifted - shifted.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    return shifted - log_norm


def entropy_from_log_probs(log_probs: Tensor, mask=None) -> Tensor:
    """Entropy of a categorical distribution given its log-probabilities.

    Used as an exploration bonus during REINFORCE training.  ``mask`` (if
    given) limits the sum to valid entries so the -1e9 padding of masked
    softmaxes does not contribute.
    """
    log_probs = as_tensor(log_probs)
    probs = log_probs.exp()
    contrib = probs * log_probs
    if mask is not None:
        contrib = contrib * Tensor(np.asarray(mask, dtype=np.float64))
    return -contrib.sum()
