"""Structured JSON logging on stdlib ``logging`` — zero deps, zero config tax.

Library code logs through :func:`log_event` under the ``repro.*`` namespace
and never attaches handlers; until an application calls
:func:`configure_logging` (or wires its own handler), records propagate to
the root logger's default of nothing, so an unconfigured import costs one
``isEnabledFor`` check per event.  Once configured, every event is a single
JSON object per line — machine-parseable session opens, checkpoint installs,
probation verdicts, admission rejections.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Optional

__all__ = ["JsonLogFormatter", "get_logger", "log_event", "configure_logging"]

_ROOT_NAME = "repro"


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record; event fields from ``extra`` flatten in."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, "event", record.getMessage()),
        }
        fields = getattr(record, "fields", None)
        if fields:
            for key, value in fields.items():
                if key not in payload:
                    payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def get_logger(name: str) -> logging.Logger:
    """A logger under the shared ``repro`` namespace (``repro.<name>``)."""
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def log_event(
    logger: logging.Logger, event: str, level: int = logging.INFO, **fields
) -> None:
    """Emit one structured event if the logger is enabled.

    The ``isEnabledFor`` guard keeps unconfigured processes at a single
    cheap check — no record object, no field dict formatting.
    """
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"event": event, "fields": fields})


def configure_logging(
    level: int = logging.INFO, stream=None, logger_name: str = _ROOT_NAME
) -> logging.Logger:
    """Attach a JSON-lines handler to the ``repro`` namespace.

    Application entry points (examples, CI drivers) call this once;
    idempotent so repeated calls (tests, re-exec'd shards) don't stack
    duplicate handlers.
    """
    logger = logging.getLogger(logger_name)
    logger.setLevel(level)
    target = stream if stream is not None else sys.stderr
    for handler in logger.handlers:
        if getattr(handler, "_repro_json", False) and getattr(
            handler, "stream", None
        ) is target:
            return logger
    handler = logging.StreamHandler(target)
    handler.setFormatter(JsonLogFormatter())
    handler._repro_json = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def timestamp() -> float:
    return time.time()
