"""The metrics registry: one snapshot API over every operational counter.

Before this module, operational state lived in five bespoke ``stats()`` dict
schemas (session, broker, breaker, replay buffer, ``StageTimings``) that only
existed when polled and disagreed on key names and units.  The registry is
the single place those numbers now surface: components either own explicit
:class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments, or — for
hot-path counters that must stay plain Python ints — register a *collector*
callback that translates their internal state into samples at snapshot time.
Collectors are the reason telemetry stays off the decision path: the broker
keeps bumping the same bare attributes it always did, and the registry reads
them only when someone actually scrapes.

Snapshots are JSON-ready dicts (the control plane ships them in ``metrics``
replies) and render to the Prometheus text exposition format via
:func:`render_prometheus`, so the same endpoint feeds both the repo's own
ops tooling and a real scrape pipeline.

Lock discipline: instrument *creation* takes the registry lock; *updates* are
plain attribute writes.  Under CPython's GIL a bare ``+=`` on an int can lose
an increment only when two threads race the same instrument, which the
serving stack never does (each instrument has a single writer: the dispatch
thread, the event loop, or the manager loop).  That is the "lock-cheap"
contract: reads may be momentarily stale, updates never block the hot path.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "render_prometheus",
    "summarize_snapshot",
]

# Fixed decision-latency buckets (milliseconds).  Fixed — not adaptive — so
# bucket series from different shards, runs and versions are always mergeable.
DEFAULT_LATENCY_BUCKETS_MS = (
    0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
)


def _label_key(label_names: Sequence[str], labels: dict) -> tuple:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {tuple(label_names)}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in label_names)


class _Instrument:
    """Shared identity of one named metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)

    def _samples(self) -> list:
        raise NotImplementedError

    def describe(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "samples": self._samples(),
        }


class Counter(_Instrument):
    """A monotonically increasing count (events, decisions, errors)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()):
        super().__init__(name, help, label_names)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def _samples(self) -> list:
        return [
            {"labels": dict(zip(self.label_names, key)), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Gauge(_Instrument):
    """A value that can go both ways (live sessions, buffer occupancy)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()):
        super().__init__(name, help, label_names)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(self.label_names, labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def _samples(self) -> list:
        return [
            {"labels": dict(zip(self.label_names, key)), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Histogram(_Instrument):
    """Fixed-bucket distribution (decision latency, batch sizes).

    Buckets are cumulative upper bounds, Prometheus-style; an implicit
    ``+Inf`` bucket always exists.  ``observe`` is a linear scan over a
    handful of bounds — no allocation, no lock.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        label_names: Sequence[str] = (),
    ):
        super().__init__(name, help, label_names)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bounds = bounds
        # key -> (per-bucket counts incl. +Inf, sum, count)
        self._series: dict[tuple, list] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(self.label_names, labels)
        series = self._series.get(key)
        if series is None:
            series = [[0] * (len(self.bounds) + 1), 0.0, 0]
            self._series[key] = series
        counts, _, _ = series
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                counts[index] += 1
                break
        else:
            counts[len(self.bounds)] += 1
        series[1] += value
        series[2] += 1

    def _samples(self) -> list:
        samples = []
        for key, (counts, total, count) in sorted(self._series.items()):
            cumulative, buckets = 0, []
            for bound, bucket_count in zip(self.bounds, counts):
                cumulative += bucket_count
                buckets.append([bound, cumulative])
            buckets.append(["+Inf", count])
            samples.append(
                {
                    "labels": dict(zip(self.label_names, key)),
                    "buckets": buckets,
                    "sum": total,
                    "count": count,
                }
            )
        return samples


class MetricsRegistry:
    """Create instruments, run collectors, produce one merged snapshot."""

    def __init__(self, namespace: str = "decima"):
        self.namespace = namespace
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self._collectors: list[Callable[[], dict]] = []

    # ------------------------------------------------------------ instruments
    def _register(self, instrument: _Instrument) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(instrument.name)
            if existing is not None:
                if type(existing) is not type(instrument):
                    raise ValueError(
                        f"metric {instrument.name!r} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            self._instruments[instrument.name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help, labels))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help, labels))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        labels: Sequence[str] = (),
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets, labels))  # type: ignore[return-value]

    # ------------------------------------------------------------- collectors
    def register_collector(self, collector: Callable[[], dict]) -> None:
        """Register a callback run at snapshot time.

        The callback returns a snapshot *fragment*: ``{metric_name:
        {"type", "help", "samples": [...]}}`` — the shape
        :meth:`snapshot` itself produces.  This is the bridge for hot-path
        components whose counters must stay plain attributes: zero cost per
        decision, translated only when scraped.
        """
        with self._lock:
            self._collectors.append(collector)

    # --------------------------------------------------------------- snapshot
    def snapshot(self) -> dict:
        """Every instrument + collector output as one JSON-ready dict."""
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        merged: dict[str, dict] = {}
        for instrument in instruments:
            merged[instrument.name] = instrument.describe()
        for collector in collectors:
            for name, family in collector().items():
                existing = merged.get(name)
                if existing is None:
                    merged[name] = family
                else:
                    existing["samples"] = list(existing["samples"]) + list(
                        family["samples"]
                    )
        return merged

    def prometheus(self, extra_labels: Optional[dict] = None) -> str:
        """The snapshot in Prometheus text exposition format."""
        return render_prometheus(
            self.snapshot(), namespace=self.namespace, extra_labels=extra_labels
        )


# ------------------------------------------------------------------ rendering
def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '{}="{}"'.format(
            name,
            str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n"),
        )
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(
    snapshot: dict, namespace: str = "decima", extra_labels: Optional[dict] = None
) -> str:
    """Render a snapshot (or a merged set of them) as Prometheus text.

    ``extra_labels`` is attached to every sample — the router uses it to tag
    each shard's snapshot with ``shard="N"`` before concatenating, so one
    scrape of the control plane sees the whole fleet with standard labels.
    """
    extra = dict(extra_labels or {})
    lines: list[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        full_name = f"{namespace}_{name}" if namespace else name
        if family.get("help"):
            lines.append(f"# HELP {full_name} {family['help']}")
        lines.append(f"# TYPE {full_name} {family.get('type', 'untyped')}")
        for sample in family.get("samples", []):
            labels = {**sample.get("labels", {}), **extra}
            if family.get("type") == "histogram":
                for bound, count in sample["buckets"]:
                    bucket_labels = {**labels, "le": bound}
                    lines.append(
                        f"{full_name}_bucket{_format_labels(bucket_labels)} {count}"
                    )
                lines.append(f"{full_name}_sum{_format_labels(labels)} {sample['sum']}")
                lines.append(
                    f"{full_name}_count{_format_labels(labels)} {sample['count']}"
                )
            else:
                lines.append(f"{full_name}{_format_labels(labels)} {sample['value']}")
    return "\n".join(lines) + "\n" if lines else ""


def _sample_value(snapshot: dict, name: str, labels: Optional[dict] = None):
    family = snapshot.get(name)
    if not family:
        return None
    for sample in family.get("samples", []):
        if labels is None or all(
            sample.get("labels", {}).get(k) == v for k, v in labels.items()
        ):
            return sample.get("value", sample.get("count"))
    return None


def summarize_snapshot(snapshot: dict) -> str:
    """One human-readable ops line from a registry snapshot.

    The shared live-surface formatter: ``run_policy_server.py
    --stats-interval`` and the loadgen's ``--watch`` mode both print this
    instead of hand-rolled dicts.  Missing series degrade to ``-`` so the
    line works against any subset of the serving stack.
    """

    def fmt(value, spec="{:.0f}"):
        return "-" if value is None else spec.format(value)

    version = _sample_value(snapshot, "policy_version")
    decisions = _sample_value(snapshot, "decisions_total")
    fallbacks = _sample_value(snapshot, "fallback_decisions_total")
    sessions = _sample_value(snapshot, "sessions_open")
    delta = _sample_value(snapshot, "graph_delta_refreshes_total")
    full = _sample_value(snapshot, "graph_full_refreshes_total")
    rebuilds = _sample_value(snapshot, "graph_rebuilds_total")
    parts = [
        f"v{fmt(version)}",
        f"sessions={fmt(sessions)}",
        f"decisions={fmt(decisions)} (fallback {fmt(fallbacks)})",
        f"features: {fmt(delta)} delta / {fmt(full)} full / {fmt(rebuilds)} rebuilds",
    ]
    stage_family = snapshot.get("stage_mean_ms")
    if stage_family and stage_family.get("samples"):
        stages = " ".join(
            f"{sample['labels'].get('stage', '?')} {sample['value']:.2f}"
            for sample in stage_family["samples"]
        )
        parts.append(f"stage ms/step: {stages}")
    latency = snapshot.get("decision_latency_ms")
    if latency and latency.get("samples"):
        sample = latency["samples"][0]
        if sample["count"]:
            parts.append(
                f"latency mean {sample['sum'] / sample['count']:.2f} ms "
                f"(n={sample['count']})"
            )
    return " | ".join(parts)


def histogram_family_from_stats(stats: dict, help: str = "") -> dict:
    """Adapt a :func:`repro.simulator.metrics.latency_histogram` dict into a
    snapshot family (gauge samples per quantile) — the deprecation bridge for
    code still holding the old five-schema stat dicts."""
    samples = []
    for key in ("p50", "p95", "p99", "mean", "max"):
        value = stats.get(key)
        if value is not None:
            samples.append({"labels": {"quantile": key}, "value": float(value)})
    return {"type": "gauge", "help": help, "samples": samples}
