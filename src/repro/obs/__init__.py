"""Fleet-wide telemetry: metrics registry, tracing, flight recorder, logging.

Zero-dependency observability for the serving + learning stack.  Four parts:

- :mod:`~repro.obs.registry` — a lock-cheap metrics registry (counters,
  gauges, fixed-bucket histograms) with collector callbacks that absorb the
  legacy per-component ``stats()`` schemas at snapshot time, rendered as
  JSON or Prometheus text.
- :mod:`~repro.obs.tracing` — per-decision trace/span IDs minted at the
  client and carried through router → shard → broker → model stages, stored
  in bounded per-process :class:`SpanStore` rings.
- :mod:`~repro.obs.flight` — a per-shard :class:`FlightRecorder` ring of
  recent operational events, auto-dumped on SLO trips, rollbacks and shard
  death.
- :mod:`~repro.obs.logging` — structured JSON logging on stdlib
  ``logging``; dark until :func:`configure_logging`.

Everything here is off the decision path by construction: untraced requests
never allocate a span, collectors read existing counters only when scraped,
and loggers guard on ``isEnabledFor``.  See ``docs/OBSERVABILITY.md``.
"""

from .flight import FLIGHT_DIR_ENV, FlightRecorder
from .logging import JsonLogFormatter, configure_logging, get_logger, log_event
from .registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
    summarize_snapshot,
)
from .tracing import Span, SpanStore, new_span_id, new_trace_id

__all__ = [
    "FLIGHT_DIR_ENV",
    "FlightRecorder",
    "JsonLogFormatter",
    "configure_logging",
    "get_logger",
    "log_event",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "summarize_snapshot",
    "Span",
    "SpanStore",
    "new_span_id",
    "new_trace_id",
]
