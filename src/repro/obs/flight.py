"""Per-shard flight recorder: the last N operational events, dumped on crash.

A bounded ring of decision/swap/breaker/session events that costs one deque
append per event while everything is healthy, and turns into a post-mortem
artifact the moment something isn't: an SLO breaker trip, a rollout-guard
rollback, or a shard death auto-dumps the ring (to ``dump_dir`` as JSON if
configured, always to the structured log), and the control plane's ``flight``
command dumps it on demand.

The point is debuggability without reproduction: "what was the shard doing in
the 500 events before it died" is answerable from the artifact alone.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Optional

from .logging import get_logger, log_event

__all__ = ["FlightRecorder", "FLIGHT_DIR_ENV"]

# Processes that can't be handed a dump_dir argument (forked shard workers)
# pick one up from the environment instead.
FLIGHT_DIR_ENV = "DECIMA_FLIGHT_DIR"

_logger = get_logger("obs.flight")


class FlightRecorder:
    """Bounded ring buffer of recent events with dump-on-demand."""

    def __init__(
        self,
        capacity: int = 512,
        service: str = "",
        dump_dir: Optional[str] = None,
    ):
        self.capacity = capacity
        self.service = service
        self.dump_dir = dump_dir if dump_dir is not None else os.environ.get(
            FLIGHT_DIR_ENV
        )
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.num_events = 0
        self.num_dumps = 0
        self.last_dump_reason: Optional[str] = None
        self.last_dump_path: Optional[str] = None

    def record(self, kind: str, **fields) -> None:
        """Append one event. Cheap enough for per-decision use."""
        event = {"ts": time.time(), "kind": kind}
        event.update(fields)
        self._events.append(event)
        self.num_events += 1

    def events(self) -> list:
        return [dict(event) for event in list(self._events)]

    def dump(self, reason: str) -> dict:
        """Snapshot the ring into a JSON-ready payload; persist if configured.

        Returns the payload either way so callers (control plane, tests) get
        the events even with no dump_dir.  Never raises: a dump triggered by
        a dying shard must not mask the original failure.
        """
        with self._lock:
            payload = {
                "service": self.service,
                "reason": reason,
                "dumped_at": time.time(),
                "num_events_total": self.num_events,
                "events": self.events(),
            }
            self.num_dumps += 1
            self.last_dump_reason = reason
            sequence = self.num_dumps
        path = None
        if self.dump_dir:
            try:
                os.makedirs(self.dump_dir, exist_ok=True)
                name = "flight-{}-{}.json".format(
                    self.service.replace("/", "_") or "recorder", sequence
                )
                path = os.path.join(self.dump_dir, name)
                with open(path, "w") as handle:
                    json.dump(payload, handle, indent=2, sort_keys=True)
                    handle.write("\n")
                self.last_dump_path = path
            except OSError:
                path = None
        log_event(
            _logger,
            "flight_dump",
            service=self.service,
            reason=reason,
            num_events=len(payload["events"]),
            path=path,
        )
        if path is not None:
            payload["path"] = path
        return payload

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "num_events": self.num_events,
            "buffered": len(self._events),
            "num_dumps": self.num_dumps,
            "last_dump_reason": self.last_dump_reason,
        }
