"""Per-decision distributed tracing: spans minted at the client, finished in
every hop that touches the request.

The model is deliberately tiny — a trace is a flat list of spans sharing one
``trace_id``; each span carries its parent's ``span_id`` so the chain
``client.decide → router.forward → server.decide → broker.decide →
stage.{features,propagation,policy,sampling}`` reconstructs as a tree.  IDs
are random hex (no coordination needed across processes), timestamps are
wall-clock for cross-process alignment and ``perf_counter`` for durations.

Tracing is opt-in per request: an untraced decide frame carries no ``trace``
ctx and the whole subsystem stays dormant, which is what keeps golden traces
byte-identical and the overhead benchmark flat.

Spans land in a :class:`SpanStore` — a bounded per-process map of
``trace_id -> [span dicts]`` with LRU eviction — served over the control
plane's ``trace`` command so one trace ID queried at the router yields the
merged cross-process view.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from typing import Optional

__all__ = ["new_trace_id", "new_span_id", "Span", "SpanStore"]


def new_trace_id() -> str:
    return os.urandom(8).hex()


def new_span_id() -> str:
    return os.urandom(4).hex()


class Span:
    """One timed operation within a trace.

    Create it where the operation starts, :meth:`finish` it where it ends;
    if the span was given a ``store`` it files itself on finish so call
    sites never touch the store directly.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "service",
        "start_time",
        "_start_perf",
        "duration_ms",
        "tags",
        "_store",
    )

    def __init__(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        service: str = "",
        store: Optional["SpanStore"] = None,
        tags: Optional[dict] = None,
    ):
        self.trace_id = trace_id or new_trace_id()
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.name = name
        self.service = service
        self.start_time = time.time()
        self._start_perf = time.perf_counter()
        self.duration_ms: Optional[float] = None
        self.tags = dict(tags) if tags else {}
        self._store = store

    def child(self, name: str, tags: Optional[dict] = None) -> "Span":
        return Span(
            name,
            trace_id=self.trace_id,
            parent_id=self.span_id,
            service=self.service,
            store=self._store,
            tags=tags,
        )

    def set_tag(self, key: str, value) -> None:
        self.tags[key] = value

    def finish(self, duration_ms: Optional[float] = None) -> "Span":
        if self.duration_ms is None:
            if duration_ms is not None:
                self.duration_ms = float(duration_ms)
            else:
                self.duration_ms = (time.perf_counter() - self._start_perf) * 1000.0
            if self._store is not None:
                self._store.add(self.to_dict())
        return self

    def context(self) -> dict:
        """The wire form carried inside a decide frame's ``trace`` field."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def to_dict(self) -> dict:
        record = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "service": self.service,
            "start_time": self.start_time,
            "duration_ms": self.duration_ms,
        }
        if self.tags:
            record["tags"] = dict(self.tags)
        return record


class SpanStore:
    """Bounded per-process span storage keyed by trace ID, LRU-evicted.

    Thread-safe: the threaded server's dispatch thread, connection handler
    threads and the asyncio loop can all file spans concurrently.
    """

    def __init__(self, max_traces: int = 256, max_spans_per_trace: int = 64):
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self._traces: "OrderedDict[str, list]" = OrderedDict()
        self._lock = threading.Lock()
        self.num_spans = 0
        self.num_evicted_traces = 0

    def add(self, span_dict: dict) -> None:
        trace_id = span_dict.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                spans = []
                self._traces[trace_id] = spans
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
                    self.num_evicted_traces += 1
            else:
                self._traces.move_to_end(trace_id)
            if len(spans) < self.max_spans_per_trace:
                spans.append(dict(span_dict))
                self.num_spans += 1

    def extend(self, span_dicts) -> None:
        for span_dict in span_dicts:
            self.add(span_dict)

    def get(self, trace_id: str) -> list:
        with self._lock:
            return [dict(span) for span in self._traces.get(trace_id, ())]

    def trace_ids(self) -> list:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def span(
        self,
        name: str,
        context: Optional[dict] = None,
        service: str = "",
        tags: Optional[dict] = None,
    ) -> Optional[Span]:
        """Open a span continuing the wire ``context``, or None if untraced.

        The universal server-side entry point: handlers call this with
        whatever the frame carried; a missing/malformed context costs one
        dict lookup and keeps the hot path dark.
        """
        if not context or "trace_id" not in context:
            return None
        return Span(
            name,
            trace_id=context["trace_id"],
            parent_id=context.get("span_id"),
            service=service,
            store=self,
            tags=tags,
        )
