"""Event-driven Spark-like cluster simulator (the paper's training substrate, §6.2)."""

from .duration import DurationModelConfig, TaskDurationModel
from .environment import (
    Action,
    ExecutorChurnEvent,
    Observation,
    SchedulingEnvironment,
    SimulatorConfig,
)
from .executor import Executor, ExecutorClass, default_executor_class, multi_resource_classes
from .jobdag import JobDAG, Node, Task, critical_path_value, topological_order
from .metrics import (
    SimulationResult,
    TaskRecord,
    average_jct,
    executor_utilization,
    latency_histogram,
    makespan,
)
from .multi_resource import assign_memory_requests, memory_fragmentation, multi_resource_config

__all__ = [
    "Action",
    "ExecutorChurnEvent",
    "Observation",
    "SchedulingEnvironment",
    "SimulatorConfig",
    "DurationModelConfig",
    "TaskDurationModel",
    "Executor",
    "ExecutorClass",
    "default_executor_class",
    "multi_resource_classes",
    "JobDAG",
    "Node",
    "Task",
    "critical_path_value",
    "topological_order",
    "SimulationResult",
    "TaskRecord",
    "average_jct",
    "makespan",
    "executor_utilization",
    "latency_histogram",
    "assign_memory_requests",
    "memory_fragmentation",
    "multi_resource_config",
]
