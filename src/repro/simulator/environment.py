"""Event-driven cluster scheduling environment.

This is the simulator the paper trains and evaluates Decima in (§6.2).  It
exposes a reinforcement-learning style interface:

* :meth:`SchedulingEnvironment.reset` loads a set of jobs (with arrival times)
  and advances to the first scheduling event;
* :meth:`SchedulingEnvironment.observe` returns an :class:`Observation` with
  the unfinished job DAGs, the schedulable stages and executor status;
* :meth:`SchedulingEnvironment.step` applies a scheduling :class:`Action`
  (stage, parallelism limit, and — in the multi-resource setting — executor
  class), advances simulated time when no further assignment is possible, and
  returns the reward of Eq. (§5.3): ``-(t_k - t_{k-1}) * J`` for the average
  JCT objective.

Both the learned Decima agent and every baseline heuristic run against this
same environment, so comparisons are apples-to-apples.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .duration import DurationModelConfig, TaskDurationModel
from .executor import Executor, ExecutorClass, default_executor_class
from .jobdag import JobDAG, Node
from .metrics import SimulationResult, TaskRecord

__all__ = [
    "ExecutorChurnEvent",
    "SimulatorConfig",
    "Observation",
    "Action",
    "SchedulingEnvironment",
]


@dataclass(frozen=True)
class ExecutorChurnEvent:
    """A timed change to the executor fleet (cluster churn).

    ``executor_removed`` decommissions ``count`` executors at ``time``: idle
    executors leave immediately, busy ones finish their current task first
    (graceful drain).  At least one executor always stays in the cluster.
    ``executor_added`` brings ``count`` new executors online; their class
    defaults to the standalone class (homogeneous clusters) or the last
    configured class otherwise.
    """

    time: float
    kind: str  # "executor_added" | "executor_removed"
    count: int = 1
    executor_class: Optional[ExecutorClass] = None

    def __post_init__(self) -> None:
        if self.kind not in ("executor_added", "executor_removed"):
            raise ValueError(
                f"churn event kind must be 'executor_added' or 'executor_removed', got {self.kind!r}"
            )
        if self.time < 0:
            raise ValueError("churn event time must be non-negative")
        if self.count < 1:
            raise ValueError("churn event count must be at least 1")


@dataclass
class SimulatorConfig:
    """Configuration of the simulated cluster.

    ``executor_classes`` is a list of ``(ExecutorClass, count)`` pairs; when it
    is ``None`` the cluster has ``num_executors`` identical executors (the
    standalone-Spark setting of §7.2: 25 workers x 2 executors = 50 slots).
    ``churn_events`` is a sequence of timed :class:`ExecutorChurnEvent`
    changes to the fleet, replayed identically in every episode through the
    same event heap every scheduler observes.
    """

    num_executors: int = 50
    executor_classes: Optional[list[tuple[ExecutorClass, int]]] = None
    duration: DurationModelConfig = field(default_factory=DurationModelConfig)
    reward_mode: str = "avg_jct"  # "avg_jct" | "makespan"
    reward_scale: float = 1e-3
    max_time: float = math.inf
    seed: int = 0
    churn_events: tuple[ExecutorChurnEvent, ...] = ()

    def build_executors(self) -> list[Executor]:
        executors: list[Executor] = []
        if self.executor_classes is None:
            cls = default_executor_class()
            for i in range(self.num_executors):
                executors.append(Executor(i, cls))
            return executors
        next_id = 0
        for cls, count in self.executor_classes:
            for _ in range(count):
                executors.append(Executor(next_id, cls))
                next_id += 1
        return executors


@dataclass
class Observation:
    """Snapshot of the cluster handed to the scheduling policy."""

    wall_time: float
    job_dags: list[JobDAG]
    schedulable_nodes: list[Node]
    num_free_executors: int
    free_executors_by_class: Counter
    source_job: Optional[JobDAG]
    total_executors: int
    executor_classes: list[ExecutorClass]
    num_jobs_in_system: int

    def executors_of_job(self, job: JobDAG) -> int:
        return job.num_executors

    def free_executors_for(self, node: Node) -> int:
        """Number of free executors whose class can run tasks of ``node``."""
        return sum(
            count
            for cls, count in self.free_executors_by_class.items()
            if cls.fits(node)
        )


@dataclass
class Action:
    """A scheduling decision: stage, parallelism limit, optional executor class."""

    node: Optional[Node]
    parallelism_limit: int = 1
    executor_class: Optional[ExecutorClass] = None


class SchedulingEnvironment:
    """Event-driven simulator of a Spark-like cluster."""

    def __init__(self, config: Optional[SimulatorConfig] = None):
        self.config = config or SimulatorConfig()
        if self.config.reward_mode not in ("avg_jct", "makespan"):
            raise ValueError(f"unknown reward mode {self.config.reward_mode!r}")
        # Observers of the event stream (trace recording, debugging).  Each is
        # called as ``listener(kind, time, detail_dict)`` for every event the
        # engine processes, in processing order, *before* the event mutates
        # state.  Listeners survive reset() so a recorder attached once sees
        # every episode; the empty default costs one truthiness check per event.
        self.event_listeners: list = []
        self.duration_model = TaskDurationModel(self.config.duration, seed=self.config.seed)
        self.executors: list[Executor] = self.config.build_executors()
        self.executor_classes = sorted(
            {e.executor_class for e in self.executors}
            | {
                event.executor_class
                for event in self.config.churn_events
                if event.executor_class is not None
            },
            key=lambda c: (c.memory, c.cpu),
        )
        self._event_counter = itertools.count()
        self._reset_state()

    # ------------------------------------------------------------ life cycle
    def _reset_state(self) -> None:
        self.wall_time = 0.0
        self.events: list[tuple[float, int, str, object]] = []
        self.active_jobs: list[JobDAG] = []
        self.finished_jobs: list[JobDAG] = []
        self.pending_arrivals = 0
        self.free_executor_ids: set[int] = set()
        self.timeline: list[TaskRecord] = []
        self.total_reward = 0.0
        self.num_actions = 0
        self.forced_assignments = 0
        self.source_job: Optional[JobDAG] = None
        self.done = False

    def reset(self, jobs: Iterable[JobDAG], seed: Optional[int] = None) -> Observation:
        """Load ``jobs`` (their ``arrival_time`` schedules them) and start the episode."""
        self._reset_state()
        if seed is not None:
            self.duration_model.reseed(seed)
        # Rebuild the fleet from the config so churn from a previous episode
        # (removed or added executors) never leaks into this one; the fresh
        # Executor objects start unbound and idle.
        self.executors = self.config.build_executors()
        self.free_executor_ids = {e.executor_id for e in self.executors}
        jobs = list(jobs)
        if not jobs:
            raise ValueError("reset requires at least one job")
        for job in jobs:
            job.reset()
            self._push_event(job.arrival_time, "job_arrival", job)
            self.pending_arrivals += 1
        for event in self.config.churn_events:
            self._push_event(event.time, event.kind, event)
        # Advance to the first scheduling point.
        self._advance()
        return self.observe()

    # --------------------------------------------------------------- events
    def _push_event(self, time: float, kind: str, payload: object) -> None:
        heapq.heappush(self.events, (time, next(self._event_counter), kind, payload))

    def _num_jobs_in_system(self) -> int:
        return len(self.active_jobs)

    @property
    def num_active_executors(self) -> int:
        """Executors currently part of the cluster (churn-removed ones excluded)."""
        return sum(1 for executor in self.executors if executor.active)

    # ----------------------------------------------------------- observation
    def observe(self) -> Observation:
        free_by_class: Counter = Counter()
        for executor_id in self.free_executor_ids:
            free_by_class[self.executors[executor_id].executor_class] += 1
        schedulable = self._schedulable_nodes()
        return Observation(
            wall_time=self.wall_time,
            job_dags=list(self.active_jobs),
            schedulable_nodes=schedulable,
            num_free_executors=len(self.free_executor_ids),
            free_executors_by_class=free_by_class,
            source_job=self.source_job,
            total_executors=self.num_active_executors,
            executor_classes=list(self.executor_classes),
            num_jobs_in_system=self._num_jobs_in_system(),
        )

    def _schedulable_nodes(self) -> list[Node]:
        """Runnable stages for which at least one free executor class fits."""
        free_classes = {self.executors[i].executor_class for i in self.free_executor_ids}
        nodes = []
        for job in self.active_jobs:
            for node in job.runnable_nodes:
                if any(cls.fits(node) for cls in free_classes):
                    nodes.append(node)
        return nodes

    def _scheduling_point(self) -> bool:
        return bool(self.free_executor_ids) and bool(self._schedulable_nodes())

    # ------------------------------------------------------------------ step
    def step(self, action: Optional[Action]) -> tuple[Optional[Observation], float, bool]:
        """Apply ``action`` and return ``(observation, reward, done)``.

        If executors remain free and stages remain schedulable after the
        action, time does not advance and the reward is zero — the policy is
        invoked again, exactly as in §5.2.  Otherwise the simulation advances
        to the next scheduling event and the accumulated JCT penalty is
        returned as the (negative) reward.
        """
        if self.done:
            raise RuntimeError("step() called on a finished episode")
        self.num_actions += 1
        num_assigned = 0
        if action is not None and action.node is not None:
            num_assigned = self._commit(action)

        reward = 0.0
        if num_assigned == 0 or not self._scheduling_point():
            # The action could not make progress (or exhausted the free
            # executors): advance simulated time.
            if num_assigned == 0 and not self.events and self._scheduling_point():
                # The scheduler declined while the cluster is otherwise idle;
                # force a minimal assignment to guarantee liveness.
                self._force_assign()
                self.forced_assignments += 1
            # A zero-assignment action must not return the identical
            # observation (the policy would loop forever); process at least
            # one event so the cluster state changes.
            reward = self._advance(force_process_event=(num_assigned == 0))
        self.total_reward += reward
        observation = None if self.done else self.observe()
        return observation, reward, self.done

    # ------------------------------------------------------------ scheduling
    def _commit(self, action: Action) -> int:
        """Assign free executors to ``action.node`` up to the parallelism limit."""
        node = action.node
        assert node is not None
        job = node.job
        if job is None or job not in self.active_jobs or not node.runnable:
            return 0
        limit = int(action.parallelism_limit)
        want = limit - job.num_active_executors
        want = min(want, node.remaining_tasks)
        if want <= 0:
            return 0
        candidates = self._candidate_executors(node, action.executor_class)
        assigned = 0
        for executor in candidates:
            if assigned >= want or node.saturated:
                break
            self._dispatch(executor, node)
            assigned += 1
        return assigned

    def _candidate_executors(
        self, node: Node, executor_class: Optional[ExecutorClass]
    ) -> list[Executor]:
        """Free executors able to run ``node``, best candidates first.

        Preference order: executors already bound to the node's job (no JVM
        restart), then the smallest-memory class that fits (reduces
        fragmentation) — unless the action pinned a specific class.
        """
        free = [self.executors[i] for i in sorted(self.free_executor_ids)]
        if executor_class is not None:
            free = [e for e in free if e.executor_class == executor_class]
        free = [e for e in free if e.executor_class.fits(node)]
        free.sort(key=lambda e: (e.job is not node.job, e.executor_class.memory, e.executor_id))
        return free

    def _force_assign(self) -> None:
        """Liveness fallback: put one free executor on some schedulable stage."""
        for node in self._schedulable_nodes():
            candidates = self._candidate_executors(node, None)
            if candidates:
                self._dispatch(candidates[0], node)
                return

    def _dispatch(self, executor: Executor, node: Node) -> None:
        """Start the next task of ``node`` on ``executor``."""
        job = node.job
        assert job is not None
        same_job = executor.job is job
        delay = self.duration_model.moving_delay(same_job)
        executor.bind_job(job)
        first_wave = node.num_finished_tasks == 0 and node.first_wave_dispatched < max(
            1, len(job.executor_ids)
        )
        if first_wave:
            node.first_wave_dispatched += 1
        task = node.dispatch_task()
        duration = self.duration_model.sample_duration(node, first_wave, job.num_executors)
        task.executor_id = executor.executor_id
        task.start_time = self.wall_time + delay
        task.finish_time = task.start_time + duration
        executor.start_task(node, task)
        self.free_executor_ids.discard(executor.executor_id)
        self._push_event(task.finish_time, "task_finish", executor)

    # --------------------------------------------------------------- advance
    def _advance(self, force_process_event: bool = False) -> float:
        """Process events until the next scheduling point (or episode end).

        When ``force_process_event`` is set, at least one event is processed
        before a scheduling point may end the loop (liveness guarantee for
        actions that assigned nothing).
        """
        penalty = 0.0
        processed_events = 0
        while not self.done:
            # All events at the current instant must be applied before the
            # policy observes the state (e.g. two jobs arriving at time zero
            # are both visible at the first scheduling event).
            same_instant_pending = bool(self.events) and self.events[0][0] <= self.wall_time
            if (
                self._scheduling_point()
                and not same_instant_pending
                and not (force_process_event and processed_events == 0)
            ):
                break
            if self._all_work_done():
                # Only churn events can remain once every job finished (no
                # arrivals are pending and completed jobs have no in-flight
                # tasks); dropping them keeps the final wall time at the last
                # completion instead of the last fleet change.
                self.done = True
                break
            if not self.events:
                if self._all_work_done():
                    self.done = True
                elif not self._any_running_task():
                    raise RuntimeError(
                        "simulation deadlock: unfinished stages but no running tasks "
                        "and no free executor can serve them"
                    )
                break
            event_time = self.events[0][0]
            if event_time >= self.config.max_time:
                penalty += self._interval_penalty(self.config.max_time - self.wall_time)
                self.wall_time = self.config.max_time
                self.done = True
                break
            event_time, _, kind, payload = heapq.heappop(self.events)
            penalty += self._interval_penalty(event_time - self.wall_time)
            self.wall_time = event_time
            processed_events += 1
            if self.event_listeners:
                self._notify_listeners(kind, event_time, payload)
            if kind == "task_finish":
                self._on_task_finish(payload)  # type: ignore[arg-type]
            elif kind == "job_arrival":
                self._on_job_arrival(payload)  # type: ignore[arg-type]
            elif kind == "executor_added":
                self._on_executor_added(payload)  # type: ignore[arg-type]
            elif kind == "executor_removed":
                self._on_executor_removed(payload)  # type: ignore[arg-type]
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind!r}")
            if self._all_work_done() and not self.events:
                self.done = True
        return -penalty * self.config.reward_scale

    def _notify_listeners(self, kind: str, time: float, payload: object) -> None:
        """Describe the event to every listener before its handler runs.

        Details use seed-deterministic identifiers (job *names*, node and
        executor ids) so recorded event streams are comparable across
        processes regardless of the global ``JobDAG`` id counter.
        """
        detail: dict = {}
        if kind == "job_arrival":
            job: JobDAG = payload  # type: ignore[assignment]
            detail = {"job": job.name}
        elif kind == "task_finish":
            executor: Executor = payload  # type: ignore[assignment]
            task = executor.task
            if task is not None:
                job = task.node.job
                detail = {
                    "job": job.name if job is not None else None,
                    "node": task.node.node_id,
                    "executor": executor.executor_id,
                }
        elif kind in ("executor_added", "executor_removed"):
            event: ExecutorChurnEvent = payload  # type: ignore[assignment]
            detail = {"count": event.count}
        for listener in self.event_listeners:
            listener(kind, time, detail)

    def _interval_penalty(self, dt: float) -> float:
        if dt <= 0:
            return 0.0
        if self.config.reward_mode == "makespan":
            return dt if self.active_jobs or self.pending_arrivals else 0.0
        return dt * self._num_jobs_in_system()

    def _all_work_done(self) -> bool:
        return not self.active_jobs and self.pending_arrivals == 0

    def _any_running_task(self) -> bool:
        return any(not executor.idle for executor in self.executors)

    # ---------------------------------------------------------- event logic
    def _on_job_arrival(self, job: JobDAG) -> None:
        self.pending_arrivals -= 1
        self.active_jobs.append(job)

    def _on_executor_added(self, event: ExecutorChurnEvent) -> None:
        cls = event.executor_class
        if cls is None:
            if self.config.executor_classes is None:
                cls = default_executor_class()
            else:
                cls = self.config.executor_classes[-1][0]
        for _ in range(event.count):
            executor = Executor(len(self.executors), cls)
            self.executors.append(executor)
            self.free_executor_ids.add(executor.executor_id)

    def _on_executor_removed(self, event: ExecutorChurnEvent) -> None:
        removable = max(0, self.num_active_executors - 1)
        budget = min(event.count, removable)
        if budget <= 0:
            return
        # Deterministic victim order: idle executors first (they leave at
        # once), newest slots first within each group; busy executors drain
        # their current task before leaving (see _on_task_finish).
        active = [e for e in self.executors if e.active]
        active.sort(key=lambda e: (not e.idle, -e.executor_id))
        for executor in active[:budget]:
            executor.removed = True
            if executor.idle:
                self.free_executor_ids.discard(executor.executor_id)
                executor.bind_job(None)

    def _on_task_finish(self, executor: Executor) -> None:
        task = executor.finish_task()
        node = task.node
        job = node.job
        assert job is not None
        node.finish_task(task, self.wall_time)
        self.timeline.append(
            TaskRecord(
                executor_id=executor.executor_id,
                job_id=job.job_id,
                job_name=job.name,
                node_id=node.node_id,
                start_time=task.start_time,
                finish_time=task.finish_time,
            )
        )
        if job.completed and job.completion_time < 0:
            job.completion_time = self.wall_time
            self.active_jobs.remove(job)
            self.finished_jobs.append(job)
            for other in self.executors:
                if other.job is job and other.idle:
                    other.bind_job(None)
            executor.bind_job(None)
            self.source_job = None
            if executor.active:
                self.free_executor_ids.add(executor.executor_id)
            return
        # A churn-removed executor drains: it finishes its in-flight task but
        # never takes another one and never rejoins the free pool.
        if executor.removed:
            executor.bind_job(None)
            return
        # Keep the executor on the same stage while it has undispatched tasks
        # (this is Spark's task-level scheduling, not an agent decision).
        if not node.saturated:
            self._dispatch(executor, node)
            return
        # The stage ran out of tasks: the executor is freed and the next
        # observation reports its job as the locality "source".
        self.source_job = job
        self.free_executor_ids.add(executor.executor_id)

    # ----------------------------------------------------------------- result
    def result(self) -> SimulationResult:
        return SimulationResult(
            finished_jobs=list(self.finished_jobs),
            unfinished_jobs=list(self.active_jobs),
            timeline=list(self.timeline),
            wall_time=self.wall_time,
            total_reward=self.total_reward,
            num_actions=self.num_actions,
        )
