"""Helpers for the multi-dimensional resource-packing environment (§7.3).

The extension over the standalone setting is small by design: the cluster has
several discrete executor classes (1 CPU core each, memory of 0.25/0.5/0.75/1.0
normalised units, 25% of executors per class), tasks carry a memory request,
and the scheduling action additionally picks the executor class to use.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from .duration import DurationModelConfig
from .environment import SimulatorConfig
from .executor import ExecutorClass, multi_resource_classes
from .jobdag import JobDAG

__all__ = [
    "multi_resource_config",
    "assign_memory_requests",
    "memory_fragmentation",
]


def multi_resource_config(
    total_executors: int = 200,
    duration: Optional[DurationModelConfig] = None,
    reward_scale: float = 1e-3,
    max_time: float = float("inf"),
    seed: int = 0,
) -> SimulatorConfig:
    """Build a :class:`SimulatorConfig` with the paper's four executor classes.

    Each class makes up 25% of the cluster (the paper's setting); any remainder
    goes to the largest class so every executor is accounted for.
    """
    classes = multi_resource_classes()
    per_class = total_executors // len(classes)
    counts = [per_class] * len(classes)
    counts[-1] += total_executors - per_class * len(classes)
    return SimulatorConfig(
        num_executors=total_executors,
        executor_classes=list(zip(classes, counts)),
        duration=duration or DurationModelConfig(),
        reward_scale=reward_scale,
        max_time=max_time,
        seed=seed,
    )


def assign_memory_requests(
    jobs: Iterable[JobDAG], seed: int = 0, low: float = 0.05, high: float = 1.0
) -> list[JobDAG]:
    """Sample each stage's memory request uniformly from ``(low, high]``.

    The TPC-H multi-resource experiment samples each DAG node's memory request
    from ``(0, 1]``; the Alibaba-style generator produces its own requests.
    """
    rng = np.random.default_rng(seed)
    jobs = list(jobs)
    for job in jobs:
        for node in job.nodes:
            node.mem_request = float(rng.uniform(low, high))
    return jobs


def memory_fragmentation(timeline, executors) -> float:
    """Average unused memory fraction on busy executors (Tetris vs Decima trade-off).

    For every completed task, the wasted memory is the executor memory minus
    the task's request; the metric is the work-weighted average waste divided
    by the executor memory.
    """
    executor_memory = {e.executor_id: e.executor_class.memory for e in executors}
    node_request: dict[tuple[int, int], float] = {}
    total_weighted_waste = 0.0
    total_work = 0.0
    for record in timeline:
        memory = executor_memory.get(record.executor_id)
        if memory is None:
            continue
        request = node_request.get((record.job_id, record.node_id), None)
        # Task records do not carry the request; callers populate ``node_request``
        # implicitly via job objects when needed.  Without it, assume zero request.
        waste = memory - (request or 0.0)
        total_weighted_waste += max(waste, 0.0) / memory * record.duration
        total_work += record.duration
    if total_work == 0:
        return 0.0
    return total_weighted_waste / total_work
