"""Job, stage (DAG node) and task model for the cluster simulator.

A Spark job is a DAG whose nodes are *stages*; each stage consists of many
parallel *tasks* over shards of its input.  A stage becomes runnable once all
its parent stages have completed (§3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

import numpy as np

__all__ = ["Task", "Node", "JobDAG", "topological_order", "critical_path_value"]


@dataclass
class Task:
    """A single task (one shard of a stage's input)."""

    node: "Node"
    index: int
    start_time: float = -1.0
    finish_time: float = -1.0
    executor_id: int = -1

    @property
    def scheduled(self) -> bool:
        return self.start_time >= 0.0

    @property
    def finished(self) -> bool:
        return self.finish_time >= 0.0

    def reset(self) -> None:
        self.start_time = -1.0
        self.finish_time = -1.0
        self.executor_id = -1


class Node:
    """A stage of a job DAG.

    Parameters
    ----------
    node_id:
        Index of the stage within its job.
    num_tasks:
        Number of parallel tasks in the stage.
    task_duration:
        Mean duration of one task in seconds (later waves; the duration model
        applies first-wave slowdown and parallelism inflation on top).
    mem_request / cpu_request:
        Per-task resource requirements, in normalised units, used by the
        multi-resource environment (§7.3).  A task can only run on an executor
        whose capacity is at least the request.
    """

    def __init__(
        self,
        node_id: int,
        num_tasks: int,
        task_duration: float,
        mem_request: float = 0.0,
        cpu_request: float = 0.0,
        name: str = "",
    ):
        if num_tasks <= 0:
            raise ValueError("a stage must have at least one task")
        if task_duration <= 0:
            raise ValueError("task duration must be positive")
        self.node_id = node_id
        self.num_tasks = int(num_tasks)
        self.task_duration = float(task_duration)
        self.mem_request = float(mem_request)
        self.cpu_request = float(cpu_request)
        self.name = name or f"stage-{node_id}"
        self.job: Optional["JobDAG"] = None
        self.parents: list["Node"] = []
        self.children: list["Node"] = []
        # Runtime state.
        self.tasks: list[Task] = [Task(self, i) for i in range(self.num_tasks)]
        self.next_task_index = 0
        self.num_finished_tasks = 0
        self.num_running_tasks = 0
        self.completion_time = -1.0
        self.first_wave_dispatched = 0

    # ------------------------------------------------------------ properties
    @property
    def total_work(self) -> float:
        """Total work of the stage in task-seconds."""
        return self.num_tasks * self.task_duration

    @property
    def remaining_tasks(self) -> int:
        """Tasks not yet dispatched to an executor."""
        return self.num_tasks - self.next_task_index

    @property
    def remaining_work(self) -> float:
        """Work of the tasks not yet *finished*, in task-seconds."""
        return (self.num_tasks - self.num_finished_tasks) * self.task_duration

    @property
    def saturated(self) -> bool:
        """True once every task has been dispatched (the stage needs no more executors)."""
        return self.next_task_index >= self.num_tasks

    @property
    def completed(self) -> bool:
        return self.num_finished_tasks >= self.num_tasks

    @property
    def parents_completed(self) -> bool:
        return all(parent.completed for parent in self.parents)

    @property
    def runnable(self) -> bool:
        """A stage is schedulable if its parents completed and it still has undispatched tasks."""
        return (not self.saturated) and self.parents_completed

    # --------------------------------------------------------------- actions
    def dispatch_task(self) -> Task:
        """Hand out the next undispatched task (the engine sets its times)."""
        if self.saturated:
            raise RuntimeError(f"{self.name} has no undispatched tasks left")
        task = self.tasks[self.next_task_index]
        self.next_task_index += 1
        self.num_running_tasks += 1
        if self.job is not None:
            self.job.log_feature_touch(self)
        return task

    def finish_task(self, task: Task, wall_time: float) -> None:
        """Record a task completion; marks the stage completed when the last one finishes."""
        self.num_finished_tasks += 1
        self.num_running_tasks -= 1
        if self.completed and self.completion_time < 0:
            self.completion_time = wall_time
        if self.job is not None:
            self.job.log_feature_touch(self)

    def reset(self) -> None:
        for task in self.tasks:
            task.reset()
        self.next_task_index = 0
        self.num_finished_tasks = 0
        self.num_running_tasks = 0
        self.completion_time = -1.0
        self.first_wave_dispatched = 0
        if self.job is not None:
            self.job.log_feature_touch(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        job_name = self.job.name if self.job is not None else "?"
        return f"Node({job_name}/{self.name}, tasks={self.num_tasks})"


class JobDAG:
    """A DAG of stages plus the job-level runtime state."""

    _id_counter = 0

    def __init__(
        self,
        nodes: Iterable[Node],
        edges: Iterable[tuple[int, int]],
        name: str = "",
        arrival_time: float = 0.0,
        work_inflation: Optional[Callable[[int], float]] = None,
        query_size_gb: float = 0.0,
    ):
        self.nodes = list(nodes)
        if not self.nodes:
            raise ValueError("a job must contain at least one stage")
        self.job_id = JobDAG._id_counter
        JobDAG._id_counter += 1
        self.name = name or f"job-{self.job_id}"
        self.arrival_time = float(arrival_time)
        self.completion_time = -1.0
        self.query_size_gb = float(query_size_gb)
        # ``work_inflation(parallelism)`` multiplies task durations to model the
        # diminishing-returns / slowdown effect of wide shuffles (§6.2 item 3).
        self.work_inflation = work_inflation
        self.executor_ids: set[int] = set()
        # Delta-feature bookkeeping: nodes whose task counters changed since a
        # feature consumer last drained the log, plus an epoch that advances
        # whenever per-node history can no longer be trusted (job reset, log
        # overflow) so consumers know to fall back to a full refresh.
        self.feature_epoch = 0
        self._touched_nodes: list[Node] = []
        self._touch_log_limit = 4 * len(self.nodes) + 16

        node_ids = {node.node_id for node in self.nodes}
        if len(node_ids) != len(self.nodes):
            raise ValueError("duplicate node ids in job DAG")
        by_id = {node.node_id: node for node in self.nodes}
        self.edges = [(int(src), int(dst)) for src, dst in edges]
        for src, dst in self.edges:
            if src not in by_id or dst not in by_id:
                raise ValueError(f"edge ({src}, {dst}) references unknown node")
            by_id[src].children.append(by_id[dst])
            by_id[dst].parents.append(by_id[src])
        for node in self.nodes:
            node.job = self
        # Validate acyclicity by computing a topological order (raises on cycles).
        self._topo_order = topological_order(self.nodes)

    # ------------------------------------------------------------ properties
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def completed(self) -> bool:
        return all(node.completed for node in self.nodes)

    @property
    def arrived(self) -> bool:
        return self.arrival_time >= 0.0

    @property
    def total_work(self) -> float:
        return sum(node.total_work for node in self.nodes)

    @property
    def remaining_work(self) -> float:
        return sum(node.remaining_work for node in self.nodes)

    @property
    def num_executors(self) -> int:
        """Executors currently bound to this job (including idle, warm ones)."""
        return len(self.executor_ids)

    @property
    def num_active_executors(self) -> int:
        """Executors currently *running a task* of this job.

        Parallelism limits are compared against this count: an executor that
        finished its stage and sits idle (but warm) does not count towards the
        job's parallelism.
        """
        return sum(node.num_running_tasks for node in self.nodes)

    @property
    def runnable_nodes(self) -> list[Node]:
        return [node for node in self.nodes if node.runnable]

    @property
    def adjacency_matrix(self) -> np.ndarray:
        """Adjacency matrix A with A[parent, child] = 1 (row = parent stage)."""
        matrix = np.zeros((self.num_nodes, self.num_nodes))
        index = {node.node_id: i for i, node in enumerate(self.nodes)}
        for src, dst in self.edges:
            matrix[index[src], index[dst]] = 1.0
        return matrix

    def completion_duration(self) -> float:
        """Job completion time (JCT) = completion - arrival."""
        if self.completion_time < 0:
            raise RuntimeError(f"{self.name} has not completed")
        return self.completion_time - self.arrival_time

    def critical_path(self) -> float:
        """Length of the critical path of the DAG in task-seconds of work."""
        return max(critical_path_value(node) for node in self.nodes)

    # ------------------------------------------------- delta-feature tracking
    def log_feature_touch(self, node: Node) -> None:
        """Record that ``node``'s task counters changed.

        Feature caches drain this log to refresh only the touched rows of the
        persistent feature matrix.  When the log outgrows the job (several
        times the node count — at that point a full refresh is cheaper than
        replaying the deltas) it is compacted into an epoch bump, which tells
        every consumer to do one full refresh and start over.
        """
        if len(self._touched_nodes) >= self._touch_log_limit:
            self.feature_epoch += 1
            self._touched_nodes.clear()
        else:
            self._touched_nodes.append(node)

    def drain_feature_touches(self, log_position: int) -> tuple[int, list[Node]]:
        """Return ``(new_position, nodes touched since log_position)``."""
        touched = self._touched_nodes
        return len(touched), touched[log_position:]

    def reset(self) -> None:
        for node in self.nodes:
            node.reset()
        self.completion_time = -1.0
        self.executor_ids = set()
        # Per-node resets above logged touches; collapse them into one epoch
        # bump so stale per-job cache state can never replay across episodes.
        self.feature_epoch += 1
        self._touched_nodes.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobDAG({self.name}, stages={self.num_nodes}, work={self.total_work:.1f})"


def topological_order(nodes: Iterable[Node]) -> list[Node]:
    """Kahn's algorithm; raises ``ValueError`` if the graph contains a cycle."""
    nodes = list(nodes)
    in_degree = {id(node): len(node.parents) for node in nodes}
    frontier = [node for node in nodes if in_degree[id(node)] == 0]
    order: list[Node] = []
    while frontier:
        node = frontier.pop()
        order.append(node)
        for child in node.children:
            in_degree[id(child)] -= 1
            if in_degree[id(child)] == 0:
                frontier.append(child)
    if len(order) != len(nodes):
        raise ValueError("job DAG contains a cycle")
    return order


def critical_path_value(node: Node, _cache: Optional[dict] = None) -> float:
    """Total work along the heaviest downstream path starting at ``node``.

    This is the quantity the paper's footnote 5 defines:
    ``cp(v) = max_{u in children(v)} cp(u) + work(v)``.
    """
    if _cache is None:
        _cache = {}
    key = id(node)
    if key in _cache:
        return _cache[key]
    child_value = max((critical_path_value(child, _cache) for child in node.children), default=0.0)
    value = child_value + node.total_work
    _cache[key] = value
    return value
