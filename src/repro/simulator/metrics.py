"""Metrics and result containers for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from .jobdag import JobDAG

__all__ = [
    "TaskRecord",
    "SimulationResult",
    "average_jct",
    "makespan",
    "executor_utilization",
    "latency_histogram",
]


@dataclass(frozen=True)
class TaskRecord:
    """One completed task, for timeline plots (Fig. 3 / Fig. 13)."""

    executor_id: int
    job_id: int
    job_name: str
    node_id: int
    start_time: float
    finish_time: float

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time


@dataclass
class SimulationResult:
    """Outcome of one simulated episode."""

    finished_jobs: list[JobDAG]
    unfinished_jobs: list[JobDAG]
    timeline: list[TaskRecord]
    wall_time: float
    total_reward: float
    num_actions: int
    scheduling_delays: list[float] = field(default_factory=list)

    @property
    def all_finished(self) -> bool:
        return not self.unfinished_jobs

    @property
    def average_jct(self) -> float:
        return average_jct(self.finished_jobs)

    @property
    def makespan(self) -> float:
        return makespan(self.finished_jobs)

    def job_completion_times(self) -> dict[str, float]:
        return {job.name: job.completion_duration() for job in self.finished_jobs}

    def per_job_work(self) -> dict[str, float]:
        """Actual executed work (task-seconds) per finished job, from the timeline."""
        work: dict[str, float] = {job.name: 0.0 for job in self.finished_jobs}
        for record in self.timeline:
            if record.job_name in work:
                work[record.job_name] += record.duration
        return work

    def summary(self) -> dict[str, float]:
        return {
            "finished_jobs": float(len(self.finished_jobs)),
            "unfinished_jobs": float(len(self.unfinished_jobs)),
            "average_jct": self.average_jct if self.finished_jobs else float("nan"),
            "makespan": self.makespan if self.finished_jobs else float("nan"),
            "wall_time": self.wall_time,
            "total_reward": self.total_reward,
            "num_actions": float(self.num_actions),
        }


def average_jct(jobs: Iterable[JobDAG]) -> float:
    """Average job completion time over completed jobs."""
    durations = [job.completion_duration() for job in jobs]
    if not durations:
        raise ValueError("no completed jobs to compute average JCT over")
    return float(np.mean(durations))


def makespan(jobs: Iterable[JobDAG]) -> float:
    """Time from the earliest arrival to the last completion."""
    jobs = list(jobs)
    if not jobs:
        raise ValueError("no completed jobs to compute makespan over")
    start = min(job.arrival_time for job in jobs)
    end = max(job.completion_time for job in jobs)
    return float(end - start)


def latency_histogram(values: Iterable[float]) -> dict:
    """p50/p95/p99 + count/mean/max summary of a sample of durations.

    The shared report format for anything latency-shaped: the sweep engine's
    pooled JCT distributions and the policy server's per-request decision
    latencies both emit it.  An empty sample yields ``count = 0`` with ``None``
    statistics (JSON-friendly; no NaNs in artifacts).
    """
    sample = np.asarray([float(v) for v in values], dtype=np.float64)
    if sample.size == 0:
        return {"count": 0, "mean": None, "p50": None, "p95": None, "p99": None, "max": None}
    p50, p95, p99 = np.percentile(sample, [50, 95, 99])
    return {
        "count": int(sample.size),
        "mean": float(sample.mean()),
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "max": float(sample.max()),
    }


def executor_utilization(
    timeline: Iterable[TaskRecord], num_executors: int, horizon: Optional[float] = None
) -> float:
    """Fraction of executor-time spent running tasks over the horizon."""
    records = list(timeline)
    if not records:
        return 0.0
    if horizon is None:
        horizon = max(record.finish_time for record in records)
    if horizon <= 0:
        return 0.0
    busy = sum(min(record.finish_time, horizon) - min(record.start_time, horizon) for record in records)
    return float(busy / (num_executors * horizon))
