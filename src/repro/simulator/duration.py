"""Task-duration fidelity model (§6.2).

The paper's simulator captures three real-world effects that matter for
learning good policies (and Appendix D shows omitting them hurts fidelity):

1. *First-wave slowdown*: the first wave of tasks of a stage runs slower than
   later waves (pipelined execution, JIT warm-up, TCP connection set-up).
2. *Executor-move delay*: attaching an executor to a new job costs a JVM
   start (2-3 s).  The engine applies this delay; this module only reports it.
3. *Work inflation at high parallelism*: wide shuffles slow individual tasks
   down, so running a job with many executors inflates its total work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .jobdag import JobDAG, Node

__all__ = ["DurationModelConfig", "TaskDurationModel"]


@dataclass
class DurationModelConfig:
    """Switches and magnitudes for the fidelity effects.

    Straggler inflation models straggler-prone clusters: each task
    independently becomes a straggler with probability
    ``straggler_probability`` and runs ``straggler_slowdown`` times longer.
    ``straggler_inflation`` overrides that Bernoulli model with an arbitrary
    hook ``rng -> multiplier`` (must be a picklable top-level callable so
    configs still cross process boundaries).  The default probability of zero
    draws no random numbers, so pre-existing seeded runs are unchanged.
    """

    enable_first_wave: bool = True
    first_wave_slowdown: float = 1.3
    enable_work_inflation: bool = True
    enable_noise: bool = True
    noise_sigma: float = 0.05
    moving_delay: float = 2.5
    enable_moving_delay: bool = True
    straggler_probability: float = 0.0
    straggler_slowdown: float = 4.0
    straggler_inflation: Optional[Callable[[np.random.Generator], float]] = None

    def simplified(self) -> "DurationModelConfig":
        """The Appendix-H simplified environment: no waves, no delays, no inflation."""
        return DurationModelConfig(
            enable_first_wave=False,
            enable_work_inflation=False,
            enable_noise=False,
            enable_moving_delay=False,
            moving_delay=0.0,
        )


class TaskDurationModel:
    """Samples per-task durations given the scheduling context."""

    def __init__(self, config: Optional[DurationModelConfig] = None, seed: int = 0):
        self.config = config or DurationModelConfig()
        self.rng = np.random.default_rng(seed)

    def reseed(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)

    def moving_delay(self, same_job: bool) -> float:
        """Delay before an executor can run its first task on a new job."""
        if same_job or not self.config.enable_moving_delay:
            return 0.0
        return self.config.moving_delay

    def sample_duration(self, node: Node, first_wave: bool, job_parallelism: int) -> float:
        """Sample the runtime of one task of ``node``.

        Parameters
        ----------
        first_wave:
            True if this task belongs to the first wave of the stage.
        job_parallelism:
            Number of executors currently attached to the node's job; used by
            the work-inflation model.
        """
        duration = node.task_duration
        if self.config.enable_first_wave and first_wave:
            duration *= self.config.first_wave_slowdown
        if self.config.enable_work_inflation:
            duration *= self.work_inflation_factor(node.job, job_parallelism)
        if self.config.enable_noise and self.config.noise_sigma > 0:
            duration *= float(
                np.exp(self.rng.normal(-0.5 * self.config.noise_sigma ** 2, self.config.noise_sigma))
            )
        duration *= self.straggler_factor()
        return max(duration, 1e-6)

    def straggler_factor(self) -> float:
        """Multiplier for straggler-prone clusters (1.0 when disabled)."""
        if self.config.straggler_inflation is not None:
            return float(max(self.config.straggler_inflation(self.rng), 1.0))
        probability = self.config.straggler_probability
        if probability <= 0.0:
            return 1.0
        if float(self.rng.random()) < probability:
            return float(max(self.config.straggler_slowdown, 1.0))
        return 1.0

    def work_inflation_factor(self, job: Optional[JobDAG], parallelism: int) -> float:
        """Multiplier on task duration at the given degree of parallelism.

        Jobs carry their own ``work_inflation`` callable (built from their
        parallelism speed-up curve); jobs without one see no inflation.
        """
        if job is None or job.work_inflation is None:
            return 1.0
        return float(max(job.work_inflation(max(parallelism, 1)), 1.0))
