"""Executors and executor classes.

In Spark standalone mode, an executor is a JVM slot that runs one task at a
time and sticks to one job; moving it to another job costs a JVM restart
(2-3 s).  The multi-resource extension (§7.3) introduces several discrete
executor *classes* with different memory sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .jobdag import JobDAG, Node, Task

__all__ = ["ExecutorClass", "Executor", "default_executor_class", "multi_resource_classes"]


@dataclass(frozen=True)
class ExecutorClass:
    """A class of executors with fixed CPU and memory capacity."""

    name: str
    cpu: float = 1.0
    memory: float = 1.0

    def fits(self, node: Node) -> bool:
        """Whether a task of ``node`` can run on executors of this class."""
        return self.cpu >= node.cpu_request and self.memory >= node.mem_request


def default_executor_class() -> ExecutorClass:
    """The single executor class used in the standalone-Spark experiments."""
    return ExecutorClass(name="standard", cpu=1.0, memory=1.0)


def multi_resource_classes() -> list[ExecutorClass]:
    """The four executor classes of §7.3: 1 CPU and 0.25/0.5/0.75/1.0 memory."""
    return [
        ExecutorClass(name="mem-0.25", cpu=1.0, memory=0.25),
        ExecutorClass(name="mem-0.50", cpu=1.0, memory=0.50),
        ExecutorClass(name="mem-0.75", cpu=1.0, memory=0.75),
        ExecutorClass(name="mem-1.00", cpu=1.0, memory=1.00),
    ]


class Executor:
    """A single executor slot.

    Attributes
    ----------
    job:
        Job the executor is currently bound to (``None`` when it has never run
        a task or its job finished).  Moving to a different job incurs the
        configured moving delay.
    node / task:
        Stage and task the executor is currently running (``None`` when idle).
    removed:
        Set when a timed ``executor_removed`` churn event decommissions the
        slot.  A removed executor never receives new tasks; if it was busy
        when the event fired it finishes its current task first (graceful
        drain) and then leaves the cluster.
    """

    def __init__(self, executor_id: int, executor_class: ExecutorClass):
        self.executor_id = executor_id
        self.executor_class = executor_class
        self.job: Optional[JobDAG] = None
        self.node: Optional[Node] = None
        self.task: Optional[Task] = None
        self.removed = False

    @property
    def idle(self) -> bool:
        return self.task is None

    @property
    def active(self) -> bool:
        """Whether the slot is part of the cluster (not decommissioned)."""
        return not self.removed

    def bind_job(self, job: Optional[JobDAG]) -> None:
        """Attach the executor to ``job`` (detaching from the previous one)."""
        if self.job is job:
            return
        if self.job is not None:
            self.job.executor_ids.discard(self.executor_id)
        self.job = job
        if job is not None:
            job.executor_ids.add(self.executor_id)

    def start_task(self, node: Node, task: Task) -> None:
        if not self.idle:
            raise RuntimeError(f"executor {self.executor_id} is already running a task")
        self.node = node
        self.task = task

    def finish_task(self) -> Task:
        if self.task is None:
            raise RuntimeError(f"executor {self.executor_id} is not running a task")
        task = self.task
        self.task = None
        self.node = None
        return task

    def reset(self) -> None:
        if self.job is not None:
            self.job.executor_ids.discard(self.executor_id)
        self.job = None
        self.node = None
        self.task = None
        self.removed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        binding = self.job.name if self.job is not None else "free"
        return f"Executor({self.executor_id}, {self.executor_class.name}, {binding})"
