"""Trace recording: event-source one seeded episode into an :class:`EpisodeTrace`.

The recorder drives an episode through the standard
:func:`repro.experiments.runner.run_episode` loop and listens on the
instrumentation seams the rest of the codebase exposes:

* the simulator's ``event_listeners`` hook streams every processed event
  (arrivals, completions, churn) into the trace;
* the runner's ``decision_hook`` streams every scheduling decision, stamped
  with an observation fingerprint;
* :class:`~repro.core.agent.DecimaAgent`'s ``logits_tap`` contributes a
  rounded digest of the node logits behind each learned decision;
* the simulator's duration-model generator is checkpointed every
  ``rng_checkpoint_interval`` decisions, catching drift in random-number
  consumption that identical decision streams would hide.

:func:`record_scenario_trace` is the sweep-compatible entry point: a *pure
function* of ``(scenario, scheduler, seed)`` plus size overrides, deriving
its workload from the shared
:func:`repro.experiments.scenarios.scenario_workload_rng` — the same
generator :func:`repro.experiments.sweep.run_cell` uses — so traces recorded
in worker processes are byte-identical to in-process ones, no matter how
cells are spread over workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..experiments.runner import run_episode
from ..experiments.scenarios import (
    ScenarioSpec,
    get_scenario,
    scenario_workload_rng,
)
from ..schedulers import make_scheduler
from ..simulator.environment import SchedulingEnvironment
from .trace import (
    DecisionRecord,
    EpisodeTrace,
    RngCheckpoint,
    TraceEvent,
    TraceHeader,
    logits_digest,
    observation_fingerprint,
    rng_state_digest,
)

# Re-exported: the shared (scenario, seed) -> workload generator derivation
# lives in repro.experiments.scenarios so the sweep engine and this recorder
# cannot drift apart.
__all__ = [
    "RecorderConfig",
    "TraceRecorder",
    "record_scenario_trace",
    "scenario_workload_rng",
]


@dataclass
class RecorderConfig:
    """Knobs of a recording: checkpoint cadence and what to include."""

    rng_checkpoint_interval: int = 25
    record_events: bool = True
    record_logits: bool = True


class TraceRecorder:
    """Record one episode of ``scheduler`` on ``environment`` into a trace."""

    def __init__(self, header: TraceHeader, config: Optional[RecorderConfig] = None):
        self.header = header
        self.config = config or RecorderConfig()

    def record(
        self,
        environment: SchedulingEnvironment,
        scheduler,
        jobs,
        seed: Optional[int] = None,
        max_decisions: Optional[int] = None,
    ) -> EpisodeTrace:
        """Drive one episode and return its trace.

        The environment's listener list and the agent's logits tap are
        restored afterwards, so recording never leaks instrumentation into
        subsequent (unrecorded) episodes.
        """
        trace = EpisodeTrace(header=self.header)
        interval = max(1, int(self.config.rng_checkpoint_interval))
        last_logits = {"digest": None}

        def on_event(kind: str, time: float, detail: dict) -> None:
            trace.events.append(TraceEvent(time=time, event=kind, **detail))

        def logits_tap(logits: np.ndarray) -> None:
            last_logits["digest"] = logits_digest(logits)

        def decision_hook(step, observation, action):
            # Pre-step phase: fingerprint the observation exactly as the
            # scheduler saw it (stepping mutates the live job DAGs in place).
            fingerprint = observation_fingerprint(observation)
            wall_time = observation.wall_time
            if action is not None and action.node is not None:
                job = action.node.job
                fields = dict(
                    job=job.name if job is not None else None,
                    node=action.node.node_id,
                    limit=int(action.parallelism_limit),
                    executor_class=(
                        action.executor_class.name
                        if action.executor_class is not None
                        else None
                    ),
                )
            else:
                fields = {}
            logits = last_logits["digest"]
            last_logits["digest"] = None
            # Hot-swapping schedulers (the online serving loop) expose the
            # version that answered; everything offline records None, which
            # the canonical encoding strips from the line.
            policy_version = getattr(scheduler, "policy_version", None)

            def finish(reward) -> None:
                trace.decisions.append(
                    DecisionRecord(
                        step=step,
                        wall_time=wall_time,
                        obs_fingerprint=fingerprint,
                        reward=float(reward),
                        logits=logits,
                        policy_version=(
                            int(policy_version) if policy_version is not None else None
                        ),
                        **fields,
                    )
                )
                if (step + 1) % interval == 0:
                    trace.rng_checkpoints.append(
                        RngCheckpoint(
                            step=step,
                            digest=rng_state_digest(environment.duration_model.rng),
                        )
                    )

            return finish

        taps_agent = self.config.record_logits and hasattr(scheduler, "logits_tap")
        if self.config.record_events:
            environment.event_listeners.append(on_event)
        if taps_agent:
            previous_tap = scheduler.logits_tap
            scheduler.logits_tap = logits_tap
        try:
            result = run_episode(
                environment,
                scheduler,
                jobs,
                seed=seed,
                max_steps=max_decisions,
                decision_hook=decision_hook,
            )
        finally:
            if self.config.record_events:
                environment.event_listeners.remove(on_event)
            if taps_agent:
                scheduler.logits_tap = previous_tap
        # Episode-end checkpoint — skipped when the last in-loop checkpoint
        # already covered the final decision (no duplicate records in the
        # digest) and on zero-decision episodes (no step to anchor it to).
        if trace.decisions and len(trace.decisions) % interval != 0:
            trace.rng_checkpoints.append(
                RngCheckpoint(
                    step=len(trace.decisions) - 1,
                    digest=rng_state_digest(environment.duration_model.rng),
                )
            )
        trace.summary = {
            "num_decisions": len(trace.decisions),
            "num_events": len(trace.events),
            "wall_time": float(result.wall_time),
            "total_reward": float(result.total_reward),
            "num_finished": len(result.finished_jobs),
            "num_unfinished": len(result.unfinished_jobs),
        }
        return trace


def record_scenario_trace(
    scenario: Union[str, ScenarioSpec],
    scheduler: str = "fifo",
    seed: int = 0,
    num_jobs: Optional[int] = None,
    num_executors: Optional[int] = None,
    max_decisions: Optional[int] = None,
    config: Optional[RecorderConfig] = None,
) -> EpisodeTrace:
    """Record one (scenario, scheduler, seed) episode — sweep-cell compatible.

    ``scenario`` is a registry name or an ad-hoc :class:`ScenarioSpec` (the
    fuzz tests build throwaway specs); everything about the episode is a
    deterministic function of the arguments, so two calls anywhere always
    produce byte-identical traces.
    """
    if isinstance(scenario, ScenarioSpec):
        if num_jobs is not None or num_executors is not None:
            # Silently ignoring the overrides would stamp sizes into the
            # header that the episode was not recorded at, and a later
            # header-driven rerun would resolve a different-sized scenario.
            raise ValueError(
                "num_jobs/num_executors overrides only apply to registry "
                "scenario names; size an ad-hoc ScenarioSpec itself instead"
            )
        spec = scenario
    else:
        spec = get_scenario(scenario, num_jobs=num_jobs, num_executors=num_executors)
    jobs = spec.build_jobs(scenario_workload_rng(spec.name, seed))
    simulator_config = spec.build_config(seed=seed)
    environment = SchedulingEnvironment(simulator_config)
    scheduler_instance = make_scheduler(scheduler, simulator_config)
    header = TraceHeader(
        scenario=spec.name,
        scheduler=scheduler,
        seed=int(seed),
        num_jobs=num_jobs,
        num_executors=num_executors,
        max_decisions=max_decisions,
    )
    recorder = TraceRecorder(header, config=config)
    return recorder.record(
        environment, scheduler_instance, jobs, seed=seed, max_decisions=max_decisions
    )
