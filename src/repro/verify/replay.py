"""Replay: re-drive a recorded episode and report the first divergence.

Two replay modes cover the two directions drift can come from:

* ``rerun`` re-executes the recorded ``(scenario, scheduler, seed)`` cell from
  scratch — same workload derivation, same scheduler factory — and diffs the
  freshly produced trace against the recorded one.  This is the golden-trace
  CI check: any change to the simulator, the workload generators, a scheduler
  or the agent that shifts even one decision fails with full context.
* ``apply`` feeds the *recorded* decisions back into a fresh environment,
  checking at every step that the observation fingerprint still matches and
  that the event stream and rewards come out identical.  This isolates the
  simulator: it must reproduce the episode exactly even with the scheduler
  taken out of the loop.

Divergences are reported, never asserted: :class:`DivergenceReport` carries
the step index, the observation fingerprints on both sides, the mismatching
field and both records, so a failing CI run pinpoints the first drifting
decision without re-running anything locally.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Sequence, Union

from ..experiments.scenarios import ScenarioSpec
from ..simulator.environment import Action, SchedulingEnvironment
from .recorder import RecorderConfig, record_scenario_trace, scenario_workload_rng
from .trace import (
    DecisionRecord,
    EpisodeTrace,
    TraceEvent,
    observation_fingerprint,
)

__all__ = [
    "DEFAULT_COMPARE_FIELDS",
    "DivergenceReport",
    "ReplayReport",
    "first_divergence",
    "ReplayEngine",
]

# The decision fields that define behavioural equality.  ``logits`` digests
# are compared only when both sides recorded one (heuristic schedulers have
# none), and their comparison is advisory context rather than part of the
# default contract — see ``first_divergence``.
DEFAULT_COMPARE_FIELDS = (
    "job",
    "node",
    "limit",
    "executor_class",
    "wall_time",
    "reward",
    "obs_fingerprint",
)


@dataclass(frozen=True)
class DivergenceReport:
    """First point where two decision streams disagree, with full context."""

    kind: str  # "decision" | "event" | "rng" | "length" | "summary" | "fingerprint"
    step: int
    field: Optional[str] = None
    expected: Optional[dict] = None
    actual: Optional[dict] = None
    expected_fingerprint: Optional[str] = None
    actual_fingerprint: Optional[str] = None
    message: str = ""

    def describe(self) -> str:
        lines = [
            f"first divergence at {self.kind} #{self.step}"
            + (f" (field {self.field!r})" if self.field else "")
        ]
        if self.message:
            lines.append(f"  {self.message}")
        if self.expected_fingerprint or self.actual_fingerprint:
            lines.append(
                f"  observation fingerprint: expected {self.expected_fingerprint} "
                f"actual {self.actual_fingerprint}"
            )
        if self.expected is not None:
            lines.append(f"  expected: {self.expected}")
        if self.actual is not None:
            lines.append(f"  actual:   {self.actual}")
        return "\n".join(lines)


def first_divergence(
    expected: EpisodeTrace,
    actual: EpisodeTrace,
    fields: Sequence[str] = DEFAULT_COMPARE_FIELDS,
    compare_events: bool = True,
    compare_rng: bool = True,
    compare_logits: bool = False,
) -> Optional[DivergenceReport]:
    """Diff two traces; return the first divergence (or ``None`` if identical).

    Decisions are compared field-by-field (``fields``), then the event
    streams, then the RNG checkpoints.  ``compare_logits`` additionally
    requires matching (rounded) logit digests where both sides recorded one —
    on by the replay engine, off for cross-implementation differentials whose
    logits legitimately differ in the last float bits.
    """
    for index, (lhs, rhs) in enumerate(zip(expected.decisions, actual.decisions)):
        active = list(fields)
        if compare_logits and lhs.logits is not None and rhs.logits is not None:
            active.append("logits")
        for field_name in active:
            if getattr(lhs, field_name) != getattr(rhs, field_name):
                return DivergenceReport(
                    kind="decision",
                    step=index,
                    field=field_name,
                    expected=asdict(lhs),
                    actual=asdict(rhs),
                    expected_fingerprint=lhs.obs_fingerprint,
                    actual_fingerprint=rhs.obs_fingerprint,
                )
    if len(expected.decisions) != len(actual.decisions):
        step = min(len(expected.decisions), len(actual.decisions))
        # Attribute the first surplus record to the stream it came from, so
        # triage reads the right implementation's decision.
        expected_surplus = (
            asdict(expected.decisions[step])
            if len(expected.decisions) > len(actual.decisions)
            else None
        )
        actual_surplus = (
            asdict(actual.decisions[step])
            if len(actual.decisions) > len(expected.decisions)
            else None
        )
        return DivergenceReport(
            kind="length",
            step=step,
            message=(
                f"decision streams have different lengths: expected "
                f"{len(expected.decisions)}, actual {len(actual.decisions)}"
            ),
            expected=expected_surplus,
            actual=actual_surplus,
        )
    if compare_events:
        for index, (lhs, rhs) in enumerate(zip(expected.events, actual.events)):
            if lhs != rhs:
                return DivergenceReport(
                    kind="event",
                    step=index,
                    expected=asdict(lhs),
                    actual=asdict(rhs),
                )
        if len(expected.events) != len(actual.events):
            return DivergenceReport(
                kind="event",
                step=min(len(expected.events), len(actual.events)),
                message=(
                    f"event streams have different lengths: expected "
                    f"{len(expected.events)}, actual {len(actual.events)}"
                ),
            )
    if compare_rng:
        for index, (lhs, rhs) in enumerate(
            zip(expected.rng_checkpoints, actual.rng_checkpoints)
        ):
            if lhs != rhs:
                return DivergenceReport(
                    kind="rng",
                    step=lhs.step,
                    expected=asdict(lhs),
                    actual=asdict(rhs),
                    message=(
                        "decision streams agree but the simulator consumed "
                        "random numbers differently"
                    ),
                )
        if len(expected.rng_checkpoints) != len(actual.rng_checkpoints):
            return DivergenceReport(
                kind="rng",
                step=min(len(expected.rng_checkpoints), len(actual.rng_checkpoints)),
                message="different numbers of RNG checkpoints",
            )
    return None


@dataclass
class ReplayReport:
    """Outcome of replaying one trace."""

    scenario: str
    scheduler: str
    seed: int
    mode: str
    num_decisions: int
    divergence: Optional[DivergenceReport] = None
    digest: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def describe(self) -> str:
        status = "OK" if self.ok else "DIVERGED"
        head = (
            f"[{status}] {self.scenario} / {self.scheduler} / seed {self.seed} "
            f"({self.mode}, {self.num_decisions} decisions)"
        )
        if self.divergence is None:
            return head
        return head + "\n" + self.divergence.describe()


class ReplayEngine:
    """Re-drive recorded episodes and diff them against their traces."""

    def __init__(self, mode: str = "rerun", recorder_config: Optional[RecorderConfig] = None):
        if mode not in ("rerun", "apply"):
            raise ValueError(f"unknown replay mode {mode!r} (use 'rerun' or 'apply')")
        self.mode = mode
        self.recorder_config = recorder_config

    def replay(
        self,
        trace: EpisodeTrace,
        spec: Optional[ScenarioSpec] = None,
    ) -> ReplayReport:
        """Replay ``trace``; ``spec`` overrides the registry lookup for ad-hoc
        scenarios that are not registered under the header's name."""
        if self.mode == "rerun":
            return self._replay_rerun(trace, spec)
        return self._replay_apply(trace, spec)

    # ------------------------------------------------------------------ modes
    def _report(self, trace: EpisodeTrace, divergence) -> ReplayReport:
        return ReplayReport(
            scenario=trace.header.scenario,
            scheduler=trace.header.scheduler,
            seed=trace.header.seed,
            mode=self.mode,
            num_decisions=trace.num_decisions,
            divergence=divergence,
            digest=trace.digest,
        )

    def _replay_rerun(
        self, trace: EpisodeTrace, spec: Optional[ScenarioSpec]
    ) -> ReplayReport:
        header = trace.header
        fresh = record_scenario_trace(
            spec if spec is not None else header.scenario,
            scheduler=header.scheduler,
            seed=header.seed,
            num_jobs=header.num_jobs,
            num_executors=header.num_executors,
            max_decisions=header.max_decisions,
            config=self.recorder_config,
        )
        divergence = first_divergence(trace, fresh, compare_logits=True)
        if divergence is None and trace.digest != fresh.digest:
            divergence = DivergenceReport(
                kind="summary",
                step=trace.num_decisions,
                message=(
                    f"records match but content digests differ (recorded "
                    f"{trace.digest}, replayed {fresh.digest}) — summary drift?"
                ),
                expected=trace.summary,
                actual=fresh.summary,
            )
        return self._report(trace, divergence)

    def _replay_apply(
        self, trace: EpisodeTrace, spec: Optional[ScenarioSpec]
    ) -> ReplayReport:
        header = trace.header
        if spec is None:
            from ..experiments.scenarios import get_scenario

            spec = get_scenario(
                header.scenario,
                num_jobs=header.num_jobs,
                num_executors=header.num_executors,
            )
        jobs = spec.build_jobs(scenario_workload_rng(spec.name, header.seed))
        environment = SchedulingEnvironment(spec.build_config(seed=header.seed))
        events: list[TraceEvent] = []
        environment.event_listeners.append(
            lambda kind, time, detail: events.append(
                TraceEvent(time=time, event=kind, **detail)
            )
        )
        observation = environment.reset(jobs, seed=header.seed)
        divergence = None
        for record in trace.decisions:
            if observation is None:
                divergence = DivergenceReport(
                    kind="length",
                    step=record.step,
                    message="episode finished before the recorded stream did",
                    expected=asdict(record),
                )
                break
            fingerprint = observation_fingerprint(observation)
            if fingerprint != record.obs_fingerprint:
                divergence = DivergenceReport(
                    kind="fingerprint",
                    step=record.step,
                    expected=asdict(record),
                    expected_fingerprint=record.obs_fingerprint,
                    actual_fingerprint=fingerprint,
                    message="simulator state diverged from the recording",
                )
                break
            action = self._decode_action(record, observation)
            if isinstance(action, DivergenceReport):
                divergence = action
                break
            observation, reward, done = environment.step(action)
            if record.reward is not None and float(reward) != record.reward:
                divergence = DivergenceReport(
                    kind="decision",
                    step=record.step,
                    field="reward",
                    expected=asdict(record),
                    actual={"reward": float(reward)},
                    expected_fingerprint=record.obs_fingerprint,
                    actual_fingerprint=fingerprint,
                )
                break
            if done:
                observation = None
        if divergence is None:
            # Decisions were applied verbatim, so only the *event* stream can
            # still diverge; reuse the recorded decisions to satisfy the diff.
            replayed = EpisodeTrace(
                header=header, events=events, decisions=list(trace.decisions)
            )
            divergence = first_divergence(
                trace, replayed, compare_events=True, compare_rng=False
            )
        return self._report(trace, divergence)

    @staticmethod
    def _decode_action(
        record: DecisionRecord, observation
    ) -> Union[Optional[Action], DivergenceReport]:
        """Resolve a recorded decision against the live observation."""
        if record.job is None:
            return None
        for job in observation.job_dags:
            if job.name == record.job:
                for node in job.nodes:
                    if node.node_id == record.node:
                        executor_class = None
                        if record.executor_class is not None:
                            executor_class = next(
                                (
                                    cls
                                    for cls in observation.executor_classes
                                    if cls.name == record.executor_class
                                ),
                                None,
                            )
                            if executor_class is None:
                                # Don't silently apply on the wrong class —
                                # that would surface as an unrelated reward
                                # or fingerprint mismatch steps later.
                                return DivergenceReport(
                                    kind="decision",
                                    step=record.step,
                                    field="executor_class",
                                    expected=asdict(record),
                                    message=(
                                        f"recorded executor class "
                                        f"{record.executor_class!r} does not "
                                        "exist in the replayed observation"
                                    ),
                                )
                        return Action(
                            node=node,
                            parallelism_limit=record.limit or 1,
                            executor_class=executor_class,
                        )
        return DivergenceReport(
            kind="decision",
            step=record.step,
            field="job" if record.job is not None else None,
            expected=asdict(record),
            message=(
                f"recorded decision names job {record.job!r} node {record.node!r}, "
                "which does not exist in the replayed observation"
            ),
        )
