"""Deterministic verification subsystem: trace record/replay + differentials.

The regression backstop every perf PR runs against:

* :mod:`repro.verify.trace` — the versioned JSONL episode-trace format
  (events, decisions, RNG checkpoints, content digest);
* :mod:`repro.verify.recorder` — event-source a seeded episode into a trace
  through the simulator/runner/agent instrumentation seams;
* :mod:`repro.verify.replay` — re-drive a trace (rerun or apply mode) and
  report the first divergence with full context;
* :mod:`repro.verify.differential` — one harness running the same seeded
  scenario through implementation variants (sparse/dense GNN, cached/scratch
  features, serial/parallel rollout, batched/serial serving, any registered
  scheduler) and asserting identical decision streams.

Golden traces for every registry scenario live in ``tests/golden/`` and are
regenerated with ``examples/record_golden_traces.py``; see ``docs/TESTING.md``.
"""

from .differential import (
    IMPLEMENTATION_PAIRS,
    DifferentialReport,
    DifferentialTask,
    register_variant,
    resolve_variant,
    run_differential,
    run_pair,
    variant_names,
)
from .recorder import (
    RecorderConfig,
    TraceRecorder,
    record_scenario_trace,
    scenario_workload_rng,
)
from .replay import (
    DEFAULT_COMPARE_FIELDS,
    DivergenceReport,
    ReplayEngine,
    ReplayReport,
    first_divergence,
)
from .trace import (
    TRACE_VERSION,
    DecisionRecord,
    EpisodeTrace,
    RngCheckpoint,
    TraceEvent,
    TraceHeader,
    logits_digest,
    observation_fingerprint,
    read_trace,
    rng_state_digest,
    write_trace,
)

__all__ = [
    "TRACE_VERSION",
    "TraceHeader",
    "TraceEvent",
    "DecisionRecord",
    "RngCheckpoint",
    "EpisodeTrace",
    "observation_fingerprint",
    "logits_digest",
    "rng_state_digest",
    "read_trace",
    "write_trace",
    "RecorderConfig",
    "TraceRecorder",
    "record_scenario_trace",
    "scenario_workload_rng",
    "DEFAULT_COMPARE_FIELDS",
    "DivergenceReport",
    "ReplayEngine",
    "ReplayReport",
    "first_divergence",
    "DifferentialTask",
    "DifferentialReport",
    "IMPLEMENTATION_PAIRS",
    "register_variant",
    "resolve_variant",
    "run_differential",
    "run_pair",
    "variant_names",
]
