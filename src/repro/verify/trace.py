"""Versioned episode-trace format: event sourcing for seeded scheduling runs.

A trace is the event-sourced record of one seeded episode:

* a **header** pinning everything needed to re-derive the episode (scenario,
  scheduler, seed, size overrides, trace-format version);
* every **simulator event** the environment processed (job arrivals, task
  finishes, executor churn), in processing order;
* every **agent decision** (job, stage, parallelism limit, executor class,
  wall time, reward) together with a fingerprint of the observation the
  decision was made on and — for learned schedulers — a rounded digest of the
  node logits behind it;
* periodic **RNG checkpoints** (digests of the simulator's generator state),
  which catch "same decisions, different random-number consumption" drift
  that decision comparison alone would miss;
* a **footer** with summary statistics and a content digest over everything
  above it.

Serialization is JSON-lines with canonical encoding (sorted keys, no
whitespace), so byte equality of two trace files is exactly record equality
and the sha256 content digest is stable across processes, worker counts and
platforms.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

import numpy as np

__all__ = [
    "TRACE_VERSION",
    "TraceHeader",
    "TraceEvent",
    "DecisionRecord",
    "RngCheckpoint",
    "EpisodeTrace",
    "observation_fingerprint",
    "logits_digest",
    "rng_state_digest",
    "write_trace",
    "read_trace",
]

# Bump when the line schema changes; readers reject unknown versions instead
# of mis-parsing golden traces recorded by a different code generation.
TRACE_VERSION = 1

_FINGERPRINT_HEX = 16  # 64 bits of sha256 — plenty for first-divergence triage


def _canonical(payload: dict) -> str:
    """Canonical JSON: sorted keys, compact separators, round-trip floats."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _sha256_hex(text: str, length: int = _FINGERPRINT_HEX) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:length]


# ------------------------------------------------------------------ fingerprints
def observation_fingerprint(observation) -> str:
    """Compact digest of everything a policy can see in ``observation``.

    Jobs are identified by their seed-deterministic *names* (never the
    process-global ``job_id`` counter), so fingerprints are comparable across
    independent runs and across worker processes.
    """
    jobs = []
    for job in observation.job_dags:
        jobs.append(
            {
                "name": job.name,
                "arrival": job.arrival_time,
                "nodes": [
                    [
                        node.node_id,
                        node.num_tasks,
                        node.num_finished_tasks,
                        node.num_running_tasks,
                    ]
                    for node in job.nodes
                ],
            }
        )
    payload = {
        "wall_time": observation.wall_time,
        "free": observation.num_free_executors,
        # Per-class free counts: on heterogeneous fleets, *which* class is
        # free matters even when the total free count is unchanged.
        "free_by_class": sorted(
            [cls.name, count]
            for cls, count in observation.free_executors_by_class.items()
        ),
        "total": observation.total_executors,
        "in_system": observation.num_jobs_in_system,
        "source": observation.source_job.name if observation.source_job else None,
        "jobs": jobs,
        "schedulable": [
            [node.job.name if node.job is not None else None, node.node_id]
            for node in observation.schedulable_nodes
        ],
    }
    return _sha256_hex(_canonical(payload))


def logits_digest(logits: np.ndarray, decimals: int = 6) -> str:
    """Digest of a logit vector rounded to ``decimals`` places.

    The sparse and dense GNN paths sum messages in different floating-point
    orders, so raw logits agree to ~1e-12 but not bit-for-bit; rounding before
    hashing absorbs that while still flagging any real numerical divergence.
    ``+ 0.0`` normalises ``-0.0`` so both signs of zero hash identically.
    """
    rounded = np.round(np.asarray(logits, dtype=np.float64), decimals) + 0.0
    digest = hashlib.sha256()
    digest.update(rounded.tobytes())
    digest.update(str(rounded.shape).encode())
    return digest.hexdigest()[:_FINGERPRINT_HEX]


def rng_state_digest(generator: np.random.Generator) -> str:
    """Digest of a numpy generator's full bit-generator state."""

    def jsonable(value):
        if isinstance(value, dict):
            return {key: jsonable(item) for key, item in value.items()}
        if isinstance(value, np.ndarray):
            return value.tolist()
        if isinstance(value, (np.integer,)):
            return int(value)
        return value

    return _sha256_hex(_canonical(jsonable(generator.bit_generator.state)))


# ------------------------------------------------------------------ trace records
@dataclass(frozen=True)
class TraceHeader:
    """Everything needed to re-derive the recorded episode."""

    scenario: str
    scheduler: str
    seed: int
    version: int = TRACE_VERSION
    num_jobs: Optional[int] = None
    num_executors: Optional[int] = None
    max_decisions: Optional[int] = None
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class TraceEvent:
    """One processed simulator event (arrival, completion, churn)."""

    time: float
    event: str  # "job_arrival" | "task_finish" | "executor_added" | "executor_removed"
    job: Optional[str] = None
    node: Optional[int] = None
    executor: Optional[int] = None
    count: Optional[int] = None


@dataclass(frozen=True)
class DecisionRecord:
    """One agent decision with the context needed for divergence triage.

    ``job`` is ``None`` for no-op decisions (the scheduler declined).  The
    serial-vs-parallel rollout pair compares on ``(wall_time, reward)`` only,
    because worker outcomes ship rewards but not node identities — see
    :mod:`repro.verify.differential`.

    ``policy_version`` audits which published policy answered the decision on
    paths that hot-swap weights (the online-learning serving loop); offline
    recordings leave it ``None``, which the canonical encoding strips, so
    golden traces are byte-identical to pre-versioned ones.
    """

    step: int
    wall_time: float
    obs_fingerprint: str
    job: Optional[str] = None
    node: Optional[int] = None
    limit: Optional[int] = None
    executor_class: Optional[str] = None
    reward: Optional[float] = None
    logits: Optional[str] = None
    session: Optional[str] = None
    policy_version: Optional[int] = None


@dataclass(frozen=True)
class RngCheckpoint:
    """Digest of the simulator's RNG state after ``step`` decisions."""

    step: int
    digest: str


@dataclass
class EpisodeTrace:
    """A full recorded episode: header, events, decisions, RNG checkpoints."""

    header: TraceHeader
    events: list = field(default_factory=list)
    decisions: list = field(default_factory=list)
    rng_checkpoints: list = field(default_factory=list)
    summary: dict = field(default_factory=dict)

    # -------------------------------------------------------------- encoding
    def body_lines(self) -> list[str]:
        """Canonical JSONL lines for everything except the footer."""
        lines = [_canonical({"kind": "header", **_strip(asdict(self.header))})]
        for event in self.events:
            lines.append(_canonical({"kind": "event", **_strip(asdict(event))}))
        for decision in self.decisions:
            lines.append(_canonical({"kind": "decision", **_strip(asdict(decision))}))
        for checkpoint in self.rng_checkpoints:
            lines.append(_canonical({"kind": "rng", **_strip(asdict(checkpoint))}))
        return lines

    @property
    def digest(self) -> str:
        """sha256 over the canonical body — the trace's content identity."""
        return _digest_of(self.body_lines())

    def to_lines(self) -> list[str]:
        # Serialize the body once and hash those same lines, so the written
        # footer can never be computed from a diverging serialization.
        lines = self.body_lines()
        digest = _digest_of(lines)
        lines.append(
            _canonical({"kind": "end", "digest": digest, **_strip(self.summary)})
        )
        return lines

    @property
    def num_decisions(self) -> int:
        return len(self.decisions)


def _digest_of(body_lines: list[str]) -> str:
    hasher = hashlib.sha256()
    for line in body_lines:
        hasher.update(line.encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def _strip(payload: dict) -> dict:
    """Drop ``None`` fields and empty extras so lines stay compact."""
    return {
        key: value
        for key, value in payload.items()
        if value is not None and not (key == "extra" and not value)
    }


# ---------------------------------------------------------------------- file I/O
def write_trace(trace: EpisodeTrace, path: Union[str, Path]) -> Path:
    """Serialize ``trace`` (canonical JSONL + digest footer) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(trace.to_lines()) + "\n")
    return path


def _record_from(kind: str, payload: dict):
    payload = dict(payload)
    payload.pop("kind", None)
    if kind == "event":
        return TraceEvent(**payload)
    if kind == "decision":
        return DecisionRecord(**payload)
    if kind == "rng":
        return RngCheckpoint(**payload)
    raise ValueError(f"unknown trace record kind {kind!r}")


def trace_from_lines(lines: Iterable[str], verify_digest: bool = True) -> EpisodeTrace:
    """Parse a trace from its JSONL lines, validating version and digest."""
    header: Optional[TraceHeader] = None
    trace: Optional[EpisodeTrace] = None
    footer: Optional[dict] = None
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        if footer is not None:
            raise ValueError(f"trace line {number}: content after the end record")
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"trace line {number}: not valid JSON ({error})") from None
        kind = payload.get("kind")
        if header is None:
            if kind != "header":
                raise ValueError("trace must start with a header record")
            version = payload.get("version")
            if version != TRACE_VERSION:
                raise ValueError(
                    f"trace version {version!r} is not supported "
                    f"(this reader expects {TRACE_VERSION})"
                )
            payload.pop("kind")
            payload.setdefault("extra", {})
            header = TraceHeader(**payload)
            trace = EpisodeTrace(header=header)
            continue
        assert trace is not None
        if kind == "end":
            footer = payload
        elif kind == "event":
            trace.events.append(_record_from(kind, payload))
        elif kind == "decision":
            trace.decisions.append(_record_from(kind, payload))
        elif kind == "rng":
            trace.rng_checkpoints.append(_record_from(kind, payload))
        else:
            raise ValueError(f"trace line {number}: unknown record kind {kind!r}")
    if trace is None:
        raise ValueError("empty trace")
    if footer is None:
        raise ValueError("trace has no end record — was the recording truncated?")
    recorded_digest = footer.pop("digest", None)
    footer.pop("kind", None)
    trace.summary = footer
    if verify_digest and recorded_digest != trace.digest:
        raise ValueError(
            "trace content digest mismatch: the file was edited or corrupted "
            f"(recorded {recorded_digest}, recomputed {trace.digest})"
        )
    return trace


def read_trace(path: Union[str, Path], verify_digest: bool = True) -> EpisodeTrace:
    """Read and validate a trace file written by :func:`write_trace`."""
    return trace_from_lines(
        Path(path).read_text().splitlines(), verify_digest=verify_digest
    )
