"""Differential oracle runner: one harness for every fast/oracle pair.

The repo ships several "fast path vs reference path" implementation pairs,
each of which must be *behaviourally identical* at fixed seeds:

* sparse frontier message passing vs the dense O(N²) GNN oracle;
* the incremental :class:`~repro.core.features.GraphCache` vs from-scratch
  feature building;
* in-process rollout collection vs the parallel worker pool;
* cross-session batched service dispatch vs per-session serial dispatch;
* router→shard sharded fleet dispatch vs single-server serial dispatch;
* and, trivially, any registered scheduler against itself across runs
  (determinism).

This module replaces the four bespoke equivalence suites with one runner:
every *variant* is a named function from a :class:`DifferentialTask` (a
seeded scenario) to an :class:`~repro.verify.trace.EpisodeTrace`, and
:func:`run_differential` executes two variants on the same task and diffs
their decision streams, reporting the first divergence with full context
(step index, observation fingerprints, both records).
"""

from __future__ import annotations

import copy
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.agent import DecimaAgent, DecimaConfig
from ..core.checkpoints import agent_spec
from ..core.parallel import EpisodeSpec, RolloutWorkerPool
from ..core.parallel import run_episode as run_rollout_episode
from ..experiments.scenarios import ScenarioSpec, get_scenario
from ..schedulers import scheduler_names
from ..simulator.environment import SchedulingEnvironment
from .recorder import RecorderConfig, TraceRecorder, scenario_workload_rng
from .replay import DEFAULT_COMPARE_FIELDS, DivergenceReport, first_divergence
from .trace import DecisionRecord, EpisodeTrace, TraceHeader, observation_fingerprint

__all__ = [
    "DifferentialTask",
    "DifferentialReport",
    "VariantFn",
    "IMPLEMENTATION_PAIRS",
    "register_variant",
    "variant_names",
    "resolve_variant",
    "run_differential",
    "run_pair",
]


@dataclass(frozen=True)
class DifferentialTask:
    """One seeded scenario every variant must reproduce identically.

    ``scenario`` is a registry name or an ad-hoc :class:`ScenarioSpec`;
    ``num_sessions`` only matters for the service variants (how many
    concurrent simulated clusters share the broker) and ``episode_time``
    only for the rollout variants (the truncated-episode horizon).
    """

    scenario: Union[str, ScenarioSpec]
    seed: int = 0
    num_jobs: Optional[int] = None
    num_executors: Optional[int] = None
    max_decisions: Optional[int] = None
    num_sessions: int = 3
    episode_time: float = 2_000.0

    def resolve_spec(self) -> ScenarioSpec:
        if isinstance(self.scenario, ScenarioSpec):
            return self.scenario
        return get_scenario(
            self.scenario, num_jobs=self.num_jobs, num_executors=self.num_executors
        )

    def build_jobs(self, spec: ScenarioSpec, stream: int = 0):
        """The task's deterministic job set (``stream`` > 0 for per-session sets)."""
        if stream == 0:
            rng = scenario_workload_rng(spec.name, self.seed)
        else:
            rng = np.random.default_rng(
                [self.seed, int(stream), zlib.crc32(spec.name.encode("utf-8"))]
            )
        return spec.build_jobs(rng)


VariantFn = Callable[[DifferentialTask], EpisodeTrace]

_VARIANTS: Dict[str, VariantFn] = {}


def register_variant(name: str, fn: VariantFn, overwrite: bool = False) -> None:
    """Add a named implementation variant to the differential registry."""
    if not overwrite and name in _VARIANTS:
        raise ValueError(f"variant {name!r} is already registered")
    _VARIANTS[name] = fn


def variant_names() -> tuple:
    """Registered variant names plus the dynamic ``scheduler:<name>`` family."""
    return tuple(_VARIANTS) + tuple(
        f"scheduler:{name}" for name in scheduler_names()
    )


def resolve_variant(name: str) -> VariantFn:
    """Look a variant up by name; ``scheduler:<registered>`` resolves any
    scheduler in the scheduler registry into a trace-producing variant."""
    if name in _VARIANTS:
        return _VARIANTS[name]
    if name.startswith("scheduler:"):
        scheduler = name.split(":", 1)[1]
        if scheduler in scheduler_names():
            return lambda task: _scheduler_stream(task, scheduler)
    known = ", ".join(variant_names())
    raise KeyError(f"unknown variant {name!r}; known variants: {known}")


# ------------------------------------------------------------- variant builders
def _build_decima(
    config,
    sparse: bool,
    cache: bool,
    multi: Optional[bool] = None,
    kernel_backend: str = "numpy",
) -> DecimaAgent:
    classes = config.executor_classes or []
    if multi is None:
        multi = len({cls for cls, _ in classes}) > 1
    return DecimaAgent(
        total_executors=config.num_executors,
        config=DecimaConfig(
            seed=0,
            sparse_message_passing=sparse,
            use_graph_cache=cache,
            multi_resource=multi,
            kernel_backend=kernel_backend,
        ),
    )


def _record(task: DifferentialTask, scheduler, label: str) -> EpisodeTrace:
    spec = task.resolve_spec()
    jobs = task.build_jobs(spec)
    simulator_config = spec.build_config(seed=task.seed)
    environment = SchedulingEnvironment(simulator_config)
    header = TraceHeader(
        scenario=spec.name,
        scheduler=label,
        seed=task.seed,
        num_jobs=task.num_jobs,
        num_executors=task.num_executors,
        max_decisions=task.max_decisions,
    )
    return TraceRecorder(header, config=RecorderConfig()).record(
        environment, scheduler, jobs, seed=task.seed, max_decisions=task.max_decisions
    )


def _scheduler_stream(task: DifferentialTask, scheduler_name: str) -> EpisodeTrace:
    from ..schedulers import make_scheduler

    spec = task.resolve_spec()
    simulator_config = spec.build_config(seed=task.seed)
    return _record(
        task,
        make_scheduler(scheduler_name, simulator_config),
        f"scheduler:{scheduler_name}",
    )


def _decima_stream(
    task: DifferentialTask,
    sparse: bool,
    cache: bool,
    label: str,
    kernel_backend: str = "numpy",
):
    spec = task.resolve_spec()
    simulator_config = spec.build_config(seed=task.seed)
    return _record(
        task,
        _build_decima(simulator_config, sparse, cache, kernel_backend=kernel_backend),
        label,
    )


# --------------------------------------------------- rollout-backend variants
def _rollout_setup(task: DifferentialTask):
    spec = task.resolve_spec()
    simulator_config = spec.build_config(seed=task.seed)
    agent = _build_decima(simulator_config, sparse=True, cache=True)
    episode = EpisodeSpec(
        jobs=task.build_jobs(spec),
        episode_time=task.episode_time,
        env_seed=task.seed,
        action_seed=task.seed + 1,
        max_actions=task.max_decisions,
    )
    header = TraceHeader(
        scenario=spec.name,
        scheduler="rollout",
        seed=task.seed,
        num_jobs=task.num_jobs,
        num_executors=task.num_executors,
        max_decisions=task.max_decisions,
    )
    return simulator_config, agent, episode, header


def _rollout_serial(task: DifferentialTask) -> EpisodeTrace:
    """In-process sampled rollout, decision stream via the step-hook seam."""
    simulator_config, agent, episode, header = _rollout_setup(task)
    trace = EpisodeTrace(header=header)

    def step_hook(step, observation, action, info, wall_time):
        # Worker outcomes only carry reward/wall-time for *recorded*
        # transitions (info is not None); mirror that projection here.
        if info is None:
            return None
        fingerprint = observation_fingerprint(observation)
        job = action.node.job if action is not None and action.node is not None else None
        fields = dict(
            job=job.name if job is not None else None,
            node=action.node.node_id if action is not None and action.node else None,
            limit=int(action.parallelism_limit) if action is not None else None,
        )

        def finish(reward) -> None:
            trace.decisions.append(
                DecisionRecord(
                    step=len(trace.decisions),
                    wall_time=float(wall_time),
                    obs_fingerprint=fingerprint,
                    reward=float(reward),
                    **fields,
                )
            )

        return finish

    trajectory = run_rollout_episode(
        agent, simulator_config, copy.deepcopy(episode), step_hook=step_hook
    )
    trace.summary = {
        "num_decisions": len(trace.decisions),
        "total_reward": float(trajectory.total_reward),
    }
    return trace


def _rollout_parallel(task: DifferentialTask) -> EpisodeTrace:
    """The same episode collected in a rollout worker process."""
    simulator_config, agent, episode, header = _rollout_setup(task)
    with RolloutWorkerPool(simulator_config, agent_spec(agent), num_workers=1) as pool:
        payload = (agent.state_dict(), None, [copy.deepcopy(episode)])
        (outcomes,) = pool.run("collect", [payload])
    outcome = outcomes[0]
    trace = EpisodeTrace(header=header)
    for step, (reward, wall_time) in enumerate(zip(outcome.rewards, outcome.wall_times)):
        trace.decisions.append(
            DecisionRecord(
                step=step,
                wall_time=float(wall_time),
                obs_fingerprint="",
                reward=float(reward),
            )
        )
    trace.summary = {
        "num_decisions": len(trace.decisions),
        "total_reward": float(outcome.total_reward),
    }
    return trace


# ---------------------------------------------------------- service variants
def _service_stream(
    task: DifferentialTask, batched: bool, num_shards: int = 1, online: bool = False
) -> EpisodeTrace:
    """Drive ``num_sessions`` concurrent clusters through request broker(s).

    Observations travel through the real wire encoding and shadow-DAG
    reconciliation; decisions flow back through the broker's decision tap.
    With ``num_shards > 1`` this models the sharded fleet's dispatch path:
    sessions are partitioned across shards by the router's
    :func:`~repro.service.router.shard_for_session` hash and each shard
    answers its own sub-batch with its own (identically parameterised) agent
    and broker.  The produced stream (session, job, node, limit) must be
    identical for ``batched=True``, ``batched=False`` and any shard count,
    because a session's decisions depend only on its own rng stream, graph
    cache and observations.

    With ``online=True`` the *entire* online-learning loop runs against the
    broker at ``learning_rate=0``: experience is collected off the decision
    tap, replayed, an Adam step applied (bit-neutral at lr 0), the result
    checkpointed and hot-swapped into the broker mid-stream.  The decision
    stream must still be identical to frozen serving — only the recorded
    ``policy_version`` may differ — which is the ``frozen_vs_online`` pair's
    guarantee: learning plumbing cannot perturb serving behaviour.
    """
    from ..service import (
        DecisionRequest,
        RequestBroker,
        SessionState,
        encode_observation,
        shard_for_session,
    )
    from ..simulator.environment import Action

    spec = task.resolve_spec()
    simulator_config = spec.build_config(seed=task.seed)
    if online:
        label = "service:online"
    elif num_shards > 1:
        label = f"service:sharded[{num_shards}]"
    else:
        label = "service:batched" if batched else "service:serial"
    header = TraceHeader(
        scenario=spec.name,
        scheduler=label,
        seed=task.seed,
        num_jobs=task.num_jobs,
        num_executors=task.num_executors,
        max_decisions=task.max_decisions,
    )
    trace = EpisodeTrace(header=header)

    # Decisions are buffered per round (keyed by session id) and flushed in
    # session order, so the recorded stream is invariant to which shard's
    # broker happened to answer first.
    round_records: Dict[str, dict] = {}

    def tap(request, result) -> None:
        action = result.action
        job = action.node.job if action is not None and action.node is not None else None
        round_records[request.session.session_id] = dict(
            wall_time=float(request.observation.wall_time),
            obs_fingerprint=observation_fingerprint(request.observation),
            job=job.name if job is not None else None,
            node=action.node.node_id if action is not None and action.node else None,
            limit=int(action.parallelism_limit) if action is not None else None,
            session=request.session.session_id,
            policy_version=int(result.policy_version),
        )

    # Every shard hosts its own agent; identical construction gives identical
    # parameters (DecimaConfig(seed=0) init is deterministic), exactly as the
    # fleet rebuilds one agent per shard process from the same spec + state.
    brokers = [
        RequestBroker(
            _build_decima(simulator_config, sparse=True, cache=True),
            batched=batched,
            greedy=False,
            decision_tap=tap,
        )
        for _ in range(num_shards)
    ]
    manager = None
    store_dir = None
    if online:
        import tempfile

        from ..core.checkpoints import CheckpointStore
        from ..learning import (
            OnlineLearningConfig,
            OnlineLearningManager,
            OnlineTrainerConfig,
        )

        store_dir = tempfile.TemporaryDirectory(prefix="online-diff-")
        # lr=0 keeps the Adam step bit-neutral; the huge guard probation
        # pins the run to exactly one mid-stream hot-swap, so the variant is
        # deterministic.  The manager chains its collector onto ``tap``.
        manager = OnlineLearningManager(
            brokers[0],
            CheckpointStore(store_dir.name),
            OnlineLearningConfig(
                episodes_per_update=1,
                segment_steps=4,
                trainer_process=False,
                guard_min_decisions=1_000_000_000,
                trainer=OnlineTrainerConfig(learning_rate=0.0),
            ),
        )
    environments, observations, sessions, shard_of = [], [], [], []
    for index in range(task.num_sessions):
        jobs = task.build_jobs(spec, stream=index + 1)
        environment = SchedulingEnvironment(spec.build_config(seed=task.seed + index))
        environments.append(environment)
        observations.append(environment.reset(jobs, seed=task.seed + index))
        session_id = f"s{index}"
        sessions.append(
            SessionState(
                session_id,
                num_executors=simulator_config.num_executors,
                seed=1_000 + task.seed * 31 + index,
            )
        )
        shard_of.append(shard_for_session(session_id, num_shards))
    # ``max_decisions`` caps *recorded decisions* (matching the header field's
    # meaning everywhere else); the round bound is only a safety valve against
    # sessions that never finish.  All variants truncate identically because
    # their per-round decision streams are identical.
    max_rounds = 60
    for round_index in range(max_rounds):
        if (
            task.max_decisions is not None
            and len(trace.decisions) >= task.max_decisions
        ):
            break
        pending = [
            (index, observation)
            for index, observation in enumerate(observations)
            if observation is not None
        ]
        if not pending:
            break
        requests = {
            index: DecisionRequest(
                session=sessions[index],
                observation=sessions[index].observation_from_snapshot(
                    encode_observation(observation)
                ),
            )
            for index, observation in pending
        }
        round_records.clear()
        results: Dict[int, object] = {}
        for shard in range(num_shards):
            shard_indices = [i for i, _ in pending if shard_of[i] == shard]
            if not shard_indices:
                continue
            answers = brokers[shard].decide([requests[i] for i in shard_indices])
            results.update(zip(shard_indices, answers))
        for index, observation in pending:
            fields = round_records[sessions[index].session_id]
            trace.decisions.append(
                DecisionRecord(step=len(trace.decisions), **fields)
            )
            encoded = requests[index].session.encode_action(results[index].action)
            if encoded["noop"]:
                action = None
            else:
                job = next(
                    job
                    for job in observation.job_dags
                    if job.job_id == encoded["job_id"]
                )
                node = next(
                    node for node in job.nodes if node.node_id == encoded["node_id"]
                )
                action = Action(
                    node=node, parallelism_limit=encoded["parallelism_limit"]
                )
            next_observation, _, done = environments[index].step(action)
            observations[index] = None if done else next_observation
        if manager is not None and round_index % 3 == 2:
            manager.maybe_update()
    if task.max_decisions is not None:
        del trace.decisions[task.max_decisions:]
    trace.summary = {"num_decisions": len(trace.decisions)}
    if manager is not None:
        trace.summary["num_updates_applied"] = manager.num_updates_applied
        trace.summary["policy_version"] = manager.policy_version
        manager.stop()
        store_dir.cleanup()
    return trace


register_variant("decima:default", lambda task: _decima_stream(task, True, True, "decima:default"))
register_variant("decima:dense_gnn", lambda task: _decima_stream(task, False, True, "decima:dense_gnn"))
register_variant("decima:scratch_features", lambda task: _decima_stream(task, True, False, "decima:scratch_features"))
register_variant("decima:reference", lambda task: _decima_stream(task, False, False, "decima:reference"))
# Kernel-backend variants: "numba" JIT-compiles the frontier gather/segment-sum
# and masked-softmax kernels (falling back to numpy silently when the optional
# dependency is absent, so this variant is always runnable); "tensor" routes
# inference through the full autograd oracle instead of the data path.
register_variant("decima:kernel_gnn", lambda task: _decima_stream(task, True, True, "decima:kernel_gnn", kernel_backend="numba"))
register_variant("decima:tensor_forward", lambda task: _decima_stream(task, True, True, "decima:tensor_forward", kernel_backend="tensor"))
register_variant("rollout:serial", _rollout_serial)
register_variant("rollout:parallel", _rollout_parallel)
register_variant("service:batched", lambda task: _service_stream(task, True))
register_variant("service:serial", lambda task: _service_stream(task, False))
register_variant("service:sharded", lambda task: _service_stream(task, True, num_shards=2))
# The full online-learning loop (collect → replay → lr=0 update → checkpoint
# → hot-swap) running against the broker mid-stream; must not perturb any
# decision relative to frozen serving.
register_variant("service:online", lambda task: _service_stream(task, True, online=True))

# The named fast/oracle pairs the repo guarantees, each with the decision
# fields that define "the same decision" for that pair (worker outcomes carry
# no node identities, so the rollout pair compares reward/wall-time streams).
IMPLEMENTATION_PAIRS: Dict[str, dict] = {
    "sparse_vs_dense_gnn": {
        "variants": ("decima:default", "decima:dense_gnn"),
        "fields": DEFAULT_COMPARE_FIELDS,
    },
    "cached_vs_scratch_features": {
        "variants": ("decima:default", "decima:scratch_features"),
        "fields": DEFAULT_COMPARE_FIELDS,
    },
    "fast_vs_reference": {
        "variants": ("decima:default", "decima:reference"),
        "fields": DEFAULT_COMPARE_FIELDS,
    },
    "kernel_vs_numpy_gnn": {
        "variants": ("decima:kernel_gnn", "decima:default"),
        "fields": DEFAULT_COMPARE_FIELDS,
    },
    "inference_kernels_vs_tensor": {
        "variants": ("decima:default", "decima:tensor_forward"),
        "fields": DEFAULT_COMPARE_FIELDS,
    },
    "serial_vs_parallel_rollout": {
        "variants": ("rollout:serial", "rollout:parallel"),
        "fields": ("wall_time", "reward"),
    },
    "batched_vs_serial_service": {
        "variants": ("service:batched", "service:serial"),
        "fields": ("session", "job", "node", "limit", "wall_time", "obs_fingerprint"),
    },
    "sharded_vs_serial_service": {
        "variants": ("service:sharded", "service:serial"),
        "fields": ("session", "job", "node", "limit", "wall_time", "obs_fingerprint"),
    },
    # ``policy_version`` is deliberately excluded: hot-swaps bump it on the
    # online side while frozen serving stays at 1 — the pair pins *decisions*.
    "frozen_vs_online": {
        "variants": ("service:batched", "service:online"),
        "fields": ("session", "job", "node", "limit", "wall_time", "obs_fingerprint"),
    },
}


@dataclass
class DifferentialReport:
    """Outcome of one differential run: two variants on one seeded task."""

    variant_a: str
    variant_b: str
    scenario: str
    seed: int
    num_decisions: Tuple[int, int]
    divergence: Optional[DivergenceReport] = None
    traces: Tuple[EpisodeTrace, EpisodeTrace] = field(default=None, repr=False)  # type: ignore[assignment]

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def describe(self) -> str:
        status = "OK" if self.ok else "DIVERGED"
        head = (
            f"[{status}] {self.variant_a} vs {self.variant_b} on "
            f"{self.scenario} / seed {self.seed} "
            f"({self.num_decisions[0]} vs {self.num_decisions[1]} decisions)"
        )
        if self.divergence is None:
            return head
        return head + "\n" + self.divergence.describe()


def run_differential(
    variant_a: Union[str, VariantFn],
    variant_b: Union[str, VariantFn],
    task: DifferentialTask,
    fields: Sequence[str] = DEFAULT_COMPARE_FIELDS,
) -> DifferentialReport:
    """Run two variants on the same seeded task and diff their streams.

    Event streams and RNG checkpoints are compared only when both variants
    recorded them (the rollout/service variants produce decision streams
    only).
    """
    name_a = variant_a if isinstance(variant_a, str) else getattr(variant_a, "__name__", "a")
    name_b = variant_b if isinstance(variant_b, str) else getattr(variant_b, "__name__", "b")
    fn_a = resolve_variant(variant_a) if isinstance(variant_a, str) else variant_a
    fn_b = resolve_variant(variant_b) if isinstance(variant_b, str) else variant_b
    trace_a = fn_a(task)
    trace_b = fn_b(task)
    divergence = first_divergence(
        trace_a,
        trace_b,
        fields=fields,
        compare_events=bool(trace_a.events) and bool(trace_b.events),
        compare_rng=bool(trace_a.rng_checkpoints) and bool(trace_b.rng_checkpoints),
    )
    spec_name = task.scenario if isinstance(task.scenario, str) else task.scenario.name
    return DifferentialReport(
        variant_a=name_a,
        variant_b=name_b,
        scenario=spec_name,
        seed=task.seed,
        num_decisions=(trace_a.num_decisions, trace_b.num_decisions),
        divergence=divergence,
        traces=(trace_a, trace_b),
    )


def run_pair(pair: str, task: DifferentialTask) -> DifferentialReport:
    """Run one of the repo's named fast/oracle pairs on ``task``."""
    if pair not in IMPLEMENTATION_PAIRS:
        known = ", ".join(IMPLEMENTATION_PAIRS)
        raise KeyError(f"unknown implementation pair {pair!r}; known pairs: {known}")
    entry = IMPLEMENTATION_PAIRS[pair]
    variant_a, variant_b = entry["variants"]
    return run_differential(variant_a, variant_b, task, fields=entry["fields"])
