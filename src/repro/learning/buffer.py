"""Experience collection from the serving path + the bounded replay buffer.

The serving broker already exposes a per-decision observer seam
(``decision_tap``); :class:`ExperienceCollector` plugs into it and records
each answered request as a picklable :class:`ExperienceStep` — the encoded
observation snapshot, the chosen action in the snapshot's own id space, the
decision source and the policy version that answered it.  Snapshots are
re-encoded from the session's *shadow* observation, so a step is
self-contained: replaying its snapshots through a fresh
:class:`~repro.service.session.SessionState` reconstructs observations whose
``(job_id, node_id)`` ids match the recorded action.

:class:`ReplayBuffer` turns the interleaved multi-session step stream into
REINFORCE-ready episodes: steps are grouped per session in arrival order and
cut into fixed-length segments (serving sessions are long-lived, so segments
stand in for episodes; the reward at each step only needs the next step's
timestamp, which a segment carries).  Both the per-session pending queues and
the finished-episode deque are bounded, so a fleet under sustained load holds
a fixed memory footprint.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..service.protocol import encode_observation

__all__ = [
    "EpisodeRecord",
    "ExperienceCollector",
    "ExperienceStep",
    "ReplayBuffer",
]


@dataclass
class ExperienceStep:
    """One served decision, recorded for background learning (picklable)."""

    session_id: str
    wall_time: float
    num_jobs_in_system: int
    snapshot: dict  # encode_observation() payload, shadow id space
    action: Optional[dict]  # {"job_id", "node_id", "limit"} or None (noop)
    source: str  # "policy" | "fallback" | "noop"
    policy_version: int


@dataclass
class EpisodeRecord:
    """A contiguous per-session segment of steps, treated as one episode."""

    session_id: str
    steps: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)


class ExperienceCollector:
    """A ``decision_tap`` that records every answered request.

    Thread-safe: the threaded server's dispatch thread appends while the
    learning manager drains.  The deque is bounded so a manager that stops
    draining cannot grow the serving process without bound (oldest steps are
    dropped first).
    """

    def __init__(self, max_steps: int = 50_000):
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        self._steps: deque = deque(maxlen=int(max_steps))
        self._lock = threading.Lock()
        self.num_recorded = 0

    def __call__(self, request, result) -> None:
        action = result.action
        encoded_action = None
        if action is not None and action.node is not None:
            encoded_action = {
                "job_id": int(action.node.job.job_id),
                "node_id": int(action.node.node_id),
                "limit": int(action.parallelism_limit),
            }
        step = ExperienceStep(
            session_id=request.session.session_id,
            wall_time=float(request.observation.wall_time),
            num_jobs_in_system=int(request.observation.num_jobs_in_system),
            snapshot=encode_observation(request.observation),
            action=encoded_action,
            source=result.source,
            policy_version=int(result.policy_version),
        )
        with self._lock:
            self._steps.append(step)
            self.num_recorded += 1

    def drain(self) -> list:
        """Return and clear everything recorded since the last drain."""
        with self._lock:
            steps = list(self._steps)
            self._steps.clear()
        return steps

    def __len__(self) -> int:
        with self._lock:
            return len(self._steps)


class ReplayBuffer:
    """Bounded episode buffer over the interleaved serving step stream."""

    def __init__(
        self,
        segment_steps: int = 8,
        max_episodes: int = 256,
        max_pending_per_session: int = 1024,
    ):
        if segment_steps < 2:
            # A one-step segment has no next-step timestamp: every reward
            # would be zero and the update content-free.
            raise ValueError("segment_steps must be >= 2")
        if max_episodes < 1 or max_pending_per_session < segment_steps:
            raise ValueError(
                "max_episodes must be >= 1 and max_pending_per_session "
                ">= segment_steps"
            )
        self.segment_steps = int(segment_steps)
        self.max_episodes = int(max_episodes)
        self.max_pending_per_session = int(max_pending_per_session)
        self._pending: dict[str, list] = {}
        self._episodes: deque = deque(maxlen=self.max_episodes)
        self.num_steps_added = 0
        self.num_episodes_cut = 0

    def add_steps(self, steps) -> int:
        """Feed drained steps; returns how many new episodes were cut."""
        cut_before = self.num_episodes_cut
        for step in steps:
            pending = self._pending.setdefault(step.session_id, [])
            pending.append(step)
            self.num_steps_added += 1
            if len(pending) > self.max_pending_per_session:
                del pending[0]
        for session_id, pending in self._pending.items():
            while len(pending) >= self.segment_steps:
                segment = pending[: self.segment_steps]
                del pending[: self.segment_steps]
                self._episodes.append(
                    EpisodeRecord(session_id=session_id, steps=segment)
                )
                self.num_episodes_cut += 1
        return self.num_episodes_cut - cut_before

    def __len__(self) -> int:
        return len(self._episodes)

    def num_pending_steps(self) -> int:
        return sum(len(pending) for pending in self._pending.values())

    def sample(self, num_episodes: int, rng: np.random.Generator) -> list:
        """Deterministic sample (fixed seed + same contents → same pick).

        Episodes are sampled without replacement, newest-inclusive, and
        returned in buffer order so the update's gradient accumulation order
        is reproducible too.
        """
        if num_episodes < 1 or not self._episodes:
            return []
        count = min(int(num_episodes), len(self._episodes))
        indices = sorted(
            int(i)
            for i in rng.choice(len(self._episodes), size=count, replace=False)
        )
        return [self._episodes[index] for index in indices]

    def stats(self) -> dict:
        return {
            "num_episodes": len(self._episodes),
            "num_pending_steps": self.num_pending_steps(),
            "num_steps_added": self.num_steps_added,
            "num_episodes_cut": self.num_episodes_cut,
            "segment_steps": self.segment_steps,
            "max_episodes": self.max_episodes,
        }
