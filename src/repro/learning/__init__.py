"""Online learning: close Decima's loop around the live serving path.

The paper's premise is a scheduler that keeps learning from the cluster it
schedules; this package adds that loop on top of the serving subsystem
without touching its decision semantics:

* :mod:`~repro.learning.buffer` — an :class:`ExperienceCollector` taps the
  broker's per-decision observer seam and a bounded :class:`ReplayBuffer`
  cuts the multi-session step stream into replayable episode segments;
* :mod:`~repro.learning.trainer` — background REINFORCE over replayed
  segments (in-process for harnesses, or a worker process via the same pipe
  machinery as parallel training), scoring recorded actions under current
  parameters with :meth:`DecimaAgent.score_action`;
* :mod:`~repro.learning.manager` — the control loop: drain experience, run
  updates, persist each result as the next
  :class:`~repro.core.checkpoints.CheckpointStore` version, hot-swap it into
  the broker/fleet under a monotonic ``policy_version``, and gate every
  rollout on the SLO counters with automatic rollback to the last good
  checkpoint.

Guarantee worth stating twice: with ``learning_rate=0`` the whole loop —
collection, replay, update, checkpoint, hot-swap — is decision-bit-identical
to frozen serving (the ``frozen_vs_online`` differential pair), so any
behaviour change is attributable to learning itself, never the plumbing.
"""

from .buffer import EpisodeRecord, ExperienceCollector, ExperienceStep, ReplayBuffer
from .manager import OnlineLearningConfig, OnlineLearningManager, RolloutGuard
from .trainer import (
    OnlineReinforceTrainer,
    OnlineTrainerConfig,
    OnlineTrainerPool,
    episode_rewards,
    reinforce_update,
    replay_episode,
)

__all__ = [
    "EpisodeRecord",
    "ExperienceCollector",
    "ExperienceStep",
    "ReplayBuffer",
    "OnlineLearningConfig",
    "OnlineLearningManager",
    "RolloutGuard",
    "OnlineReinforceTrainer",
    "OnlineTrainerConfig",
    "OnlineTrainerPool",
    "episode_rewards",
    "reinforce_update",
    "replay_episode",
]
