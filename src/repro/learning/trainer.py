"""Background REINFORCE over replayed serving experience.

The update rule is the paper's policy gradient (§5.3, Algorithm 1) applied to
experience the serving path already produced instead of freshly collected
rollouts.  Rewards are recomputed from consecutive experience snapshots with
the simulator's own shaping — ``r_k = -(t_{k+1} - t_k) · J_k · scale``, the
time-integrated number of jobs in the system whose sum telescopes to the
(scaled) total job completion time — so the trainer needs nothing from the
client clusters beyond what every ``decide`` request already carries.

Replay runs each recorded segment's snapshots through a fresh
:class:`~repro.service.session.SessionState` (the same reconciliation code
the servers run) and scores the recorded action under the *current*
parameters via :meth:`DecimaAgent.score_action`, which keeps the log-prob on
the autograd graph.  Only ``source == "policy"`` steps contribute gradient
terms — fallback and noop answers still contribute their time deltas to the
returns, but there is no policy choice to differentiate through.

Two trainer fronts share the same ``update(state, episodes)`` contract:

* :class:`OnlineReinforceTrainer` — in-process, used by the differential
  harness and tests (no process overhead, fully deterministic);
* :class:`OnlineTrainerPool` — a one-worker
  :class:`~repro.core.parallel.PipeWorkerPool` running the identical update
  in a background *process*, so replay forwards and backwards never steal
  cycles from the serving path (the paper's agent/trainer split).

Both keep the Adam optimizer alive across updates, so its moment estimates
accumulate exactly as in offline training.  With ``learning_rate=0`` the
Adam step is bit-neutral (``param - 0 · m̂/(√v̂+ε)`` preserves every bit),
which is what the ``frozen_vs_online`` differential pair pins.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.agent import DecimaAgent
from ..core.checkpoints import AgentSpec, build_agent
from ..core.nn import Adam
from ..core.parallel import PipeWorkerPool
from ..service.session import SessionState
from .buffer import EpisodeRecord

__all__ = [
    "OnlineReinforceTrainer",
    "OnlineTrainerConfig",
    "OnlineTrainerPool",
    "episode_rewards",
    "reinforce_update",
    "replay_episode",
]


@dataclass
class OnlineTrainerConfig:
    """Hyper-parameters of the background update (picklable)."""

    learning_rate: float = 1e-3
    entropy_weight: float = 0.0
    # Matches SimulatorConfig.reward_scale so online returns live on the same
    # scale as offline training's.
    reward_scale: float = 1e-3


def episode_rewards(steps, reward_scale: float) -> np.ndarray:
    """Per-step rewards recomputed from consecutive snapshots.

    The last step has no successor timestamp inside the segment, so its
    reward is zero — segments are long enough (``ReplayBuffer.segment_steps``)
    that the truncation bias is small.
    """
    rewards = np.zeros(len(steps))
    for index in range(len(steps) - 1):
        delta = float(steps[index + 1].wall_time) - float(steps[index].wall_time)
        rewards[index] = -delta * float(steps[index].num_jobs_in_system) * reward_scale
    return rewards


def replay_episode(agent: DecimaAgent, episode: EpisodeRecord) -> list:
    """Score each recorded policy action under the current parameters.

    Returns one entry per step: ``(log_prob, entropy)`` autograd tensors for
    scoreable policy steps, ``None`` for noop/fallback steps (and for the
    rare step whose recorded action is no longer a valid choice after
    replay — e.g. a snapshot raced a job completion).
    """
    first = episode.steps[0]
    session = SessionState(
        session_id=f"replay-{episode.session_id}",
        num_executors=int(first.snapshot.get("total_executors", agent.total_executors)),
    )
    scored = []
    for step in episode.steps:
        observation = session.observation_from_snapshot(step.snapshot)
        if step.action is None or step.source != "policy":
            scored.append(None)
            continue
        try:
            node = session.resolve_node(step.action["job_id"], step.action["node_id"])
            scored.append(
                agent.score_action(
                    observation,
                    node,
                    step.action["limit"],
                    graph_cache=session.graph_cache,
                )
            )
        except (KeyError, ValueError):
            scored.append(None)
    return scored


def reinforce_update(
    agent: DecimaAgent,
    optimizer: Adam,
    episodes: list,
    config: OnlineTrainerConfig,
) -> dict:
    """One REINFORCE step over replayed serving episodes; returns stats.

    Mirrors the offline trainer's update: per-episode losses backward into
    summed gradients, the sum is divided by the episode count, one Adam step,
    gradients cleared.  The baseline is each episode's mean return (the
    offline time-aligned baseline needs same-arrival-sequence episode groups,
    which live serving traffic does not provide).
    """
    agent.zero_grad()
    num_terms = 0
    total_return = 0.0
    for episode in episodes:
        rewards = episode_rewards(episode.steps, config.reward_scale)
        returns = np.cumsum(rewards[::-1])[::-1]
        baseline = float(returns.mean()) if returns.size else 0.0
        advantages = returns - baseline
        loss = None
        for pair, advantage in zip(replay_episode(agent, episode), advantages):
            if pair is None:
                continue
            log_prob, entropy = pair
            term = log_prob * float(-advantage)
            term = term - entropy * float(config.entropy_weight)
            loss = term if loss is None else loss + term
            num_terms += 1
        if loss is not None:
            loss.backward()
        total_return += float(returns[0]) if returns.size else 0.0
    num_episodes = max(len(episodes), 1)
    optimizer.apply_gradients(
        [
            None if parameter.grad is None else parameter.grad / num_episodes
            for parameter in agent.parameters()
        ]
    )
    agent.zero_grad()
    agent.reset_graph_cache()
    return {
        "num_episodes": len(episodes),
        "num_policy_terms": num_terms,
        "mean_return": total_return / num_episodes,
        "learning_rate": config.learning_rate,
    }


class OnlineReinforceTrainer:
    """In-process trainer: one shadow agent + persistent Adam moments."""

    def __init__(self, spec: AgentSpec, config: Optional[OnlineTrainerConfig] = None):
        self.config = config if config is not None else OnlineTrainerConfig()
        self.agent = build_agent(spec)
        self.optimizer = Adam(
            self.agent.parameters(), learning_rate=self.config.learning_rate
        )

    def update(self, state: dict, episodes: list) -> tuple[dict, dict]:
        """Refresh weights from ``state``, run one update, return new weights."""
        self.agent.load_state_dict(state)
        stats = reinforce_update(self.agent, self.optimizer, episodes, self.config)
        return self.agent.state_dict(), stats

    def close(self) -> None:  # symmetric with OnlineTrainerPool
        pass


def _online_trainer_main(conn, spec: AgentSpec, config: OnlineTrainerConfig) -> None:
    """Worker loop of the trainer process (PipeWorkerPool protocol).

    * ``update``: payload ``(state_dict, [EpisodeRecord])`` →
      ``(new_state_dict, stats)``.
    * ``close``: exit.
    """
    trainer = OnlineReinforceTrainer(spec, config)
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        command, payload = message
        if command == "close":
            return
        try:
            if command == "update":
                state, episodes = payload
                reply = trainer.update(state, episodes)
            else:
                raise ValueError(f"unknown trainer command {command!r}")
            conn.send(("ok", reply))
        except Exception:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                return


class OnlineTrainerPool(PipeWorkerPool):
    """The background trainer process (same update, off the serving path)."""

    worker_description = "online trainer"

    def __init__(
        self,
        spec: AgentSpec,
        config: Optional[OnlineTrainerConfig] = None,
        start_method: Optional[str] = None,
    ):
        config = config if config is not None else OnlineTrainerConfig()
        super().__init__(
            num_workers=1,
            target=_online_trainer_main,
            worker_args=lambda index: (spec, config),
            start_method=start_method,
        )

    def update(self, state: dict, episodes: list) -> tuple[dict, dict]:
        """Ship weights + episodes to the trainer process; get both back."""
        (reply,) = self.run("update", [(state, episodes)])
        return reply
