"""The online-learning control loop: buffer → trainer → store → hot-swap.

:class:`OnlineLearningManager` closes Decima's loop around a live serving
target.  One ``maybe_update()`` tick:

1. **pump** — drain newly recorded experience out of the target (the broker's
   ``decision_tap`` collector in-process, or every fleet shard's collector
   over the shard command pipes) into the bounded :class:`ReplayBuffer`;
2. **guard** — if a freshly installed version is still on probation, check
   the SLO counters: not enough decisions yet → wait; circuit-breaker opens
   regressed → **roll back** to the last good checkpoint (republished under a
   *new* monotonic policy version, so per-session version sequences never go
   backwards); clean record → promote it to last-good;
3. **update** — when enough episodes are buffered, run one background
   REINFORCE step (:mod:`.trainer`), persist the result as the next version
   in the :class:`~repro.core.checkpoints.CheckpointStore`, and hot-swap it
   into the target (brokers apply the swap atomically between decision
   rounds, so no session is ever dropped).

The manager never touches the serving agent directly: it owns a shadow agent
for checkpointing, ships plain ``state_dict`` payloads, and the serving side
applies them at its own safe point.  ``start()`` runs the tick on a
background thread; tests and the differential harness call
``maybe_update()`` inline for determinism.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.checkpoints import CheckpointStore, agent_spec, build_agent
from ..obs import get_logger, log_event
from ..service.batcher import RequestBroker
from .buffer import ExperienceCollector, ReplayBuffer
from .trainer import OnlineReinforceTrainer, OnlineTrainerConfig, OnlineTrainerPool

__all__ = ["OnlineLearningConfig", "OnlineLearningManager", "RolloutGuard"]

_logger = get_logger("learning.manager")


class RolloutGuard:
    """SLO gate for freshly installed policy versions.

    Armed with a counter snapshot at install time; the verdict compares the
    current counters against it.  Decision-counted (like the breaker itself)
    so tests are deterministic: ``min_decisions`` served on the new version
    with at most ``max_new_breaker_opens`` fresh breaker opens is a pass.
    """

    def __init__(self, min_decisions: int = 20, max_new_breaker_opens: int = 0):
        if min_decisions < 1:
            raise ValueError("min_decisions must be >= 1")
        if max_new_breaker_opens < 0:
            raise ValueError("max_new_breaker_opens must be >= 0")
        self.min_decisions = int(min_decisions)
        self.max_new_breaker_opens = int(max_new_breaker_opens)
        self._armed: Optional[dict] = None

    @property
    def armed(self) -> bool:
        return self._armed is not None

    def arm(self, snapshot: dict) -> None:
        self._armed = dict(snapshot)

    def disarm(self) -> None:
        self._armed = None

    def verdict(self, snapshot: dict) -> str:
        """``"pending"`` | ``"pass"`` | ``"fail"`` for the armed version."""
        if self._armed is None:
            return "pass"
        decided = snapshot["num_decisions"] - self._armed["num_decisions"]
        if decided < self.min_decisions:
            return "pending"
        new_opens = snapshot["num_breaker_opens"] - self._armed["num_breaker_opens"]
        if new_opens > self.max_new_breaker_opens:
            return "fail"
        return "pass"


@dataclass
class OnlineLearningConfig:
    """Knobs of the manager's control loop."""

    episodes_per_update: int = 4
    segment_steps: int = 8
    max_episodes: int = 256
    seed: int = 0
    # Guard: decisions a new version must serve cleanly before promotion.
    guard_min_decisions: int = 20
    guard_max_new_breaker_opens: int = 0
    # Run the REINFORCE update in a separate process (the serving deployment
    # default) or inline (deterministic harnesses/tests).
    trainer_process: bool = True
    interval_seconds: float = 2.0
    trainer: OnlineTrainerConfig = field(default_factory=OnlineTrainerConfig)


class OnlineLearningManager:
    """Drive background learning + checkpoint rollout for one serving target.

    ``target`` is either a fleet (anything with ``drain_experience`` /
    ``install_policy`` / ``shard_stats``, i.e.
    :class:`~repro.service.fleet.ServingFleet`) or an in-process broker
    owner: a :class:`~repro.service.server.ServerCore` subclass or a bare
    :class:`~repro.service.batcher.RequestBroker` (the differential
    harness).  In-process targets get an experience collector chained onto
    their ``decision_tap`` (preserving any tap already installed, e.g. the
    verification recorder's).
    """

    def __init__(
        self,
        target,
        store: CheckpointStore,
        config: Optional[OnlineLearningConfig] = None,
    ):
        self.target = target
        self.store = store
        self.config = config if config is not None else OnlineLearningConfig()
        self._is_fleet = hasattr(target, "drain_experience")
        self._collector: Optional[ExperienceCollector] = None
        if self._is_fleet:
            spec, state = target._spec, target._state
            self._broker: Optional[RequestBroker] = None
            self._serving_version = 1  # shards construct their brokers at 1
        else:
            broker = target if isinstance(target, RequestBroker) else target.broker
            self._broker = broker
            spec, state = agent_spec(broker.agent), broker.agent.state_dict()
            self._serving_version = broker.policy_version
            self._collector = ExperienceCollector()
            existing = broker.decision_tap
            if existing is None:
                broker.decision_tap = self._collector
            else:
                def chained(request, result, _tap=existing, _collector=self._collector):
                    _tap(request, result)
                    _collector(request, result)

                broker.decision_tap = chained
        self._spec = spec
        # Shadow agent: holds whatever weights the manager last published;
        # used for checkpoint saves (the store fingerprints real agents).
        self._shadow = build_agent(spec, state)
        self._current_state = self._shadow.state_dict()
        # The serving weights are the baseline: persist them so there is
        # always a checkpoint to roll back to.
        info = self.store.save(self._shadow)
        self.current_checkpoint_version = info.version
        self.previous_checkpoint_version: Optional[int] = None
        self._last_good_state = self._current_state
        self._last_good_checkpoint = info.version
        self.buffer = ReplayBuffer(
            segment_steps=self.config.segment_steps,
            max_episodes=self.config.max_episodes,
        )
        self.guard = RolloutGuard(
            min_decisions=self.config.guard_min_decisions,
            max_new_breaker_opens=self.config.guard_max_new_breaker_opens,
        )
        if self.config.trainer_process:
            self.trainer = OnlineTrainerPool(spec, self.config.trainer)
        else:
            self.trainer = OnlineReinforceTrainer(spec, self.config.trainer)
        self._rng = np.random.default_rng(self.config.seed)
        self.num_updates_applied = 0
        self.num_rollbacks = 0
        self.last_update_stats: Optional[dict] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._metrics_registered = False
        self._register_learning_metrics()
        self._publish_learning_info()

    # ------------------------------------------------------------ target I/O
    def _drain(self) -> list:
        if self._is_fleet:
            return self.target.drain_experience()
        assert self._collector is not None
        return self._collector.drain()

    def _install(self, state: dict, version: int) -> None:
        if self._is_fleet:
            self.target.install_policy(state, version)
        elif self._broker is self.target:
            self._broker.install(state, version)
        else:
            self.target.install_policy(state, version)
        self._serving_version = version

    def _slo_snapshot(self) -> dict:
        """Aggregate decision/breaker counters across the whole target."""
        totals = {"num_decisions": 0, "num_slo_breaches": 0, "num_breaker_opens": 0}
        if self._is_fleet:
            for entry in self.target.shard_stats():
                if not entry:
                    continue
                broker = entry.get("broker") or {}
                totals["num_decisions"] += int(broker.get("num_decisions", 0))
                totals["num_slo_breaches"] += int(broker.get("num_slo_breaches", 0))
                breaker = broker.get("breaker") or {}
                totals["num_breaker_opens"] += int(breaker.get("num_opens", 0))
            return totals
        assert self._broker is not None
        totals["num_decisions"] = self._broker.num_decisions
        totals["num_slo_breaches"] = self._broker.num_slo_breaches
        if self._broker.breaker is not None:
            totals["num_breaker_opens"] = self._broker.breaker.num_opens
        return totals

    def _publish_learning_info(self) -> None:
        router = getattr(self.target, "router", None)
        if router is not None:
            router.learning_info = self.learning_info()
        # A fleet's router only exists after start(); attach the learning
        # collector as soon as there is a registry to attach it to.
        self._register_learning_metrics()

    # --------------------------------------------------------- observability
    def _metrics_registry(self):
        """The registry nearest this target: the server's own for in-process
        targets, the router's for a fleet (shard registries live in the shard
        processes and are scraped over the control plane instead)."""
        if self._is_fleet:
            return getattr(getattr(self.target, "router", None), "metrics", None)
        return getattr(self.target, "metrics", None)

    def _flight(self):
        if self._is_fleet:
            return getattr(getattr(self.target, "router", None), "flight", None)
        return getattr(self.target, "flight", None)

    def _register_learning_metrics(self) -> None:
        if self._metrics_registered:
            return
        registry = self._metrics_registry()
        if registry is None:
            return  # bare broker target, or fleet whose router is not up yet
        registry.register_collector(self._collect_learning_metrics)
        self._metrics_registered = True

    def _collect_learning_metrics(self) -> dict:
        def family(kind: str, help_text: str, value) -> dict:
            return {
                "type": kind,
                "help": help_text,
                "samples": [{"labels": {}, "value": float(value)}],
            }

        buffer = self.buffer.stats()
        return {
            "learning_updates_total": family(
                "counter", "Background REINFORCE updates applied.",
                self.num_updates_applied,
            ),
            "learning_rollbacks_total": family(
                "counter", "Guard-triggered policy rollbacks.", self.num_rollbacks
            ),
            "learning_guard_armed": family(
                "gauge", "1 while a fresh version is on probation.",
                1.0 if self.guard.armed else 0.0,
            ),
            "learning_checkpoint_version": family(
                "gauge", "Checkpoint version currently published.",
                self.current_checkpoint_version,
            ),
            "learning_buffer_episodes": family(
                "gauge", "Complete episodes in the replay buffer.",
                buffer["num_episodes"],
            ),
            "learning_buffer_pending_steps": family(
                "gauge", "Steps awaiting episode cut in the replay buffer.",
                buffer["num_pending_steps"],
            ),
            "learning_buffer_steps_added_total": family(
                "counter", "Experience steps pumped into the replay buffer.",
                buffer["num_steps_added"],
            ),
        }

    # ------------------------------------------------------------- the loop
    def pump(self) -> int:
        """Drain target experience into the buffer; returns episodes cut."""
        return self.buffer.add_steps(self._drain())

    def maybe_update(self) -> dict:
        """One control-loop tick; returns what happened (for observability)."""
        episodes_cut = self.pump()
        status: dict = {
            "episodes_cut": episodes_cut,
            "buffer_episodes": len(self.buffer),
            "policy_version": self._serving_version,
            "action": "idle",
        }
        if self.guard.armed:
            verdict = self.guard.verdict(self._slo_snapshot())
            if verdict == "pending":
                status["action"] = "guard-pending"
                return status
            if verdict == "fail":
                log_event(
                    _logger,
                    "probation_verdict",
                    verdict="fail",
                    policy_version=self._serving_version,
                )
                self.rollback()
                status["action"] = "rollback"
                status["policy_version"] = self._serving_version
                return status
            # Clean probation: the running version becomes the rollback
            # anchor for the next one.
            log_event(
                _logger,
                "probation_verdict",
                verdict="pass",
                policy_version=self._serving_version,
            )
            self.guard.disarm()
            self._last_good_state = self._current_state
            self._last_good_checkpoint = self.current_checkpoint_version
        if len(self.buffer) < self.config.episodes_per_update:
            return status
        episodes = self.buffer.sample(self.config.episodes_per_update, self._rng)
        new_state, stats = self.trainer.update(self._current_state, episodes)
        self.last_update_stats = stats
        self._shadow.load_state_dict(new_state)
        info = self.store.save(self._shadow)
        self.previous_checkpoint_version = self.current_checkpoint_version
        self.current_checkpoint_version = info.version
        self._current_state = new_state
        snapshot = self._slo_snapshot()
        self._install(new_state, self._serving_version + 1)
        self.guard.arm(snapshot)
        self.num_updates_applied += 1
        log_event(
            _logger,
            "checkpoint_installed",
            policy_version=self._serving_version,
            checkpoint_version=info.version,
        )
        flight = self._flight()
        if flight is not None:
            flight.record(
                "checkpoint_installed",
                policy_version=self._serving_version,
                checkpoint_version=info.version,
            )
        status["action"] = "update"
        status["policy_version"] = self._serving_version
        status["checkpoint_version"] = info.version
        status["update_stats"] = stats
        self._publish_learning_info()
        return status

    def rollback(self) -> int:
        """Republish the last good weights under a fresh policy version."""
        self.guard.disarm()
        rolled_back_from = self._serving_version
        self._current_state = self._last_good_state
        self.previous_checkpoint_version = self.current_checkpoint_version
        self.current_checkpoint_version = self._last_good_checkpoint
        self._install(self._last_good_state, self._serving_version + 1)
        self.num_rollbacks += 1
        log_event(
            _logger,
            "policy_rollback",
            level=logging.WARNING,
            from_version=rolled_back_from,
            to_version=self._serving_version,
            checkpoint_version=self._last_good_checkpoint,
        )
        flight = self._flight()
        if flight is not None:
            flight.record(
                "policy_rollback",
                from_version=rolled_back_from,
                to_version=self._serving_version,
                checkpoint_version=self._last_good_checkpoint,
            )
            flight.dump("slo_guard_rollback")
        self._publish_learning_info()
        return self._serving_version

    # ------------------------------------------------------------ lifecycle
    def start(self, interval_seconds: Optional[float] = None) -> None:
        """Run :meth:`maybe_update` on a background thread until :meth:`stop`."""
        if self._thread is not None:
            raise RuntimeError("manager already started")
        interval = (
            self.config.interval_seconds
            if interval_seconds is None
            else float(interval_seconds)
        )
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(timeout=interval):
                try:
                    self.maybe_update()
                except Exception:  # noqa: BLE001 - learning must not kill serving
                    continue

        self._thread = threading.Thread(
            target=loop, name="online-learning-manager", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.trainer.close()

    def __enter__(self) -> "OnlineLearningManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------- reporting
    @property
    def policy_version(self) -> int:
        return self._serving_version

    def learning_info(self) -> dict:
        """Control-plane payload: versions, rollbacks, buffer occupancy."""
        return {
            "policy_version": self._serving_version,
            "current_checkpoint_version": self.current_checkpoint_version,
            "previous_checkpoint_version": self.previous_checkpoint_version,
            "last_good_checkpoint_version": self._last_good_checkpoint,
            "num_updates_applied": self.num_updates_applied,
            "num_rollbacks": self.num_rollbacks,
            "guard_armed": self.guard.armed,
            "buffer": self.buffer.stats(),
        }
