"""Neural-network building blocks used by Decima's graph and policy networks.

The paper uses two-hidden-layer fully connected networks (32 and 16 hidden
units, leaky-ReLU activations) for every transformation function (``f``, ``g``,
``q`` and ``w``), trained with the Adam optimizer.  This module provides those
pieces on top of :mod:`repro.autograd`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..autograd import Tensor

__all__ = ["Parameter", "Module", "Dense", "MLP", "Adam", "glorot_init"]


def glorot_init(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation used for all dense layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Parameter(Tensor):
    """A tensor flagged as trainable."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Minimal container with recursive parameter discovery."""

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        seen: set[int] = set()
        self._collect(params, seen)
        return params

    def _collect(self, params: list[Parameter], seen: set[int]) -> None:
        for value in self.__dict__.values():
            self._collect_value(value, params, seen)

    @staticmethod
    def _collect_value(value, params: list[Parameter], seen: set[int]) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                params.append(value)
        elif isinstance(value, Module):
            value._collect(params, seen)
        elif isinstance(value, (list, tuple)):
            for item in value:
                Module._collect_value(item, params, seen)
        elif isinstance(value, dict):
            for item in value.values():
                Module._collect_value(item, params, seen)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters (the paper reports 12,736)."""
        return sum(p.size for p in self.parameters())

    # ----------------------------------------------------------- state dict
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameter index to array, for checkpointing."""
        return {f"param_{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state dict has {len(state)} entries, model has {len(params)} parameters"
            )
        for i, param in enumerate(params):
            array = np.asarray(state[f"param_{i}"], dtype=np.float64)
            if array.shape != param.shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: {array.shape} vs {param.shape}"
                )
            param.data = array.copy()


class Dense(Module):
    """A single fully connected layer ``x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot_init(rng, in_features, out_features))
        self.bias = Parameter(np.zeros(out_features))

    def __call__(self, inputs: Tensor) -> Tensor:
        return inputs @ self.weight + self.bias


class MLP(Module):
    """Multi-layer perceptron with leaky-ReLU hidden activations.

    ``hidden_sizes`` defaults to the paper's (32, 16).  The output layer is
    linear (no activation) unless ``output_activation`` is set.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        hidden_sizes: Sequence[int] = (32, 16),
        output_activation: str | None = None,
        negative_slope: float = 0.2,
    ):
        self.negative_slope = negative_slope
        self.output_activation = output_activation
        sizes = [in_features, *hidden_sizes, out_features]
        self.layers = [Dense(sizes[i], sizes[i + 1], rng) for i in range(len(sizes) - 1)]

    def __call__(self, inputs: Tensor) -> Tensor:
        out = inputs
        for layer in self.layers[:-1]:
            out = layer(out).leaky_relu(self.negative_slope)
        out = self.layers[-1](out)
        if self.output_activation == "leaky_relu":
            out = out.leaky_relu(self.negative_slope)
        elif self.output_activation == "tanh":
            out = out.tanh()
        elif self.output_activation == "sigmoid":
            out = out.sigmoid()
        elif self.output_activation is not None:
            raise ValueError(f"unknown output activation {self.output_activation!r}")
        return out


class Adam:
    """Adam optimizer (Kingma & Ba), the optimizer used in the paper."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        self.parameters = list(parameters)
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one update using the gradients accumulated in ``param.grad``."""
        self.step_count += 1
        bias1 = 1.0 - self.beta1 ** self.step_count
        bias2 = 1.0 - self.beta2 ** self.step_count
        for i, param in enumerate(self.parameters):
            grad = param.grad
            if grad is None:
                continue
            m = self._first_moment[i]
            v = self._second_moment[i]
            m[:] = self.beta1 * m + (1.0 - self.beta1) * grad
            v[:] = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def apply_gradients(self, gradients: Sequence[np.ndarray]) -> None:
        """Apply externally computed gradients (e.g. averaged across rollouts)."""
        if len(gradients) != len(self.parameters):
            raise ValueError("gradient list length does not match parameter count")
        for param, grad in zip(self.parameters, gradients):
            param.grad = None if grad is None else np.asarray(grad, dtype=np.float64)
        self.step()
