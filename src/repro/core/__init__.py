"""Decima's core contribution: graph neural network, policy network and RL training."""

from .agent import DecimaAgent, DecimaConfig, StepInfo
from .checkpoints import (
    AgentSpec,
    agent_spec,
    build_agent,
    load_agent,
    load_agent_weights,
    load_latest,
    parameter_fingerprint,
    save_agent,
)
from .features import (
    FeatureConfig,
    FrontierLevel,
    GraphBatch,
    GraphCache,
    GraphFeatures,
    GraphStructure,
    MergedStructureCache,
    build_graph_features,
    compute_node_heights,
    merge_structures,
)
from .gnn import GNNConfig, GraphEmbeddings, GraphNeuralNetwork
from .nn import MLP, Adam, Dense, Module, Parameter
from .parallel import (
    EpisodeOutcome,
    EpisodeSpec,
    IterationPlan,
    ParallelRolloutBackend,
    RolloutBackend,
    RolloutWorkerPool,
    SerialRolloutBackend,
)
from .policy import PolicyConfig, PolicyNetwork
from .reinforce import (
    IterationStats,
    ReinforceTrainer,
    TrainingConfig,
    TrainingHistory,
    evaluate_agent,
    time_aligned_baselines,
)
from .rollout import Trajectory, Transition, collect_rollout
from .supervised import (
    CriticalPathDataset,
    CriticalPathRegressor,
    train_critical_path_regressor,
)

__all__ = [
    "DecimaAgent",
    "DecimaConfig",
    "StepInfo",
    "AgentSpec",
    "agent_spec",
    "build_agent",
    "load_agent",
    "load_agent_weights",
    "load_latest",
    "save_agent",
    "EpisodeOutcome",
    "EpisodeSpec",
    "IterationPlan",
    "ParallelRolloutBackend",
    "RolloutBackend",
    "RolloutWorkerPool",
    "SerialRolloutBackend",
    "parameter_fingerprint",
    "FeatureConfig",
    "FrontierLevel",
    "GraphBatch",
    "GraphCache",
    "GraphFeatures",
    "GraphStructure",
    "MergedStructureCache",
    "build_graph_features",
    "compute_node_heights",
    "merge_structures",
    "GNNConfig",
    "GraphEmbeddings",
    "GraphNeuralNetwork",
    "MLP",
    "Adam",
    "Dense",
    "Module",
    "Parameter",
    "PolicyConfig",
    "PolicyNetwork",
    "IterationStats",
    "ReinforceTrainer",
    "TrainingConfig",
    "TrainingHistory",
    "evaluate_agent",
    "time_aligned_baselines",
    "Trajectory",
    "Transition",
    "collect_rollout",
    "CriticalPathDataset",
    "CriticalPathRegressor",
    "train_critical_path_regressor",
]
