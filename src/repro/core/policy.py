"""Decima's policy network (§5.2, Fig. 6).

Given the embeddings produced by the graph neural network, the policy network
computes:

* a score ``q(e_v, y_i, z)`` per schedulable stage, fed through a masked
  softmax (Eq. 2) to pick the stage to run next;
* a score ``w(y_i, z, l)`` per parallelism limit ``l`` for the chosen stage's
  job — the limit is an *input* to the score function, so a single function is
  reused for all limits (this is the encoding Fig. 15a shows trains fastest);
* optionally, a score ``c(y_i, z, cpu, memory)`` per executor class for the
  multi-resource environment of §7.3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, concat
from ..simulator.executor import ExecutorClass
from .features import GraphFeatures
from .gnn import GraphEmbeddings
from .kernels import Workspace, mlp_forward
from .nn import MLP, Module

__all__ = ["PolicyConfig", "PolicyNetwork"]


@dataclass
class PolicyConfig:
    """Sizes and switches of the policy network."""

    num_features: int = 5
    embedding_dim: int = 8
    hidden_sizes: tuple[int, ...] = (32, 16)
    # Ablation: bypass the graph embeddings and score nodes from raw features only
    # ("Decima w/o graph embedding" in Fig. 14).
    use_graph_embedding: bool = True
    # Multi-resource executor-class head (§7.3).
    use_executor_class_head: bool = False
    # Width of the parallelism-limit input: 1 = the limit value is a scalar
    # input to a single reused score function (the paper's encoding); a larger
    # value means the limit is one-hot encoded, which effectively gives every
    # limit its own parameters (the slower-training variant of Fig. 15a).
    limit_input_dim: int = 1


class PolicyNetwork(Module):
    """Score functions q(.), w(.) and (optionally) the executor-class head."""

    def __init__(self, config: PolicyConfig, rng: np.random.Generator):
        self.config = config
        dim = config.embedding_dim
        hidden = config.hidden_sizes
        node_inputs = config.num_features + 3 * dim
        limit_inputs = 2 * dim + config.limit_input_dim
        class_inputs = 2 * dim + 2
        self.node_score = MLP(node_inputs, 1, rng, hidden_sizes=hidden)
        self.limit_score = MLP(limit_inputs, 1, rng, hidden_sizes=hidden)
        self.class_score = (
            MLP(class_inputs, 1, rng, hidden_sizes=hidden)
            if config.use_executor_class_head
            else None
        )

    # ------------------------------------------------------------------ nodes
    def node_logits(self, graph: GraphFeatures, embeddings: GraphEmbeddings) -> Tensor:
        """One logit per node row: q(x_v, e_v, y_{j(v)}, z)."""
        num_nodes = graph.num_nodes
        features = Tensor(graph.node_features)
        if self.config.use_graph_embedding:
            node_emb = embeddings.node_embeddings
            job_emb = embeddings.job_embeddings[graph.job_ids]
            # Each node reads the global embedding of *its* graph — row 0 for a
            # plain observation, the owning session's row in a merged batch.
            global_emb = embeddings.global_embedding[graph.job_graph_ids[graph.job_ids]]
        else:
            zeros = Tensor(np.zeros((num_nodes, self.config.embedding_dim)))
            node_emb = job_emb = global_emb = zeros
        inputs = concat([features, node_emb, job_emb, global_emb], axis=1)
        return self.node_score(inputs).reshape(num_nodes)

    def node_logits_data(
        self,
        graph: GraphFeatures,
        node_emb: np.ndarray,
        job_emb: np.ndarray,
        global_emb: np.ndarray,
        workspace: Workspace,
        rows: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Arena-buffered :meth:`node_logits` on plain arrays (inference only).

        With ``rows`` the score MLP runs only over those node rows (the
        schedulable set — Eq. 2 masks every other row to -1e9 anyway, so
        their scores are never read); the other entries of the returned
        ``(N,)`` buffer are zero-filled, which behaves exactly like the full
        pass under the masked softmax (both underflow to an exact 0.0
        probability).  The returned buffer is workspace-owned and valid until
        the next call.
        """
        config = self.config
        features = graph.node_features
        num_features = features.shape[1]
        dim = config.embedding_dim
        logits = workspace.get("node_logits", (graph.num_nodes,))
        if rows is None:
            num_rows = graph.num_nodes
            inputs = workspace.get("score_in", (num_rows, num_features + 3 * dim))
            inputs[:, :num_features] = features
            job_rows = graph.job_ids
            row_nodes = node_emb
        else:
            num_rows = rows.size
            inputs = workspace.get("score_in", (num_rows, num_features + 3 * dim))
            inputs[:, :num_features] = features[rows]
            job_rows = graph.job_ids[rows]
            row_nodes = node_emb[rows]
            logits[:] = 0.0
        if config.use_graph_embedding:
            inputs[:, num_features: num_features + dim] = row_nodes
            inputs[:, num_features + dim: num_features + 2 * dim] = job_emb[job_rows]
            inputs[:, num_features + 2 * dim:] = global_emb[
                graph.job_graph_ids[job_rows]
            ]
        else:
            inputs[:, num_features:] = 0.0
        scores = mlp_forward(self.node_score, inputs, workspace, "node_score")
        if rows is None:
            logits[:] = scores[:, 0]
        else:
            logits[rows] = scores[:, 0]
        return logits

    # ----------------------------------------------------------------- limits
    def limit_logits(
        self,
        graph: GraphFeatures,
        embeddings: GraphEmbeddings,
        job_index: int,
        limit_inputs: np.ndarray,
    ) -> Tensor:
        """One logit per candidate parallelism limit for job ``job_index``.

        ``limit_inputs`` has one row per candidate limit: a single column with
        the limit normalised by the cluster size (the paper's encoding), or a
        one-hot row when ``limit_input_dim > 1`` (the ablation of Fig. 15a).
        """
        limit_inputs = np.atleast_2d(np.asarray(limit_inputs, dtype=np.float64))
        rows = np.full(limit_inputs.shape[0], job_index, dtype=np.intp)
        # limit_logits_rows validates the input width.
        return self.limit_logits_rows(graph, embeddings, rows, limit_inputs)

    def limit_logits_rows(
        self,
        graph: GraphFeatures,
        embeddings: GraphEmbeddings,
        job_rows: np.ndarray,
        limit_inputs: np.ndarray,
    ) -> Tensor:
        """Score arbitrary (job, limit) pairs in one pass through ``w``.

        Row ``i`` scores ``limit_inputs[i]`` for job row ``job_rows[i]`` — the
        cross-session request broker stacks every pending session's candidate
        limits into a single call, then splits the logits back per session.
        Row results are independent, so this is numerically the same as one
        :meth:`limit_logits` call per job.
        """
        limit_inputs = np.atleast_2d(np.asarray(limit_inputs, dtype=np.float64))
        job_rows = np.asarray(job_rows, dtype=np.intp)
        num_rows = len(job_rows)
        if limit_inputs.shape[0] != num_rows:
            raise ValueError(
                f"{num_rows} job rows but {limit_inputs.shape[0]} limit-input rows"
            )
        if limit_inputs.shape[1] != self.config.limit_input_dim:
            raise ValueError(
                f"limit inputs have width {limit_inputs.shape[1]}, "
                f"policy expects {self.config.limit_input_dim}"
            )
        if self.config.use_graph_embedding:
            job_emb = embeddings.job_embeddings[job_rows]
            global_emb = embeddings.global_embedding[graph.job_graph_ids[job_rows]]
        else:
            zeros = Tensor(np.zeros((num_rows, self.config.embedding_dim)))
            job_emb = global_emb = zeros
        inputs = concat([job_emb, global_emb, Tensor(limit_inputs)], axis=1)
        return self.limit_score(inputs).reshape(num_rows)

    # ---------------------------------------------------------------- classes
    def class_logits(
        self,
        graph: GraphFeatures,
        embeddings: GraphEmbeddings,
        job_index: int,
        executor_classes: list[ExecutorClass],
    ) -> Tensor:
        """One logit per executor class for the multi-resource action head."""
        if self.class_score is None:
            raise RuntimeError("executor-class head is disabled in this policy")
        num_classes = len(executor_classes)
        if self.config.use_graph_embedding:
            rows = np.full(num_classes, job_index, dtype=np.intp)
            job_emb = embeddings.job_embeddings[rows]
            global_row = int(graph.job_graph_ids[job_index])
            global_emb = embeddings.global_embedding[
                np.full(num_classes, global_row, dtype=np.intp)
            ]
        else:
            zeros = Tensor(np.zeros((num_classes, self.config.embedding_dim)))
            job_emb = global_emb = zeros
        class_features = Tensor(
            np.array([[cls.cpu, cls.memory] for cls in executor_classes], dtype=np.float64)
        )
        inputs = concat([job_emb, global_emb, class_features], axis=1)
        return self.class_score(inputs).reshape(num_classes)
