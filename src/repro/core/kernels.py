"""Inference kernels and arena buffers for the per-decision hot path.

The training path runs on :mod:`repro.autograd` tensors, which allocate a
fresh array per op and record a backward closure.  At inference none of that
is needed, and on the graphs Decima sees per decision (hundreds to thousands
of nodes, feature widths of 5-30, embedding dim 8) the allocator + autograd
bookkeeping costs more than the arithmetic.  This module provides the
inference data path:

* :class:`Workspace` — a named arena of reusable scratch buffers, so the
  steady-state ``act()`` does zero large allocations (buffers are keyed by
  name and reallocated only when the graph size changes);
* :func:`mlp_forward` — an MLP forward over plain arrays writing into arena
  buffers, **bit-identical** to the autograd MLP (same ``x @ W + b`` and
  ``x * where(x > 0, 1, slope)`` operations, in the same order, only with
  preallocated outputs);
* kernel backends (:func:`get_backend`) for the two aggregation primitives
  the sparse GNN leans on — the frontier gather+segment-sum and the masked
  log-softmax.  The ``numpy`` backend is the reference; the ``numba``
  backend JIT-compiles fused sequential loops (optional dependency, install
  with ``pip install -e .[kernels]``) and falls back to numpy transparently
  when numba is absent.

The numba kernels accumulate in ascending edge order, exactly like
``np.add.at``, so the two backends agree bit-for-bit on the segment sums;
the differential pair ``kernel_vs_numpy_gnn`` pins that down on every
registry scenario.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..autograd.functional import masked_log_softmax_data

__all__ = [
    "Workspace",
    "KernelBackend",
    "get_backend",
    "kernel_backend_names",
    "numba_available",
    "mlp_forward",
    "leaky_relu_inplace",
]


class Workspace:
    """A named arena of reusable scratch arrays.

    ``get(name, shape)`` returns a float64 buffer of exactly ``shape``,
    reusing the previous allocation for ``name`` whenever the shape still
    matches (the steady state between graph rebuilds).  Contents are
    whatever the last user left — callers must fully overwrite.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def get(self, name: str, shape: tuple, dtype=np.float64) -> np.ndarray:
        buffer = self._buffers.get(name)
        if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[name] = buffer
        return buffer

    def clear(self) -> None:
        self._buffers.clear()

    @property
    def num_buffers(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        return sum(buffer.nbytes for buffer in self._buffers.values())


def leaky_relu_inplace(
    values: np.ndarray, negative_slope: float, workspace: Workspace, tag: str
) -> None:
    """In-place leaky ReLU, bit-identical to ``Tensor.leaky_relu``.

    The tensor op computes ``x * where(x > 0, 1.0, slope)``.  For a slope in
    (0, 1) that equals ``max(x, x * slope)`` exactly: positive ``x`` beats its
    scaled-down copy and is returned unchanged (``x * 1.0``), non-positive
    ``x`` loses to it, and the surviving product is the identical multiply.
    Two array passes instead of the four a literal mask build would take.
    """
    if not 0.0 < negative_slope < 1.0:  # pragma: no cover - paper uses 0.2
        mask = np.where(values > 0, 1.0, negative_slope)
        values *= mask
        return
    scaled = workspace.get(f"{tag}:scaled", values.shape)
    np.multiply(values, negative_slope, out=scaled)
    np.maximum(values, scaled, out=values)


def mlp_forward(mlp, inputs: np.ndarray, workspace: Workspace, tag: str) -> np.ndarray:
    """Run an autograd :class:`~repro.core.nn.MLP` on plain arrays via arenas.

    Returns an arena-owned ``(rows, out_features)`` buffer (valid until the
    next ``mlp_forward`` with the same ``tag``).  Bit-identical to
    ``mlp(Tensor(inputs)).data``: each layer is the same
    ``np.matmul(x, W) + b`` (gemm then broadcast add) and the same leaky-ReLU
    multiplier, only written into preallocated buffers.
    """
    if mlp.output_activation is not None:  # pragma: no cover - not used at inference
        raise ValueError("mlp_forward supports linear-output MLPs only")
    out = inputs
    last = len(mlp.layers) - 1
    for index, layer in enumerate(mlp.layers):
        weight = layer.weight.data
        buffer = workspace.get(f"{tag}:{index}", (out.shape[0], weight.shape[1]))
        np.matmul(out, weight, out=buffer)
        buffer += layer.bias.data
        if index < last:
            leaky_relu_inplace(buffer, mlp.negative_slope, workspace, f"{tag}:{index}")
        out = buffer
    return out


# ------------------------------------------------------------ kernel backends
class KernelBackend:
    """The two aggregation primitives behind the dense/sparse oracle seam.

    ``gather_segment_sum`` implements the per-level message aggregation
    ``out[segments[k]] += messages[rows[k]]`` (``out`` is zeroed first);
    ``masked_log_softmax`` mirrors
    :func:`~repro.autograd.functional.masked_log_softmax_data`.
    """

    def __init__(
        self,
        name: str,
        gather_segment_sum: Callable,
        masked_log_softmax: Callable,
        compiled: bool,
    ):
        self.name = name
        self.gather_segment_sum = gather_segment_sum
        self.masked_log_softmax = masked_log_softmax
        self.compiled = compiled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelBackend({self.name!r}, compiled={self.compiled})"


def _numpy_gather_segment_sum(
    messages: np.ndarray,
    message_rows: np.ndarray,
    target_segments: np.ndarray,
    out: np.ndarray,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Reference kernel: gather per-edge messages, segment-sum into ``out``."""
    out[:] = 0.0
    if scratch is not None:
        np.take(messages, message_rows, axis=0, out=scratch)
        gathered = scratch
    else:
        gathered = messages[message_rows]
    np.add.at(out, target_segments, gathered)
    return out


_NUMBA_KERNELS: Optional[tuple] = None


def numba_available() -> bool:
    """True when the optional numba dependency imports."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def _build_numba_kernels() -> Optional[tuple]:
    """Compile the fused kernels once; ``None`` when numba is absent."""
    global _NUMBA_KERNELS
    if _NUMBA_KERNELS is not None:
        return _NUMBA_KERNELS
    try:
        from numba import njit
    except ImportError:
        return None

    @njit(cache=False)
    def gather_segment_sum(messages, message_rows, target_segments, out):
        # Sequential accumulation in edge order == np.add.at semantics, so
        # the compiled backend is bit-identical to the numpy reference.
        out[:] = 0.0
        width = messages.shape[1]
        for k in range(message_rows.shape[0]):
            src = message_rows[k]
            dst = target_segments[k]
            for d in range(width):
                out[dst, d] += messages[src, d]
        return out

    @njit(cache=False)
    def masked_log_softmax_1d(logits, mask, out):
        neg_inf = -1.0e9
        n = logits.shape[0]
        highest = -np.inf
        for i in range(n):
            shifted = logits[i] if mask[i] else logits[i] + neg_inf
            out[i] = shifted
            if shifted > highest:
                highest = shifted
        norm = 0.0
        for i in range(n):
            out[i] -= highest
            norm += np.exp(out[i])
        log_norm = np.log(norm)
        for i in range(n):
            out[i] -= log_norm
        return out

    _NUMBA_KERNELS = (gather_segment_sum, masked_log_softmax_1d)
    return _NUMBA_KERNELS


def _numba_gather_segment_sum(messages, message_rows, target_segments, out, scratch=None):
    kernels = _build_numba_kernels()
    assert kernels is not None
    return kernels[0](messages, message_rows, target_segments, out)


def _numba_masked_log_softmax(logits, mask, axis: int = -1):
    kernels = _build_numba_kernels()
    assert kernels is not None
    logits = np.ascontiguousarray(np.asarray(logits, dtype=np.float64))
    mask = np.ascontiguousarray(np.asarray(mask, dtype=bool))
    if logits.ndim != 1:  # pragma: no cover - the hot path is 1-D
        return masked_log_softmax_data(logits, mask, axis=axis)
    if not mask.any():
        raise ValueError("masked softmax requires at least one valid entry")
    return kernels[1](logits, mask, np.empty_like(logits))


_NUMPY_BACKEND = KernelBackend(
    "numpy", _numpy_gather_segment_sum, masked_log_softmax_data, compiled=False
)


def kernel_backend_names() -> tuple[str, ...]:
    """Backends accepted by :func:`get_backend` (and ``GNNConfig``)."""
    return ("numpy", "numba")


def get_backend(name: str = "numpy") -> KernelBackend:
    """Resolve a kernel backend by name.

    ``"numba"`` returns the JIT-compiled kernels when numba is importable and
    **silently falls back to the numpy reference otherwise** — the optional
    dependency must never change behaviour, only speed (the two backends are
    bit-identical by construction, see the module docstring).
    """
    if name == "numpy":
        return _NUMPY_BACKEND
    if name == "numba":
        if numba_available():
            return KernelBackend(
                "numba",
                _numba_gather_segment_sum,
                _numba_masked_log_softmax,
                compiled=True,
            )
        return _NUMPY_BACKEND
    raise ValueError(
        f"unknown kernel backend {name!r}; known backends: "
        f"{', '.join(kernel_backend_names())} (plus 'tensor' at the agent level)"
    )
