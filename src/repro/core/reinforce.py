"""REINFORCE training for Decima (§5.3, Algorithm 1).

The trainer implements the three training techniques the paper introduces:

1. **Curriculum via memoryless termination** — each training episode ends at a
   time ``tau`` drawn from an exponential distribution whose mean grows over
   the course of training, so early episodes are short and later ones approach
   the full streaming setting.
2. **Input-dependent baselines** — the ``N`` episodes of one iteration share
   the *same* job-arrival sequence, and the return baseline at a given wall
   time is the average return of the other episodes at that time.  This
   removes the variance caused by the randomness of job arrivals.
3. **Differential (average) rewards** — a moving average of the per-step
   reward is subtracted from every reward so the agent optimises the
   time-average penalty rather than the episode total (Appendix B).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..simulator.environment import SchedulingEnvironment, SimulatorConfig
from ..simulator.jobdag import JobDAG
from .agent import DecimaAgent
from .nn import Adam
from .parallel import EpisodeOutcome, IterationPlan, RolloutBackend, SerialRolloutBackend

__all__ = ["TrainingConfig", "IterationStats", "TrainingHistory", "ReinforceTrainer", "evaluate_agent"]

JobSequenceFactory = Callable[[np.random.Generator], list[JobDAG]]


@dataclass
class TrainingConfig:
    """Hyper-parameters of the REINFORCE trainer."""

    num_iterations: int = 50
    episodes_per_iteration: int = 4
    learning_rate: float = 1e-3
    entropy_weight: float = 0.01
    entropy_decay: float = 0.95
    # Normalise advantages to unit variance across the iteration's episodes;
    # keeps the policy-gradient and entropy terms on comparable scales when
    # rewards are tiny (short training runs on scaled-down workloads).
    normalize_advantages: bool = True
    # Curriculum: mean episode duration starts small and grows additively.
    initial_episode_time: float = 200.0
    episode_time_growth: float = 20.0
    max_episode_time: float = 5_000.0
    # Variance-reduction switches (Fig. 14 ablations).
    use_input_dependent_baseline: bool = True
    fix_job_sequence_per_iteration: bool = True
    use_differential_reward: bool = True
    reward_baseline_momentum: float = 0.05
    # Safety bound on actions per episode for degenerate early policies.
    max_actions_per_episode: Optional[int] = 3_000
    seed: int = 0


@dataclass
class IterationStats:
    """Per-iteration training statistics (learning-curve material, Fig. 15a)."""

    iteration: int
    mean_total_reward: float
    mean_num_actions: float
    mean_finished_jobs: float
    mean_jct: float
    episode_time: float
    entropy_weight: float


@dataclass
class TrainingHistory:
    iterations: list[IterationStats] = field(default_factory=list)

    def rewards(self) -> np.ndarray:
        return np.array([s.mean_total_reward for s in self.iterations])

    def jcts(self) -> np.ndarray:
        return np.array([s.mean_jct for s in self.iterations])


def time_aligned_baselines(
    wall_times: list[np.ndarray], returns: list[np.ndarray]
) -> list[np.ndarray]:
    """Input-dependent baselines: cross-episode average return at each action time.

    Episodes sharing the same arrival sequence have different action times, so
    each episode's return curve is linearly interpolated onto the others'
    action times before averaging (the piecewise-linear fit of the paper's
    implementation).
    """
    num_episodes = len(wall_times)
    baselines = []
    for i in range(num_episodes):
        if len(wall_times[i]) == 0:
            baselines.append(np.zeros(0))
            continue
        stacked = np.zeros((num_episodes, len(wall_times[i])))
        for j in range(num_episodes):
            if len(wall_times[j]) == 0:
                continue
            stacked[j] = np.interp(
                wall_times[i],
                wall_times[j],
                returns[j],
                left=returns[j][0],
                right=returns[j][-1],
            )
        baselines.append(stacked.mean(axis=0))
    return baselines


def evaluate_agent(
    agent,
    jobs: list[JobDAG],
    config: SimulatorConfig,
    seed: int = 0,
) -> dict[str, float]:
    """Greedy evaluation of any scheduler on a fixed job set (no learning)."""
    environment = SchedulingEnvironment(config)
    agent.reset()
    observation = environment.reset(copy.deepcopy(jobs), seed=seed)
    done = False
    while not done:
        action = agent.schedule(observation)
        observation, _, done = environment.step(action)
    result = environment.result()
    summary = result.summary()
    # Learned agents carry a per-episode graph cache; release it so the
    # deep-copied evaluation jobs do not outlive the episode.
    release_cache = getattr(agent, "reset_graph_cache", None)
    if release_cache is not None:
        release_cache()
    return summary


class ReinforceTrainer:
    """Policy-gradient training loop for a :class:`DecimaAgent`.

    Episode collection and the per-episode backward passes are delegated to a
    pluggable :class:`~repro.core.parallel.RolloutBackend`.  The default
    :class:`~repro.core.parallel.SerialRolloutBackend` reproduces the original
    single-process trainer bit-for-bit at fixed seeds; pass a
    :class:`~repro.core.parallel.ParallelRolloutBackend` to spread episodes
    over a persistent worker pool (§5.3, Algorithm 1).
    """

    def __init__(
        self,
        agent: DecimaAgent,
        simulator_config: SimulatorConfig,
        job_sequence_factory: JobSequenceFactory,
        config: Optional[TrainingConfig] = None,
        backend: Optional[RolloutBackend] = None,
    ):
        self.agent = agent
        self.simulator_config = simulator_config
        self.job_sequence_factory = job_sequence_factory
        self.config = config or TrainingConfig()
        self.backend = backend or SerialRolloutBackend()
        self.optimizer = Adam(agent.parameters(), learning_rate=self.config.learning_rate)
        self.rng = np.random.default_rng(self.config.seed)
        self._reward_average = 0.0
        self._reward_average_initialised = False
        self.history = TrainingHistory()

    def close(self) -> None:
        """Release backend resources (parallel worker processes)."""
        self.backend.close()

    def __enter__(self) -> "ReinforceTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------------- reward
    def _adjusted_rewards(self, episode: EpisodeOutcome) -> np.ndarray:
        """Apply the differential-reward transformation (average-reward form)."""
        rewards = episode.rewards
        if not self.config.use_differential_reward:
            return rewards
        adjusted = np.empty_like(rewards)
        momentum = self.config.reward_baseline_momentum
        for index, reward in enumerate(rewards):
            if not self._reward_average_initialised:
                self._reward_average = reward
                self._reward_average_initialised = True
            else:
                self._reward_average = (1 - momentum) * self._reward_average + momentum * reward
            adjusted[index] = reward - self._reward_average
        return adjusted

    # ------------------------------------------------------------------ train
    def _episode_time(self, iteration: int) -> float:
        mean = min(
            self.config.initial_episode_time + iteration * self.config.episode_time_growth,
            self.config.max_episode_time,
        )
        # Memoryless termination: exponential draw so the agent cannot learn to
        # defer large jobs until a predictable horizon (§5.3, challenge #1).
        return float(self.rng.exponential(mean))

    def train(
        self, callback: Optional[Callable[[IterationStats], None]] = None
    ) -> TrainingHistory:
        for iteration in range(self.config.num_iterations):
            stats = self.train_iteration(iteration)
            self.history.iterations.append(stats)
            if callback is not None:
                callback(stats)
        return self.history

    def train_iteration(self, iteration: int) -> IterationStats:
        config = self.config
        episode_time = self._episode_time(iteration)
        entropy_weight = config.entropy_weight * (config.entropy_decay ** iteration)

        # One job-arrival sequence shared by all episodes of the iteration
        # (input-dependent baseline); the ablation samples a fresh sequence per episode.
        shared_sequence: Optional[list[JobDAG]] = None
        if config.fix_job_sequence_per_iteration:
            shared_sequence = self.job_sequence_factory(self.rng)
        if shared_sequence is not None:
            make_jobs = lambda rng: copy.deepcopy(shared_sequence)  # noqa: E731
        else:
            make_jobs = self.job_sequence_factory

        plan = IterationPlan(
            num_episodes=config.episodes_per_iteration,
            episode_time=episode_time,
            make_jobs=make_jobs,
            max_actions=config.max_actions_per_episode,
        )
        episodes = self.backend.collect(self.agent, self.simulator_config, plan, self.rng)

        self._update_policy(episodes, entropy_weight)
        return self._iteration_stats(iteration, episodes, episode_time, entropy_weight)

    # ---------------------------------------------------------------- updates
    def _update_policy(self, episodes: list[EpisodeOutcome], entropy_weight: float) -> None:
        config = self.config
        wall_times = [e.wall_times for e in episodes]
        returns = []
        for episode in episodes:
            adjusted = self._adjusted_rewards(episode)
            returns.append(np.cumsum(adjusted[::-1])[::-1] if adjusted.size else adjusted)

        if config.use_input_dependent_baseline:
            baselines = time_aligned_baselines(wall_times, returns)
        else:
            # Single scalar baseline: overall mean return across episodes.
            all_returns = np.concatenate([r for r in returns if r.size]) if returns else np.zeros(1)
            mean_return = float(all_returns.mean()) if all_returns.size else 0.0
            baselines = [np.full(len(r), mean_return) for r in returns]

        advantage_arrays = [r - b for r, b in zip(returns, baselines)]
        if config.normalize_advantages and advantage_arrays:
            flat = np.concatenate([a for a in advantage_arrays if a.size]) if any(
                a.size for a in advantage_arrays
            ) else np.zeros(1)
            scale = float(flat.std())
            if scale > 1e-8:
                advantage_arrays = [a / scale for a in advantage_arrays]

        # The backward passes run wherever the autograd graphs live — in this
        # process for the serial backend, inside the rollout workers for the
        # parallel one.  Either way the backend returns per-parameter sums.
        num_episodes = max(len(episodes), 1)
        gradients = self.backend.compute_gradients(
            self.agent, advantage_arrays, entropy_weight
        )
        self.optimizer.apply_gradients(
            [None if gradient is None else gradient / num_episodes for gradient in gradients]
        )
        self.agent.zero_grad()

    @staticmethod
    def _iteration_stats(
        iteration: int,
        episodes: list[EpisodeOutcome],
        episode_time: float,
        entropy_weight: float,
    ) -> IterationStats:
        total_rewards = [e.total_reward for e in episodes]
        num_actions = [e.num_actions for e in episodes]
        finished = []
        jcts = []
        for episode in episodes:
            if episode.num_finished_jobs is None:
                continue
            finished.append(episode.num_finished_jobs)
            if episode.average_jct is not None:
                jcts.append(episode.average_jct)
        return IterationStats(
            iteration=iteration,
            mean_total_reward=float(np.mean(total_rewards)) if total_rewards else 0.0,
            mean_num_actions=float(np.mean(num_actions)) if num_actions else 0.0,
            mean_finished_jobs=float(np.mean(finished)) if finished else 0.0,
            mean_jct=float(np.mean(jcts)) if jcts else float("nan"),
            episode_time=episode_time,
            entropy_weight=entropy_weight,
        )
