"""Feature extraction: turn an :class:`Observation` into graph-neural-network inputs.

Per §6.1, the raw feature vector of a stage contains: (i) the number of tasks
remaining in the stage, (ii) the average task duration, (iii) the number of
executors currently working on the stage's job, (iv) the number of free
executors, and (v) whether the free executors are local to the job.  An
optional sixth feature carries the workload's mean interarrival time (the
"hint" of Table 2).

The graph inputs split into two parts with very different lifetimes:

* **Static structure** (:class:`GraphStructure`) — node ordering, CSR-style
  edge arrays, node heights, per-height frontier index arrays, job
  segmentation and the per-node constants (task counts, task durations).
  These only change when a job arrives or completes.
* **Dynamic state** — the ``(N, F)`` feature matrix and the schedulable mask,
  which change on every scheduling decision.

:func:`build_graph_features` assembles both from scratch (the stateless
oracle path); :class:`GraphCache` reuses the structure across consecutive
steps and only refreshes the dynamic arrays, which is what makes the per-step
inference hot path cheap (§5.1, Fig. 5a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..simulator.environment import Observation
from ..simulator.jobdag import JobDAG, Node

__all__ = [
    "FeatureConfig",
    "FrontierLevel",
    "GraphStructure",
    "GraphFeatures",
    "GraphCache",
    "GraphBatch",
    "MergedStructureCache",
    "build_graph_features",
    "compute_node_heights",
    "merge_structures",
]


@dataclass
class FeatureConfig:
    """Normalisation scales and optional extra features."""

    task_scale: float = 200.0
    duration_scale: float = 100.0
    executor_scale: float = 50.0
    include_interarrival_hint: bool = False
    interarrival_scale: float = 100.0
    # Appendix J: when task-duration estimates are unavailable for unseen jobs,
    # the duration feature is zeroed out and Decima must rely on the graph
    # structure and task counts alone.
    include_task_duration: bool = True

    @property
    def num_features(self) -> int:
        return 6 if self.include_interarrival_hint else 5


@dataclass
class FrontierLevel:
    """Index arrays for one height level of bottom-up message passing.

    The nodes at height ``h`` (``target_rows``) aggregate messages from their
    children, all of which sit at heights ``< h`` and therefore already hold
    their final embedding (Fig. 5a).  ``child_rows`` lists the *unique* child
    rows feeding the level (``node_f`` runs once per unique child); each edge
    into the level is then described by ``message_rows[k]`` (an index into
    ``child_rows``) and ``target_segments[k]`` (an index into ``target_rows``).
    """

    height: int
    target_rows: np.ndarray      # (F_h,) rows updated at this height
    child_rows: np.ndarray       # (U_h,) unique rows whose messages feed the level
    message_rows: np.ndarray     # (E_h,) per-edge index into child_rows
    target_segments: np.ndarray  # (E_h,) per-edge index into target_rows

    @property
    def num_targets(self) -> int:
        return int(len(self.target_rows))


def compute_node_heights(
    num_nodes: int, edge_parent_rows: np.ndarray, edge_child_rows: np.ndarray
) -> np.ndarray:
    """Longest distance from each node to a leaf (0 for leaves), vectorized.

    Peels the DAG level by level with numpy index arithmetic instead of the
    historical per-node Python double loop: round ``r`` assigns height ``r``
    to every node whose children were all peeled in earlier rounds, which is
    exactly ``1 + max(child heights)``.
    """
    heights = np.zeros(num_nodes, dtype=np.int64)
    if num_nodes == 0 or edge_parent_rows.size == 0:
        return heights
    # CSR over the *child* endpoint: edges sorted by child row so the edges
    # incident to any frontier of children are a union of contiguous slices.
    order = np.argsort(edge_child_rows, kind="stable")
    sorted_parents = edge_parent_rows[order]
    sorted_children = edge_child_rows[order]
    offsets = np.searchsorted(sorted_children, np.arange(num_nodes + 1))
    unresolved_children = np.bincount(edge_parent_rows, minlength=num_nodes)
    frontier = np.flatnonzero(unresolved_children == 0)
    height = 0
    while frontier.size:
        heights[frontier] = height
        starts = offsets[frontier]
        lengths = offsets[frontier + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            break
        exclusive = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        edge_index = np.repeat(starts - exclusive, lengths) + np.arange(total)
        parents = sorted_parents[edge_index]
        np.subtract.at(unresolved_children, parents, 1)
        candidates = np.unique(parents)
        frontier = candidates[unresolved_children[candidates] == 0]
        height += 1
    return heights


def _build_frontier_levels(
    heights: np.ndarray, edge_parent_rows: np.ndarray, edge_child_rows: np.ndarray
) -> list[FrontierLevel]:
    """Group edges by the height of their parent endpoint (one level per height)."""
    levels: list[FrontierLevel] = []
    if edge_parent_rows.size == 0:
        return levels
    parent_heights = heights[edge_parent_rows]
    max_height = int(heights.max())
    for height in range(1, max_height + 1):
        selected = parent_heights == height
        level_parents = edge_parent_rows[selected]
        level_children = edge_child_rows[selected]
        target_rows = np.flatnonzero(heights == height)
        target_segments = np.searchsorted(target_rows, level_parents).astype(np.intp)
        child_rows, message_rows = np.unique(level_children, return_inverse=True)
        levels.append(
            FrontierLevel(
                height=height,
                target_rows=target_rows.astype(np.intp),
                child_rows=child_rows.astype(np.intp),
                message_rows=message_rows.astype(np.intp),
                target_segments=target_segments,
            )
        )
    return levels


class GraphStructure:
    """Everything about a set of live job DAGs that is static between steps.

    Node rows are ordered job-by-job in the order of ``jobs``; ``node_index``
    maps a :class:`Node` object back to its row.  The instance holds strong
    references to the jobs, so caching it keyed on job identity is safe (the
    ``id()`` values cannot be recycled while the structure is alive).
    """

    def __init__(self, jobs: list[JobDAG]):
        self.jobs = list(jobs)
        nodes: list[Node] = []
        job_ids: list[int] = []
        node_index: dict[int, int] = {}
        job_position: dict[int, int] = {}
        for job_pos, job in enumerate(self.jobs):
            job_position[id(job)] = job_pos
            for node in job.nodes:
                node_index[id(node)] = len(nodes)
                nodes.append(node)
                job_ids.append(job_pos)
        self.nodes = nodes
        self.node_index = node_index
        self.job_position = job_position
        self.job_ids = np.asarray(job_ids, dtype=np.intp)
        # Row range of job k is job_node_offsets[k]:job_node_offsets[k + 1]
        # (rows are ordered job-by-job), which lets per-job columns like the
        # source-job one-hot be written as a slice instead of a comparison.
        self.job_node_offsets = np.concatenate(
            ([0], np.cumsum([job.num_nodes for job in self.jobs]))
        ).astype(np.intp)

        num_nodes = len(nodes)
        parent_rows: list[int] = []
        child_rows: list[int] = []
        for job in self.jobs:
            for node in job.nodes:
                parent_row = node_index[id(node)]
                for child in node.children:
                    parent_rows.append(parent_row)
                    child_rows.append(node_index[id(child)])
        parents = np.asarray(parent_rows, dtype=np.intp)
        children = np.asarray(child_rows, dtype=np.intp)
        if parents.size:
            # Deduplicate repeated edges so the sparse aggregation matches the
            # dense 0/1 adjacency semantics (an edge contributes one message).
            keys = np.unique(parents * num_nodes + children)
            parents = (keys // num_nodes).astype(np.intp)
            children = (keys % num_nodes).astype(np.intp)
        self.edge_parent_rows = parents
        self.edge_child_rows = children

        # Static per-node feature constants.
        self.num_tasks = np.fromiter(
            (node.num_tasks for node in nodes), dtype=np.float64, count=num_nodes
        )
        self.task_durations = np.fromiter(
            (node.task_duration for node in nodes), dtype=np.float64, count=num_nodes
        )

        self.node_heights = compute_node_heights(
            num_nodes, self.edge_parent_rows, self.edge_child_rows
        )
        self.frontier_levels = _build_frontier_levels(
            self.node_heights, self.edge_parent_rows, self.edge_child_rows
        )
        self._adjacency: Optional[np.ndarray] = None
        self._scaled_durations: dict[float, np.ndarray] = {}
        # Graph segmentation: a structure built from one observation is a
        # single graph (all jobs belong to segment 0).  Merged structures
        # (cross-session batching, :func:`merge_structures`) assign every job
        # the index of the component graph it came from, so the GNN can keep
        # one *per-graph* global embedding instead of mixing sessions.
        self.num_graphs = 1
        self.job_graph_ids = np.zeros(len(self.jobs), dtype=np.intp)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def adjacency(self) -> np.ndarray:
        """Dense ``(N, N)`` matrix with A[parent, child] = 1, built on demand.

        Only the dense-oracle message-passing path reads this; the sparse
        path works entirely from the edge and frontier index arrays.
        """
        if self._adjacency is None:
            matrix = np.zeros((self.num_nodes, self.num_nodes))
            matrix[self.edge_parent_rows, self.edge_child_rows] = 1.0
            self._adjacency = matrix
        return self._adjacency

    def scaled_task_durations(self, config: "FeatureConfig") -> np.ndarray:
        """``task_durations / duration_scale``, cached — it is fully static.

        The division is the one per-node scaling product whose operands never
        change between steps, so it is the only one that can be cached without
        perturbing bits (pre-dividing ``num_tasks`` would turn the dynamic
        ``(num_tasks - finished) / scale`` into a different rounding).
        """
        cached = self._scaled_durations.get(config.duration_scale)
        if cached is None:
            cached = self.task_durations / config.duration_scale
            self._scaled_durations[config.duration_scale] = cached
        return cached

    def matches(self, jobs: list[JobDAG]) -> bool:
        """True when ``jobs`` is the identical (same objects, same order) job set."""
        return len(jobs) == len(self.jobs) and all(
            cached is live for cached, live in zip(self.jobs, jobs)
        )


class GraphFeatures:
    """Vectorised view of all job DAGs in one observation.

    Combines the step-invariant :class:`GraphStructure` with the per-step
    dynamic arrays (feature matrix and schedulable mask).  By default fresh
    dynamic arrays are handed out every step — autograd graphs recorded
    during an episode keep references to ``node_features``, so training must
    never see them mutated in place.  The inference hot path opts into
    buffer reuse (``GraphCache.features(..., reuse_buffers=True)``), in which
    case the arrays are arena-owned and only valid until the next step.
    """

    __slots__ = ("structure", "node_features", "schedulable_mask")

    def __init__(
        self,
        structure: GraphStructure,
        node_features: np.ndarray,
        schedulable_mask: np.ndarray,
    ):
        self.structure = structure
        self.node_features = node_features
        self.schedulable_mask = schedulable_mask

    # ------------------------------------------------- structure delegation
    @property
    def jobs(self) -> list[JobDAG]:
        return self.structure.jobs

    @property
    def nodes(self) -> list[Node]:
        return self.structure.nodes

    @property
    def node_index(self) -> dict[int, int]:
        return self.structure.node_index

    @property
    def job_ids(self) -> np.ndarray:
        return self.structure.job_ids

    @property
    def node_heights(self) -> np.ndarray:
        return self.structure.node_heights

    @property
    def adjacency(self) -> np.ndarray:
        return self.structure.adjacency

    @property
    def frontier_levels(self) -> list[FrontierLevel]:
        return self.structure.frontier_levels

    @property
    def num_nodes(self) -> int:
        return self.structure.num_nodes

    @property
    def num_jobs(self) -> int:
        return self.structure.num_jobs

    @property
    def num_graphs(self) -> int:
        return self.structure.num_graphs

    @property
    def job_graph_ids(self) -> np.ndarray:
        return self.structure.job_graph_ids

    def row_of(self, node: Node) -> int:
        return self.structure.node_index[id(node)]


def _refresh_dynamic_features(
    structure: GraphStructure,
    observation: Observation,
    config: FeatureConfig,
    interarrival_hint: Optional[float],
    out: np.ndarray,
    rows: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Write the ``(N, F)`` feature matrix for the current step into ``out``.

    With ``rows=None`` every per-node column is recomputed (the full-refresh
    path, identical in ops — and therefore in bits — to the historical
    ``np.fromiter`` build).  With ``rows`` (the delta path) only those rows'
    task-counter columns (0 and 2) are recomputed; the static duration column
    is left untouched and must already be populated.  The columns that depend
    on whole-observation scalars (free executors, source-job one-hot,
    interarrival hint) are cheap vectorized writes and refresh every step on
    both paths.
    """
    nodes = structure.nodes
    if rows is None:
        num_nodes = structure.num_nodes
        finished = np.fromiter(
            (node.num_finished_tasks for node in nodes),
            dtype=np.float64,
            count=num_nodes,
        )
        running = np.fromiter(
            (node.num_running_tasks for node in nodes),
            dtype=np.float64,
            count=num_nodes,
        )
        np.subtract(structure.num_tasks, finished, out=out[:, 0])
        out[:, 0] /= config.task_scale
        if config.include_task_duration:
            out[:, 1] = structure.scaled_task_durations(config)
        else:
            out[:, 1] = 0.0
        np.divide(running, config.executor_scale, out=out[:, 2])
    elif rows.size:
        finished = np.fromiter(
            (nodes[row].num_finished_tasks for row in rows),
            dtype=np.float64,
            count=rows.size,
        )
        running = np.fromiter(
            (nodes[row].num_running_tasks for row in rows),
            dtype=np.float64,
            count=rows.size,
        )
        out[rows, 0] = (structure.num_tasks[rows] - finished) / config.task_scale
        out[rows, 2] = running / config.executor_scale
    out[:, 3] = observation.num_free_executors / config.executor_scale
    out[:, 4] = 0.0
    source = observation.source_job
    if source is not None:
        source_pos = structure.job_position.get(id(source))
        if source_pos is not None:
            start, stop = structure.job_node_offsets[source_pos: source_pos + 2]
            out[start:stop, 4] = 1.0
    if config.include_interarrival_hint:
        hint = interarrival_hint if interarrival_hint is not None else 0.0
        out[:, 5] = hint / config.interarrival_scale
    return out


def _dynamic_node_features(
    structure: GraphStructure,
    observation: Observation,
    config: FeatureConfig,
    interarrival_hint: Optional[float],
) -> np.ndarray:
    """Fresh ``(N, F)`` feature matrix for the current step, fully vectorized."""
    features = np.zeros((structure.num_nodes, config.num_features))
    return _refresh_dynamic_features(
        structure, observation, config, interarrival_hint, features
    )


def _refresh_schedulable_mask(
    structure: GraphStructure, observation: Observation, out: np.ndarray
) -> np.ndarray:
    """Write the schedulable mask into ``out`` with one vectorized scatter."""
    out[:] = False
    schedulable = observation.schedulable_nodes
    if schedulable:
        node_index = structure.node_index
        rows = np.fromiter(
            (node_index[id(node)] for node in schedulable),
            dtype=np.intp,
            count=len(schedulable),
        )
        out[rows] = True
    return out


def _schedulable_mask(structure: GraphStructure, observation: Observation) -> np.ndarray:
    mask = np.zeros(structure.num_nodes, dtype=bool)
    return _refresh_schedulable_mask(structure, observation, mask)


def build_graph_features(
    observation: Observation,
    config: Optional[FeatureConfig] = None,
    interarrival_hint: Optional[float] = None,
) -> GraphFeatures:
    """Assemble the node-feature matrix, structure and masks for the GNN.

    Stateless: rebuilds the full :class:`GraphStructure` every call.  The
    per-step hot path should go through :class:`GraphCache` instead, which
    only does this work when the set of live jobs changes.
    """
    config = config or FeatureConfig()
    structure = GraphStructure(list(observation.job_dags))
    return GraphFeatures(
        structure=structure,
        node_features=_dynamic_node_features(
            structure, observation, config, interarrival_hint
        ),
        schedulable_mask=_schedulable_mask(structure, observation),
    )


class GraphCache:
    """Incremental graph-feature builder for consecutive ``act()`` steps.

    Keys the cached :class:`GraphStructure` on the identity set of live
    :class:`JobDAG` objects: consecutive observations over the same jobs reuse
    the edge/frontier/height arrays and only refresh the dynamic feature
    matrix, while a job arrival or completion (or a new episode, whose jobs
    are fresh deep copies) transparently triggers a rebuild.

    The cache holds no network outputs, so weight updates between training
    iterations never invalidate it; call :meth:`reset` at episode boundaries
    to release the references it keeps to the previous episode's jobs.

    On top of structure reuse the cache keeps the ``(N, F)`` feature matrix
    itself alive between steps and replays only the *delta*: each
    :class:`JobDAG` logs the nodes whose task counters changed
    (``log_feature_touch``), and :meth:`features` recomputes exactly those
    rows plus the cheap whole-column scalars.  Any event that invalidates
    per-row history — structure rebuild, feature-config change, a job's
    ``feature_epoch`` advancing (episode reset, log compaction) — falls back
    to one full refresh.  The two paths are bit-identical by construction
    (same scalar ops per row) and pinned to each other by a hypothesis
    property test.  ``num_delta_refreshes`` / ``num_full_refreshes`` count
    which path served each step, for serving telemetry.
    """

    def __init__(self) -> None:
        self._structure: Optional[GraphStructure] = None
        self.num_rebuilds = 0
        self.num_delta_refreshes = 0
        self.num_full_refreshes = 0
        self._features_buf: Optional[np.ndarray] = None
        self._mask_buf: Optional[np.ndarray] = None
        self._config_key: Optional[tuple] = None
        # id(job) -> (feature_epoch, touch-log position) at the last refresh.
        # Jobs are pinned by the cached structure, so the id() keys are
        # collision-safe; the dict is rebuilt from scratch on every full
        # refresh, which drops entries of departed jobs.
        self._job_marks: dict[int, tuple[int, int]] = {}

    def reset(self) -> None:
        """Drop the cached structure (and the job references that pin it)."""
        self._structure = None
        self._features_buf = None
        self._mask_buf = None
        self._config_key = None
        self._job_marks = {}

    def structure_for(self, jobs: list[JobDAG]) -> GraphStructure:
        """Return a structure for ``jobs``, rebuilding only if the set changed."""
        if self._structure is None or not self._structure.matches(jobs):
            self._structure = GraphStructure(list(jobs))
            self.num_rebuilds += 1
            self._features_buf = None
            self._job_marks = {}
        return self._structure

    def _mark_jobs(self, structure: GraphStructure) -> None:
        """Snapshot every job's epoch + log position after a full refresh."""
        self._job_marks = {
            id(job): (job.feature_epoch, job.drain_feature_touches(0)[0])
            for job in structure.jobs
        }

    def _touched_rows(self, structure: GraphStructure) -> Optional[np.ndarray]:
        """Rows touched since the last refresh, or ``None`` to force a full one."""
        marks = self._job_marks
        rows: list[int] = []
        updates: list[tuple[int, int, int]] = []
        node_index = structure.node_index
        for job in structure.jobs:
            mark = marks.get(id(job))
            if mark is None or mark[0] != job.feature_epoch:
                return None
            position, touched = job.drain_feature_touches(mark[1])
            updates.append((id(job), job.feature_epoch, position))
            for node in touched:
                rows.append(node_index[id(node)])
        for key, epoch, position in updates:
            marks[key] = (epoch, position)
        if not rows:
            return np.empty(0, dtype=np.intp)
        return np.unique(np.asarray(rows, dtype=np.intp))

    def features(
        self,
        observation: Observation,
        config: Optional[FeatureConfig] = None,
        interarrival_hint: Optional[float] = None,
        reuse_buffers: bool = False,
    ) -> GraphFeatures:
        """Graph inputs for ``observation``, reusing cached static structure.

        With ``reuse_buffers=True`` (inference only!) the returned arrays are
        the cache's own persistent buffers — valid until the next call, never
        safe to hand to autograd.  The default copies them out.
        """
        config = config or FeatureConfig()
        structure = self.structure_for(observation.job_dags)
        num_nodes = structure.num_nodes
        config_key = (
            config.task_scale,
            config.duration_scale,
            config.executor_scale,
            config.include_interarrival_hint,
            config.interarrival_scale,
            config.include_task_duration,
        )
        buf = self._features_buf
        rows: Optional[np.ndarray] = None
        if buf is not None and buf.shape == (num_nodes, config.num_features) \
                and self._config_key == config_key:
            rows = self._touched_rows(structure)
        if rows is None:
            if buf is None or buf.shape != (num_nodes, config.num_features):
                buf = np.zeros((num_nodes, config.num_features))
                self._features_buf = buf
            self._config_key = config_key
            _refresh_dynamic_features(
                structure, observation, config, interarrival_hint, buf
            )
            self._mark_jobs(structure)
            self.num_full_refreshes += 1
        else:
            _refresh_dynamic_features(
                structure, observation, config, interarrival_hint, buf, rows=rows
            )
            self.num_delta_refreshes += 1
        mask = self._mask_buf
        if mask is None or mask.shape[0] != num_nodes:
            mask = np.zeros(num_nodes, dtype=bool)
            self._mask_buf = mask
        _refresh_schedulable_mask(structure, observation, mask)
        if not reuse_buffers:
            buf = buf.copy()
            mask = mask.copy()
        return GraphFeatures(
            structure=structure, node_features=buf, schedulable_mask=mask
        )


# --------------------------------------------------------- cross-graph merging
def merge_structures(structures: Sequence[GraphStructure]) -> GraphStructure:
    """Concatenate several :class:`GraphStructure`\\ s into one disconnected graph.

    Node rows (and job positions) of component ``k`` are offset by the totals
    of components ``0..k-1``; no per-node recomputation happens — heights are
    component-local already, and the per-height frontier levels are merged by
    offsetting their index arrays.  The result is exactly the structure that
    ``GraphStructure(jobs_0 + jobs_1 + ...)`` would build, except that
    ``job_graph_ids`` records which component each job came from (so the GNN
    keeps one global embedding per component instead of one overall).
    """
    if not structures:
        raise ValueError("merge_structures needs at least one structure")
    merged = object.__new__(GraphStructure)
    merged.jobs = [job for structure in structures for job in structure.jobs]
    merged.nodes = [node for structure in structures for node in structure.nodes]
    merged.node_index = {id(node): row for row, node in enumerate(merged.nodes)}
    merged.job_position = {id(job): pos for pos, job in enumerate(merged.jobs)}

    node_offsets = np.cumsum([0] + [s.num_nodes for s in structures])
    job_offsets = np.cumsum([0] + [s.num_jobs for s in structures])
    merged.job_ids = np.concatenate(
        [s.job_ids + job_offsets[k] for k, s in enumerate(structures)]
    ).astype(np.intp)
    merged.edge_parent_rows = np.concatenate(
        [s.edge_parent_rows + node_offsets[k] for k, s in enumerate(structures)]
    ).astype(np.intp)
    merged.edge_child_rows = np.concatenate(
        [s.edge_child_rows + node_offsets[k] for k, s in enumerate(structures)]
    ).astype(np.intp)
    merged.num_tasks = np.concatenate([s.num_tasks for s in structures])
    merged.task_durations = np.concatenate([s.task_durations for s in structures])
    merged.node_heights = np.concatenate([s.node_heights for s in structures])
    merged.job_node_offsets = np.concatenate(
        ([0], np.cumsum([job.num_nodes for job in merged.jobs]))
    ).astype(np.intp)
    merged._adjacency = None
    merged._scaled_durations = {}
    merged.num_graphs = len(structures)
    merged.job_graph_ids = np.concatenate(
        [np.full(s.num_jobs, k, dtype=np.intp) for k, s in enumerate(structures)]
    )

    # Merge the per-height frontier levels.  Component node rows are strictly
    # increasing with k, so concatenating each level's (sorted) ``target_rows``
    # and ``child_rows`` with their node offsets keeps them sorted — the merged
    # levels are identical (same values, same edge order) to what
    # ``_build_frontier_levels`` would produce from the merged edge arrays.
    by_height: dict[int, list[tuple[int, FrontierLevel]]] = {}
    for k, structure in enumerate(structures):
        for level in structure.frontier_levels:
            by_height.setdefault(level.height, []).append((k, level))
    merged.frontier_levels = []
    for height in sorted(by_height):
        parts = by_height[height]
        target_counts = np.cumsum([0] + [len(lvl.target_rows) for _, lvl in parts])
        child_counts = np.cumsum([0] + [len(lvl.child_rows) for _, lvl in parts])
        merged.frontier_levels.append(
            FrontierLevel(
                height=height,
                target_rows=np.concatenate(
                    [lvl.target_rows + node_offsets[k] for k, lvl in parts]
                ).astype(np.intp),
                child_rows=np.concatenate(
                    [lvl.child_rows + node_offsets[k] for k, lvl in parts]
                ).astype(np.intp),
                message_rows=np.concatenate(
                    [lvl.message_rows + child_counts[i] for i, (_, lvl) in enumerate(parts)]
                ).astype(np.intp),
                target_segments=np.concatenate(
                    [lvl.target_segments + target_counts[i] for i, (_, lvl) in enumerate(parts)]
                ).astype(np.intp),
            )
        )
    return merged


class MergedStructureCache:
    """Reuse a merged :class:`GraphStructure` while its components are stable.

    The request broker merges the per-session structures on every batched
    decision; between decisions the sessions' own :class:`GraphCache`\\ s keep
    their structures alive and unchanged, so the merged structure (keyed on
    the identity *sequence* of component structures) is almost always a hit.
    Strong references to the components make the ``id()`` key collision-safe.
    """

    def __init__(self) -> None:
        self._components: Optional[tuple[GraphStructure, ...]] = None
        self._merged: Optional[GraphStructure] = None
        self.num_rebuilds = 0
        self._features_buf: Optional[np.ndarray] = None
        self._mask_buf: Optional[np.ndarray] = None

    def reset(self) -> None:
        self._components = None
        self._merged = None
        self._features_buf = None
        self._mask_buf = None

    def merged_structure(self, structures: Sequence[GraphStructure]) -> GraphStructure:
        components = tuple(structures)
        if self._merged is None or self._components != components:
            self._merged = merge_structures(components)
            self._components = components
            self.num_rebuilds += 1
        return self._merged

    def feature_buffers(self, shape: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        """Persistent merged feature/mask arenas of exactly ``shape``."""
        if self._features_buf is None or self._features_buf.shape != shape:
            self._features_buf = np.empty(shape)
            self._mask_buf = np.empty(shape[0], dtype=bool)
        return self._features_buf, self._mask_buf


class GraphBatch:
    """Several sessions' :class:`GraphFeatures` fused into one mega-graph.

    ``features`` is a regular :class:`GraphFeatures` over the disconnected
    union (so the GNN and the node-scoring head run on it unchanged, in one
    pass); ``node_slices`` / ``job_slices`` map each component back to its row
    ranges for splitting per-session decisions out of the batched forward.
    """

    __slots__ = ("features", "components", "node_slices", "job_slices")

    def __init__(
        self,
        features: GraphFeatures,
        components: Sequence[GraphFeatures],
        node_slices: list[slice],
        job_slices: list[slice],
    ):
        self.features = features
        self.components = list(components)
        self.node_slices = node_slices
        self.job_slices = job_slices

    @property
    def num_components(self) -> int:
        return len(self.components)

    @classmethod
    def merge(
        cls,
        components: Sequence[GraphFeatures],
        structure_cache: Optional[MergedStructureCache] = None,
        reuse_buffers: bool = False,
    ) -> "GraphBatch":
        """Fuse per-session features into one batch (single components pass through).

        ``reuse_buffers=True`` (inference only, needs a ``structure_cache``)
        concatenates into the cache's persistent arenas instead of allocating
        — the merged arrays are then valid only until the next merge.
        """
        if not components:
            raise ValueError("GraphBatch.merge needs at least one component")
        node_slices = []
        job_slices = []
        node_cursor = job_cursor = 0
        for component in components:
            node_slices.append(slice(node_cursor, node_cursor + component.num_nodes))
            job_slices.append(slice(job_cursor, job_cursor + component.num_jobs))
            node_cursor += component.num_nodes
            job_cursor += component.num_jobs
        if len(components) == 1:
            return cls(components[0], components, node_slices, job_slices)
        widths = {component.node_features.shape[1] for component in components}
        if len(widths) > 1:
            raise ValueError(
                f"cannot merge graphs with different feature widths: {sorted(widths)}"
            )
        structures = [component.structure for component in components]
        if structure_cache is not None:
            structure = structure_cache.merged_structure(structures)
        else:
            structure = merge_structures(structures)
        feature_blocks = [c.node_features for c in components]
        mask_blocks = [c.schedulable_mask for c in components]
        if reuse_buffers and structure_cache is not None:
            width = feature_blocks[0].shape[1]
            node_features, schedulable_mask = structure_cache.feature_buffers(
                (structure.num_nodes, width)
            )
            np.concatenate(feature_blocks, axis=0, out=node_features)
            np.concatenate(mask_blocks, out=schedulable_mask)
        else:
            node_features = np.vstack(feature_blocks)
            schedulable_mask = np.concatenate(mask_blocks)
        features = GraphFeatures(
            structure=structure,
            node_features=node_features,
            schedulable_mask=schedulable_mask,
        )
        return cls(features, components, node_slices, job_slices)
