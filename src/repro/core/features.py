"""Feature extraction: turn an :class:`Observation` into graph-neural-network inputs.

Per §6.1, the raw feature vector of a stage contains: (i) the number of tasks
remaining in the stage, (ii) the average task duration, (iii) the number of
executors currently working on the stage's job, (iv) the number of free
executors, and (v) whether the free executors are local to the job.  An
optional sixth feature carries the workload's mean interarrival time (the
"hint" of Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..simulator.environment import Observation
from ..simulator.jobdag import JobDAG, Node

__all__ = ["FeatureConfig", "GraphFeatures", "build_graph_features"]


@dataclass
class FeatureConfig:
    """Normalisation scales and optional extra features."""

    task_scale: float = 200.0
    duration_scale: float = 100.0
    executor_scale: float = 50.0
    include_interarrival_hint: bool = False
    interarrival_scale: float = 100.0
    # Appendix J: when task-duration estimates are unavailable for unseen jobs,
    # the duration feature is zeroed out and Decima must rely on the graph
    # structure and task counts alone.
    include_task_duration: bool = True

    @property
    def num_features(self) -> int:
        return 6 if self.include_interarrival_hint else 5


@dataclass
class GraphFeatures:
    """Vectorised view of all job DAGs in one observation.

    Node rows are ordered job-by-job in the order of ``jobs``; ``node_index``
    maps a :class:`Node` object back to its row.
    """

    jobs: list[JobDAG]
    nodes: list[Node]
    node_features: np.ndarray        # (N, F)
    adjacency: np.ndarray            # (N, N); adjacency[parent_row, child_row] = 1
    node_heights: np.ndarray         # (N,) longest distance to a leaf
    job_ids: np.ndarray              # (N,) row -> job index
    schedulable_mask: np.ndarray     # (N,) bool
    node_index: dict[int, int] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    def row_of(self, node: Node) -> int:
        return self.node_index[id(node)]


def _node_heights(jobs: list[JobDAG], nodes: list[Node], node_index: dict[int, int]) -> np.ndarray:
    """Longest distance from each node to a leaf (0 for leaves).

    Message passing proceeds height-by-height so that a node is updated only
    after all of its children have received their final embedding (Fig. 5a).
    """
    heights = np.zeros(len(nodes), dtype=np.int64)
    for job in jobs:
        # Reverse topological order: children are processed before parents.
        for node in reversed(job._topo_order):
            row = node_index[id(node)]
            child_heights = [heights[node_index[id(child)]] for child in node.children]
            heights[row] = 1 + max(child_heights) if child_heights else 0
    return heights


def build_graph_features(
    observation: Observation,
    config: Optional[FeatureConfig] = None,
    interarrival_hint: Optional[float] = None,
) -> GraphFeatures:
    """Assemble the node-feature matrix, adjacency and masks for the GNN."""
    config = config or FeatureConfig()
    jobs = list(observation.job_dags)
    nodes: list[Node] = []
    job_ids: list[int] = []
    node_index: dict[int, int] = {}
    for job_pos, job in enumerate(jobs):
        for node in job.nodes:
            node_index[id(node)] = len(nodes)
            nodes.append(node)
            job_ids.append(job_pos)

    num_nodes = len(nodes)
    features = np.zeros((num_nodes, config.num_features))
    free = observation.num_free_executors / config.executor_scale
    for row, node in enumerate(nodes):
        job = node.job
        remaining_tasks = node.num_tasks - node.num_finished_tasks
        local = 1.0 if observation.source_job is job else 0.0
        features[row, 0] = remaining_tasks / config.task_scale
        if config.include_task_duration:
            features[row, 1] = node.task_duration / config.duration_scale
        features[row, 2] = node.num_running_tasks / config.executor_scale
        features[row, 3] = free
        features[row, 4] = local
        if config.include_interarrival_hint:
            hint = interarrival_hint if interarrival_hint is not None else 0.0
            features[row, 5] = hint / config.interarrival_scale

    adjacency = np.zeros((num_nodes, num_nodes))
    for job in jobs:
        for node in job.nodes:
            parent_row = node_index[id(node)]
            for child in node.children:
                adjacency[parent_row, node_index[id(child)]] = 1.0

    schedulable_rows = np.zeros(num_nodes, dtype=bool)
    for node in observation.schedulable_nodes:
        schedulable_rows[node_index[id(node)]] = True

    heights = _node_heights(jobs, nodes, node_index)
    return GraphFeatures(
        jobs=jobs,
        nodes=nodes,
        node_features=features,
        adjacency=adjacency,
        node_heights=heights,
        job_ids=np.asarray(job_ids, dtype=np.intp),
        schedulable_mask=schedulable_rows,
        node_index=node_index,
    )
