"""Saving, loading and rebuilding Decima models.

Two serialization forms live here: npz checkpoints on disk
(:func:`save_agent` / :func:`load_agent_weights`) and in-memory
:class:`AgentSpec` records that let another process reconstruct an
architecturally identical agent (used by the parallel rollout workers, which
rebuild the agent once and then refresh its weights from ``state_dict``
payloads every iteration).
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .agent import DecimaAgent, DecimaConfig
from .nn import Module

__all__ = [
    "save_agent",
    "load_agent_weights",
    "AgentSpec",
    "agent_spec",
    "build_agent",
    "parameter_fingerprint",
]


def parameter_fingerprint(model: Module, decimals: int = 5) -> str:
    """Stable hash of a model's parameters, rounded to ``decimals`` places.

    Used by the equivalence suite to assert that fixed-seed training lands on
    the same weights under the sparse and dense inference paths: the two paths
    sum child messages in different floating-point orders, so parameters agree
    to ~1e-12 but not bit-for-bit — rounding before hashing absorbs that while
    still catching any real divergence.
    """
    digest = hashlib.sha256()
    for parameter in model.parameters():
        # ``+ 0.0`` normalises -0.0 (np.round(-1e-9, 5)) to +0.0 so the two
        # byte patterns hash identically.
        rounded = np.round(parameter.data, decimals) + 0.0
        digest.update(rounded.tobytes())
        digest.update(str(rounded.shape).encode())
    return digest.hexdigest()


@dataclass
class AgentSpec:
    """Picklable description of an agent's architecture (not its weights)."""

    total_executors: int
    config: DecimaConfig


def agent_spec(agent: DecimaAgent) -> AgentSpec:
    """Capture everything needed to rebuild ``agent`` in another process."""
    return AgentSpec(
        total_executors=agent.total_executors,
        config=copy.deepcopy(agent.config),
    )


def build_agent(
    spec: AgentSpec, state: Optional[dict[str, np.ndarray]] = None
) -> DecimaAgent:
    """Construct a fresh agent from ``spec``, optionally loading weights."""
    agent = DecimaAgent(spec.total_executors, config=copy.deepcopy(spec.config))
    if state is not None:
        agent.load_state_dict(state)
    return agent


def save_agent(agent: DecimaAgent, path: Union[str, Path]) -> Path:
    """Write the agent's parameters (and a config summary) to ``path`` (.npz)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = agent.state_dict()
    meta = {
        "total_executors": agent.total_executors,
        "num_parameters": agent.num_parameters(),
        "config": {
            key: value
            for key, value in asdict(agent.config).items()
            if isinstance(value, (int, float, bool, str, type(None)))
        },
    }
    np.savez(path, __meta__=json.dumps(meta), **state)
    return path


def load_agent_weights(agent: DecimaAgent, path: Union[str, Path]) -> DecimaAgent:
    """Load parameters saved by :func:`save_agent` into an existing agent.

    The agent must have been constructed with the same architecture (the
    parameter count and shapes are checked by ``load_state_dict``).
    """
    archive = np.load(Path(path), allow_pickle=False)
    state = {key: archive[key] for key in archive.files if key != "__meta__"}
    agent.load_state_dict(state)
    return agent
