"""Saving, loading and rebuilding Decima models.

Three serialization forms live here:

* :class:`CheckpointStore` — the checkpoint API: a directory of versioned
  npz checkpoints with monotonic version ids, fingerprint-verified loads, an
  atomically updated ``latest.json`` pointer and bounded retention.  Training
  runs save into a store; the serving layer and the online-learning loop load
  and append to the same store.
* npz checkpoints on disk via the original free functions (:func:`save_agent`
  / :func:`load_agent` / :func:`load_latest` / :func:`load_agent_weights`).
  These predate the store and are kept as thin compatibility wrappers — new
  code should construct a :class:`CheckpointStore`.
* in-memory :class:`AgentSpec` records that let another process reconstruct
  an architecturally identical agent (used by the parallel rollout workers
  and the fleet's shard processes, which rebuild the agent once and then
  refresh its weights from ``state_dict`` payloads).
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .agent import DecimaAgent, DecimaConfig
from .features import FeatureConfig
from .nn import Module

__all__ = [
    "CheckpointInfo",
    "CheckpointStore",
    "save_agent",
    "load_agent",
    "load_agent_weights",
    "load_latest",
    "AgentSpec",
    "agent_spec",
    "build_agent",
    "parameter_fingerprint",
    "LATEST_POINTER",
]

# File written next to every checkpoint so tools can find the newest one
# without knowing its name (``load_latest`` and the store read it).
LATEST_POINTER = "latest.json"

# Store checkpoints are named ckpt-<version>.npz with a fixed-width version so
# lexicographic and numeric order agree.
_CHECKPOINT_PREFIX = "ckpt-"
_CHECKPOINT_PATTERN = re.compile(r"^ckpt-(\d{6,})\.npz$")


def parameter_fingerprint(model: Module, decimals: int = 5) -> str:
    """Stable hash of a model's parameters, rounded to ``decimals`` places.

    Used by the equivalence suite to assert that fixed-seed training lands on
    the same weights under the sparse and dense inference paths: the two paths
    sum child messages in different floating-point orders, so parameters agree
    to ~1e-12 but not bit-for-bit — rounding before hashing absorbs that while
    still catching any real divergence.
    """
    digest = hashlib.sha256()
    for parameter in model.parameters():
        # ``+ 0.0`` normalises -0.0 (np.round(-1e-9, 5)) to +0.0 so the two
        # byte patterns hash identically.
        rounded = np.round(parameter.data, decimals) + 0.0
        digest.update(rounded.tobytes())
        digest.update(str(rounded.shape).encode())
    return digest.hexdigest()


@dataclass
class AgentSpec:
    """Picklable description of an agent's architecture (not its weights)."""

    total_executors: int
    config: DecimaConfig


def agent_spec(agent: DecimaAgent) -> AgentSpec:
    """Capture everything needed to rebuild ``agent`` in another process."""
    return AgentSpec(
        total_executors=agent.total_executors,
        config=copy.deepcopy(agent.config),
    )


def build_agent(
    spec: AgentSpec, state: Optional[dict[str, np.ndarray]] = None
) -> DecimaAgent:
    """Construct a fresh agent from ``spec``, optionally loading weights."""
    agent = DecimaAgent(spec.total_executors, config=copy.deepcopy(spec.config))
    if state is not None:
        agent.load_state_dict(state)
    return agent


def _config_to_jsonable(config: DecimaConfig) -> dict:
    """Full architecture description of ``config`` as plain JSON types.

    ``asdict`` already recurses into the nested :class:`FeatureConfig`; tuples
    become lists on the JSON side and are restored by
    :func:`_config_from_jsonable`.
    """
    return asdict(config)


def _config_from_jsonable(payload: dict) -> DecimaConfig:
    """Rebuild a :class:`DecimaConfig` from checkpoint metadata.

    Unknown keys are ignored (newer checkpoints read by older code) and
    missing keys keep their defaults (older checkpoints, which only stored
    scalar fields, read by newer code).
    """
    known = {field.name for field in DecimaConfig.__dataclass_fields__.values()}
    kwargs = {key: value for key, value in payload.items() if key in known}
    if isinstance(kwargs.get("feature"), dict):
        feature_known = {f.name for f in FeatureConfig.__dataclass_fields__.values()}
        kwargs["feature"] = FeatureConfig(
            **{k: v for k, v in kwargs["feature"].items() if k in feature_known}
        )
    else:
        kwargs.pop("feature", None)
    if "hidden_sizes" in kwargs:
        kwargs["hidden_sizes"] = tuple(kwargs["hidden_sizes"])
    return DecimaConfig(**kwargs)


def save_agent(
    agent: DecimaAgent, path: Union[str, Path], update_latest: bool = True
) -> Path:
    """Write the agent's parameters and full config to ``path`` (.npz).

    Unless ``update_latest`` is false, a ``latest.json`` pointer is (re)written
    next to the checkpoint so :func:`load_latest` can start from the run
    directory without knowing the checkpoint's name.
    """
    path = Path(path)
    if path.suffix != ".npz":
        # np.savez appends ".npz" itself when missing; normalise first so the
        # returned path and the latest.json pointer name the real file.
        path = path.with_name(path.name + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    state = agent.state_dict()
    meta = {
        "total_executors": agent.total_executors,
        "num_parameters": agent.num_parameters(),
        "config": _config_to_jsonable(agent.config),
        "fingerprint": parameter_fingerprint(agent),
    }
    np.savez(path, __meta__=json.dumps(meta), **state)
    if update_latest:
        pointer = path.parent / LATEST_POINTER
        pointer.write_text(
            json.dumps({"checkpoint": path.name, "fingerprint": meta["fingerprint"]},
                       indent=2, sort_keys=True)
            + "\n"
        )
    return path


def _read_meta(archive) -> dict:
    if "__meta__" not in archive.files:
        raise ValueError("checkpoint has no __meta__ entry; was it saved by save_agent?")
    try:
        meta = json.loads(str(archive["__meta__"]))
    except json.JSONDecodeError as error:
        raise ValueError(f"checkpoint metadata is corrupt: {error}") from None
    if not isinstance(meta, dict) or "total_executors" not in meta:
        raise ValueError(
            "checkpoint metadata is corrupt: missing the 'total_executors' entry"
        )
    return meta


def load_agent(path: Union[str, Path]) -> DecimaAgent:
    """Reconstruct an agent (architecture AND weights) from a checkpoint.

    Unlike :func:`load_agent_weights`, no pre-built agent is needed: the
    architecture is rebuilt from the checkpoint's own metadata.
    """
    archive = np.load(Path(path), allow_pickle=False)
    meta = _read_meta(archive)
    config = _config_from_jsonable(meta.get("config", {}))
    agent = DecimaAgent(int(meta["total_executors"]), config=config)
    state = {key: archive[key] for key in archive.files if key != "__meta__"}
    agent.load_state_dict(state)
    return agent


def load_latest(directory: Union[str, Path]) -> DecimaAgent:
    """Load the checkpoint the directory's ``latest.json`` pointer names.

    The pointer's recorded parameter fingerprint is verified against the
    loaded weights, so a checkpoint file swapped or truncated behind the
    pointer's back fails loudly instead of serving the wrong model.
    """
    directory = Path(directory)
    pointer = directory / LATEST_POINTER
    if not pointer.exists():
        raise FileNotFoundError(
            f"{pointer} not found — save a checkpoint with save_agent() first"
        )
    try:
        payload = json.loads(pointer.read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"{pointer} is corrupt: {error}") from None
    if not isinstance(payload, dict) or "checkpoint" not in payload:
        raise ValueError(f"{pointer} is corrupt: missing the 'checkpoint' entry")
    agent = load_agent(directory / payload["checkpoint"])
    expected = payload.get("fingerprint")
    if expected is not None:
        actual = parameter_fingerprint(agent)
        if actual != expected:
            raise ValueError(
                f"checkpoint {payload['checkpoint']!r} does not match the "
                f"{LATEST_POINTER} fingerprint (expected {expected}, loaded "
                f"{actual}) — was the file replaced without updating the pointer?"
            )
    return agent


def load_agent_weights(agent: DecimaAgent, path: Union[str, Path]) -> DecimaAgent:
    """Load parameters saved by :func:`save_agent` into an existing agent.

    The agent must have been constructed with the same architecture (the
    parameter count and shapes are checked by ``load_state_dict``).
    """
    archive = np.load(Path(path), allow_pickle=False)
    state = {key: archive[key] for key in archive.files if key != "__meta__"}
    agent.load_state_dict(state)
    return agent


@dataclass(frozen=True)
class CheckpointInfo:
    """One versioned checkpoint inside a :class:`CheckpointStore`."""

    version: int
    path: Path
    fingerprint: str


class CheckpointStore:
    """Directory of versioned agent checkpoints with an atomic latest pointer.

    Checkpoints are named ``ckpt-<version>.npz`` with strictly increasing
    version ids, so concurrent readers can always tell which of two
    checkpoints is newer.  ``latest.json`` is rewritten atomically (tmp file +
    ``os.replace``) after every save and stays readable by the legacy
    :func:`load_latest` — the store's pointer is a superset of the old format
    (it adds a ``version`` entry).

    ``retain`` bounds disk usage: after each save, versions older than the
    newest ``retain`` are deleted.  Pass ``retain=None`` to keep everything.
    """

    def __init__(self, directory: Union[str, Path], retain: Optional[int] = 8):
        if retain is not None and retain < 1:
            raise ValueError(f"retain must be >= 1 or None, got {retain}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.retain = retain

    # -- enumeration ------------------------------------------------------

    def versions(self) -> list[int]:
        """Sorted version ids of every checkpoint currently on disk."""
        found = []
        for entry in self.directory.iterdir():
            match = _CHECKPOINT_PATTERN.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self) -> Optional[int]:
        """Newest version on disk, or None for an empty store."""
        versions = self.versions()
        return versions[-1] if versions else None

    def path_for(self, version: int) -> Path:
        return self.directory / f"{_CHECKPOINT_PREFIX}{version:06d}.npz"

    def info(self, version: Optional[int] = None) -> CheckpointInfo:
        """Metadata for ``version`` (default: latest) without loading weights."""
        version = self._resolve_version(version)
        path = self.path_for(version)
        archive = np.load(path, allow_pickle=False)
        meta = _read_meta(archive)
        return CheckpointInfo(
            version=version, path=path, fingerprint=meta.get("fingerprint", "")
        )

    # -- save / load ------------------------------------------------------

    def save(self, agent: DecimaAgent) -> CheckpointInfo:
        """Write ``agent`` as the next version and move the latest pointer.

        The checkpoint file lands fully before the pointer flips, and the
        pointer flip itself is an ``os.replace`` — a crash between the two
        leaves the store pointing at the previous (complete) version.
        """
        latest = self.latest_version()
        version = 1 if latest is None else latest + 1
        path = save_agent(agent, self.path_for(version), update_latest=False)
        fingerprint = parameter_fingerprint(agent)
        self._write_pointer(path.name, fingerprint, version)
        self._collect_garbage(version)
        return CheckpointInfo(version=version, path=path, fingerprint=fingerprint)

    def load(self, version: Optional[int] = None) -> DecimaAgent:
        """Load ``version`` (default: latest), verifying its fingerprint.

        The fingerprint stored inside the npz metadata must match the loaded
        weights; for the latest version, the pointer's fingerprint is checked
        too, so a file swapped behind the pointer's back fails loudly.
        """
        resolved = self._resolve_version(version)
        path = self.path_for(resolved)
        agent = load_agent(path)
        archive = np.load(path, allow_pickle=False)
        meta = _read_meta(archive)
        expected = meta.get("fingerprint")
        actual = parameter_fingerprint(agent)
        if expected is not None and actual != expected:
            raise ValueError(
                f"checkpoint {path.name!r} does not match its recorded "
                f"fingerprint (expected {expected}, loaded {actual})"
            )
        if version is None:
            pointer = self._read_pointer()
            if pointer is not None and pointer.get("fingerprint") not in (None, actual):
                raise ValueError(
                    f"checkpoint {path.name!r} does not match the "
                    f"{LATEST_POINTER} fingerprint — was the file replaced "
                    "without updating the pointer?"
                )
        return agent

    def load_state(self, version: Optional[int] = None) -> dict[str, np.ndarray]:
        """Raw ``state_dict`` payload of ``version`` (default: latest)."""
        version = self._resolve_version(version)
        archive = np.load(self.path_for(version), allow_pickle=False)
        return {key: archive[key] for key in archive.files if key != "__meta__"}

    # -- internals --------------------------------------------------------

    def _resolve_version(self, version: Optional[int]) -> int:
        if version is None:
            latest = self.latest_version()
            if latest is None:
                raise FileNotFoundError(
                    f"checkpoint store {self.directory} is empty — save() first"
                )
            return latest
        if not self.path_for(version).exists():
            raise FileNotFoundError(
                f"checkpoint version {version} not found in {self.directory} "
                f"(have {self.versions() or 'none'})"
            )
        return version

    def _write_pointer(self, name: str, fingerprint: str, version: int) -> None:
        pointer = self.directory / LATEST_POINTER
        payload = {"checkpoint": name, "fingerprint": fingerprint, "version": version}
        tmp = pointer.with_name(pointer.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, pointer)

    def _read_pointer(self) -> Optional[dict]:
        pointer = self.directory / LATEST_POINTER
        if not pointer.exists():
            return None
        try:
            payload = json.loads(pointer.read_text())
        except json.JSONDecodeError as error:
            raise ValueError(f"{pointer} is corrupt: {error}") from None
        return payload if isinstance(payload, dict) else None

    def _collect_garbage(self, newest: int) -> None:
        if self.retain is None:
            return
        for version in self.versions():
            if version <= newest - self.retain:
                self.path_for(version).unlink(missing_ok=True)
