"""Saving and loading trained Decima models (npz checkpoints)."""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

import numpy as np

from .agent import DecimaAgent

__all__ = ["save_agent", "load_agent_weights"]


def save_agent(agent: DecimaAgent, path: Union[str, Path]) -> Path:
    """Write the agent's parameters (and a config summary) to ``path`` (.npz)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = agent.state_dict()
    meta = {
        "total_executors": agent.total_executors,
        "num_parameters": agent.num_parameters(),
        "config": {
            key: value
            for key, value in asdict(agent.config).items()
            if isinstance(value, (int, float, bool, str, type(None)))
        },
    }
    np.savez(path, __meta__=json.dumps(meta), **state)
    return path


def load_agent_weights(agent: DecimaAgent, path: Union[str, Path]) -> DecimaAgent:
    """Load parameters saved by :func:`save_agent` into an existing agent.

    The agent must have been constructed with the same architecture (the
    parameter count and shapes are checked by ``load_state_dict``).
    """
    archive = np.load(Path(path), allow_pickle=False)
    state = {key: archive[key] for key in archive.files if key != "__meta__"}
    agent.load_state_dict(state)
    return agent
