"""Pluggable rollout backends: serial in-process and parallel worker-pool.

The paper trains Decima with 16 parallel rollout workers that collect the
``N`` same-arrival-sequence episodes of every iteration concurrently
(§5.3, Algorithm 1).  This module provides that master/worker split for
:class:`~repro.core.reinforce.ReinforceTrainer`:

* :class:`SerialRolloutBackend` collects episodes one after another in the
  training process.  Its random-number consumption order is exactly that of
  the original single-process trainer, so fixed-seed runs are bit-identical.
* :class:`ParallelRolloutBackend` owns a persistent
  :class:`RolloutWorkerPool` of worker processes.  Each iteration the master
  serializes the agent's parameters (the ``state_dict`` machinery from
  :mod:`repro.core.checkpoints`), ships per-episode job sequences and seeds
  to the workers, and gets back :class:`EpisodeOutcome` records that contain
  only plain numpy arrays.  Autograd graphs never cross a process boundary:
  the per-episode policy-gradient backward pass runs *inside* the worker that
  collected the episode (it still holds the log-prob/entropy tensors), and
  only numpy gradient arrays travel back to the master, which averages them
  and applies the Adam update — the paper's Algorithm 1 split.

Episode results are deterministic functions of the trainer seed: the master
draws one environment seed and one action-sampling seed per episode, and each
worker builds a fresh ``np.random.Generator`` from the episode's action seed.
Parallel training therefore produces identical results regardless of how many
workers the episodes are spread over (though it intentionally differs from
the serial stream, which interleaves episode collection with seed draws).
"""

from __future__ import annotations

import abc
import multiprocessing as mp
import os
import traceback
from dataclasses import dataclass, replace
from typing import Callable, Optional

import numpy as np

from ..simulator.environment import SchedulingEnvironment, SimulatorConfig
from ..simulator.jobdag import JobDAG
from .agent import DecimaAgent
from .checkpoints import AgentSpec, agent_spec, build_agent
from .rollout import Trajectory, collect_rollout

__all__ = [
    "EpisodeSpec",
    "EpisodeOutcome",
    "IterationPlan",
    "RolloutBackend",
    "SerialRolloutBackend",
    "ParallelRolloutBackend",
    "PipeWorkerPool",
    "RolloutWorkerPool",
    "run_episode",
    "episode_loss",
    "accumulate_episode_gradients",
    "outcome_from_trajectory",
]

JobFactory = Callable[[np.random.Generator], "list[JobDAG]"]


# --------------------------------------------------------------------- payloads
@dataclass
class EpisodeSpec:
    """Everything a worker needs to collect one episode (picklable)."""

    jobs: list[JobDAG]
    episode_time: float
    env_seed: int
    # Seed of the per-episode action-sampling generator.  ``None`` falls back
    # to the worker's own persistent generator (seeded per worker at startup),
    # at the cost of results depending on the episode-to-worker assignment.
    action_seed: Optional[int] = None
    max_actions: Optional[int] = None


@dataclass
class EpisodeOutcome:
    """Plain-numpy record of one collected episode (no autograd tensors).

    ``num_finished_jobs``/``average_jct`` are ``None`` when the episode has no
    simulation result / no finished jobs, mirroring how the trainer's
    iteration statistics skip those episodes.
    """

    rewards: np.ndarray
    wall_times: np.ndarray
    num_finished_jobs: Optional[int] = None
    average_jct: Optional[float] = None

    @property
    def num_actions(self) -> int:
        return int(len(self.rewards))

    @property
    def total_reward(self) -> float:
        return float(self.rewards.sum()) if self.rewards.size else 0.0


@dataclass
class IterationPlan:
    """One training iteration's worth of episode collection."""

    num_episodes: int
    episode_time: float
    make_jobs: JobFactory
    max_actions: Optional[int] = None


def outcome_from_trajectory(trajectory: Trajectory) -> EpisodeOutcome:
    """Strip a trajectory down to its picklable numpy payload."""
    result = trajectory.result
    num_finished = len(result.finished_jobs) if result is not None else None
    average_jct = (
        float(result.average_jct) if result is not None and result.finished_jobs else None
    )
    return EpisodeOutcome(
        rewards=trajectory.rewards(),
        wall_times=trajectory.wall_times(),
        num_finished_jobs=num_finished,
        average_jct=average_jct,
    )


# ------------------------------------------------------------- episode running
def run_episode(
    agent: DecimaAgent,
    simulator_config: SimulatorConfig,
    spec: EpisodeSpec,
    rng: Optional[np.random.Generator] = None,
    step_hook: Optional[Callable] = None,
) -> Trajectory:
    """Collect one episode described by ``spec`` (used by workers and tests).

    ``step_hook`` passes through to :func:`~repro.core.rollout.collect_rollout`
    — the verification harness's instrumentation seam.
    """
    if rng is None:
        if spec.action_seed is None:
            raise ValueError("EpisodeSpec.action_seed is required when no rng is given")
        rng = np.random.default_rng(spec.action_seed)
    environment = SchedulingEnvironment(
        replace(simulator_config, max_time=spec.episode_time)
    )
    return collect_rollout(
        environment,
        agent,
        spec.jobs,
        rng=rng,
        seed=spec.env_seed,
        max_actions=spec.max_actions,
        step_hook=step_hook,
    )


def episode_loss(trajectory: Trajectory, advantages: np.ndarray, entropy_weight: float):
    """REINFORCE loss of one episode: -advantage·log-prob minus entropy bonus."""
    loss = None
    for transition, advantage in zip(trajectory.transitions, advantages):
        term = transition.log_prob * float(-advantage)
        term = term - transition.entropy * float(entropy_weight)
        loss = term if loss is None else loss + term
    return loss


def accumulate_episode_gradients(
    agent: DecimaAgent,
    trajectories: list[Trajectory],
    advantages: list[np.ndarray],
    entropy_weight: float,
) -> list[Optional[np.ndarray]]:
    """Backward-pass every episode and return per-parameter gradient sums."""
    agent.zero_grad()
    for trajectory, episode_advantages in zip(trajectories, advantages):
        loss = episode_loss(trajectory, episode_advantages, entropy_weight)
        if loss is not None:
            loss.backward()
    return [parameter.grad for parameter in agent.parameters()]


# -------------------------------------------------------------------- backends
class RolloutBackend(abc.ABC):
    """Strategy for collecting an iteration's episodes and their gradients.

    The trainer first calls :meth:`collect`, computes baselines and advantages
    from the returned numpy payloads, then calls :meth:`compute_gradients` for
    the matching backward passes.  Gradients are *summed* over episodes; the
    trainer divides by the episode count before the optimizer step.
    """

    @abc.abstractmethod
    def collect(
        self,
        agent: DecimaAgent,
        simulator_config: SimulatorConfig,
        plan: IterationPlan,
        rng: np.random.Generator,
    ) -> list[EpisodeOutcome]:
        """Collect ``plan.num_episodes`` episodes with the agent's current weights."""

    @abc.abstractmethod
    def compute_gradients(
        self,
        agent: DecimaAgent,
        advantages: list[np.ndarray],
        entropy_weight: float,
    ) -> list[Optional[np.ndarray]]:
        """Per-parameter gradient sums for the episodes of the last collect()."""

    def close(self) -> None:
        """Release any resources (worker processes); safe to call twice."""

    def __enter__(self) -> "RolloutBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialRolloutBackend(RolloutBackend):
    """Single-process episode collection, bit-identical to the original trainer.

    The trainer's generator is consumed in exactly the historical order —
    jobs, environment seed, then the action sampling of the episode itself —
    so fixed-seed training runs reproduce the pre-backend behaviour exactly.
    """

    name = "serial"

    def __init__(self) -> None:
        self._trajectories: list[Trajectory] = []

    def collect(
        self,
        agent: DecimaAgent,
        simulator_config: SimulatorConfig,
        plan: IterationPlan,
        rng: np.random.Generator,
    ) -> list[EpisodeOutcome]:
        self._trajectories = []
        for _ in range(plan.num_episodes):
            jobs = plan.make_jobs(rng)
            environment = SchedulingEnvironment(
                replace(simulator_config, max_time=plan.episode_time)
            )
            seed = int(rng.integers(0, 2**31 - 1))
            trajectory = collect_rollout(
                environment,
                agent,
                jobs,
                rng=rng,
                seed=seed,
                max_actions=plan.max_actions,
            )
            self._trajectories.append(trajectory)
        return [outcome_from_trajectory(t) for t in self._trajectories]

    def compute_gradients(
        self,
        agent: DecimaAgent,
        advantages: list[np.ndarray],
        entropy_weight: float,
    ) -> list[Optional[np.ndarray]]:
        return accumulate_episode_gradients(
            agent, self._trajectories, advantages, entropy_weight
        )


# ----------------------------------------------------------------- worker pool
def _worker_main(
    conn,
    simulator_config: SimulatorConfig,
    spec: AgentSpec,
    worker_seed: int,
) -> None:
    """Loop of one rollout worker process.

    Protocol (one ``(command, payload)`` tuple per message, reply is
    ``("ok", value)`` or ``("error", traceback)``):

    * ``collect``: payload ``(state_dict, interarrival_hint, [EpisodeSpec])``
      → list of :class:`EpisodeOutcome`.  Trajectories (with their autograd
      tensors) stay in the worker for the gradient phase.  ``state_dict`` is
      ``None`` when the worker has no episodes this iteration.
    * ``gradients``: payload ``([advantages], entropy_weight)`` → list of
      per-parameter gradient sums (numpy arrays or ``None``).
    * ``close``: exit the loop.
    """
    agent = build_agent(spec)
    worker_rng = np.random.default_rng(worker_seed)
    trajectories: list[Trajectory] = []
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        command, payload = message
        if command == "close":
            return
        try:
            if command == "collect":
                state, interarrival_hint, episode_specs = payload
                if state is not None:
                    agent.load_state_dict(state)
                    agent.interarrival_hint = interarrival_hint
                trajectories = [
                    run_episode(
                        agent,
                        simulator_config,
                        episode_spec,
                        rng=worker_rng if episode_spec.action_seed is None else None,
                    )
                    for episode_spec in episode_specs
                ]
                reply = [outcome_from_trajectory(t) for t in trajectories]
            elif command == "gradients":
                advantages, entropy_weight = payload
                reply = accumulate_episode_gradients(
                    agent, trajectories, advantages, entropy_weight
                )
                # Autograd graphs are no longer needed; free them (and the
                # graph cache pinning the iteration's job DAGs) before the
                # next collect so peak memory stays at one iteration's worth.
                trajectories = []
                agent.reset_graph_cache()
            else:
                raise ValueError(f"unknown worker command {command!r}")
            conn.send(("ok", reply))
        except Exception:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                return


class PipeWorkerPool:
    """A persistent pool of pipe-connected worker processes.

    The shared master/worker plumbing behind :class:`RolloutWorkerPool` and
    the sweep engine's pool: workers are started once (fork where available,
    else spawn) on a ``target`` loop that serves ``(command, payload)``
    requests — replying ``("ok", value)`` or ``("error", traceback)`` — until
    :meth:`close`.  ``worker_args(index)`` supplies each worker's extra
    constructor arguments (after the pipe connection).
    """

    worker_description = "worker"

    def __init__(
        self,
        num_workers: int,
        target: Callable,
        worker_args: Callable[[int], tuple],
        start_method: Optional[str] = None,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        context = mp.get_context(start_method)
        self.num_workers = int(num_workers)
        self._connections = []
        self._processes = []
        self._closed = False
        for index in range(self.num_workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=target,
                args=(child_conn, *worker_args(index)),
                name=f"{self.worker_description.replace(' ', '-')}-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)

    @property
    def is_alive(self) -> bool:
        return not self._closed and all(p.is_alive() for p in self._processes)

    def run(self, command: str, payloads: list) -> list:
        """Send one payload per worker, wait for and return every reply."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        if len(payloads) != self.num_workers:
            raise ValueError(
                f"expected {self.num_workers} payloads, got {len(payloads)}"
            )
        for connection, payload in zip(self._connections, payloads):
            connection.send((command, payload))
        # Drain every reply before raising so one worker's failure cannot
        # leave other workers' replies queued and desynchronize later runs.
        replies = []
        errors = []
        for index, connection in enumerate(self._connections):
            try:
                status, value = connection.recv()
            except EOFError:
                errors.append(f"{self.worker_description} {index} died without replying")
                continue
            if status != "ok":
                errors.append(f"{self.worker_description} {index} failed:\n{value}")
            else:
                replies.append(value)
        if errors:
            raise RuntimeError("\n".join(errors))
        return replies

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(("close", None))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for connection in self._connections:
            connection.close()

    def __enter__(self) -> "PipeWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown guard
        try:
            self.close()
        except Exception:
            pass


class RolloutWorkerPool(PipeWorkerPool):
    """A persistent pool of rollout worker processes.

    Workers rebuild the agent from its
    :class:`~repro.core.checkpoints.AgentSpec` and then serve
    ``collect``/``gradients`` requests until :meth:`close`.  Worker ``i`` is
    seeded with ``seed + i`` for the fallback per-worker generator.
    """

    worker_description = "rollout worker"

    def __init__(
        self,
        simulator_config: SimulatorConfig,
        spec: AgentSpec,
        num_workers: int,
        seed: int = 0,
        start_method: Optional[str] = None,
    ) -> None:
        super().__init__(
            num_workers,
            target=_worker_main,
            worker_args=lambda index: (simulator_config, spec, seed + index),
            start_method=start_method,
        )


class ParallelRolloutBackend(RolloutBackend):
    """Collect episodes on a persistent multiprocessing worker pool.

    ``num_workers`` defaults to the machine's CPU count (the paper uses 16
    workers).  The pool is created lazily on the first :meth:`collect` — it
    needs the agent's architecture — and reused across iterations; if it was
    closed (or a worker died), the next collect transparently restarts it.
    """

    name = "parallel"

    def __init__(
        self,
        num_workers: Optional[int] = None,
        seed: int = 0,
        start_method: Optional[str] = None,
    ) -> None:
        if num_workers is None:
            num_workers = max(1, os.cpu_count() or 1)
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = int(num_workers)
        self.seed = int(seed)
        self.start_method = start_method
        self._pool: Optional[RolloutWorkerPool] = None
        self._assignment: list[int] = []

    @property
    def pool(self) -> Optional[RolloutWorkerPool]:
        return self._pool

    def _ensure_pool(
        self, agent: DecimaAgent, simulator_config: SimulatorConfig
    ) -> RolloutWorkerPool:
        if self._pool is not None and not self._pool.is_alive:
            self._pool.close()
            self._pool = None
        if self._pool is None:
            self._pool = RolloutWorkerPool(
                simulator_config,
                agent_spec(agent),
                self.num_workers,
                seed=self.seed,
                start_method=self.start_method,
            )
        return self._pool

    def collect(
        self,
        agent: DecimaAgent,
        simulator_config: SimulatorConfig,
        plan: IterationPlan,
        rng: np.random.Generator,
    ) -> list[EpisodeOutcome]:
        pool = self._ensure_pool(agent, simulator_config)
        specs = []
        for _ in range(plan.num_episodes):
            jobs = plan.make_jobs(rng)
            env_seed = int(rng.integers(0, 2**31 - 1))
            action_seed = int(rng.integers(0, 2**31 - 1))
            specs.append(
                EpisodeSpec(
                    jobs=jobs,
                    episode_time=plan.episode_time,
                    env_seed=env_seed,
                    action_seed=action_seed,
                    max_actions=plan.max_actions,
                )
            )
        self._assignment = [index % pool.num_workers for index in range(len(specs))]
        state = agent.state_dict()
        payloads = []
        for worker in range(pool.num_workers):
            worker_specs = [
                spec for spec, owner in zip(specs, self._assignment) if owner == worker
            ]
            if worker_specs:
                payloads.append((state, agent.interarrival_hint, worker_specs))
            else:
                # Idle worker this iteration: skip the weight payload entirely.
                payloads.append((None, None, []))
        replies = pool.run("collect", payloads)
        # Re-interleave the per-worker replies back into episode order.
        cursors = [0] * pool.num_workers
        outcomes = []
        for worker in self._assignment:
            outcomes.append(replies[worker][cursors[worker]])
            cursors[worker] += 1
        return outcomes

    def compute_gradients(
        self,
        agent: DecimaAgent,
        advantages: list[np.ndarray],
        entropy_weight: float,
    ) -> list[Optional[np.ndarray]]:
        if self._pool is None or len(advantages) != len(self._assignment):
            raise RuntimeError("compute_gradients() requires a matching collect() first")
        per_worker: list[list[np.ndarray]] = [[] for _ in range(self._pool.num_workers)]
        for episode_advantages, worker in zip(advantages, self._assignment):
            per_worker[worker].append(episode_advantages)
        replies = self._pool.run(
            "gradients",
            [(worker_advantages, entropy_weight) for worker_advantages in per_worker],
        )
        totals: list[Optional[np.ndarray]] = [None] * len(agent.parameters())
        for worker_grads in replies:
            for index, grad in enumerate(worker_grads):
                if grad is None:
                    continue
                if totals[index] is None:
                    totals[index] = np.array(grad, dtype=np.float64)
                else:
                    totals[index] = totals[index] + grad
        return totals

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._assignment = []
