"""Decima's graph neural network (§5.1).

The network embeds every stage of every job into a vector using the
aggregation of Eq. (1):

    e_v = g( sum_{u in children(v)} f(e_u) ) + prep(x_v)

and then summarises nodes into per-job embeddings ``y_i`` and a global
embedding ``z`` (Fig. 5b), using a *separate* pair of non-linear transforms
``(f, g)`` at every level — six transforms in total.  The two-level
non-linearity is what lets the network express max-like quantities such as the
critical path (Appendix E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autograd import Tensor, concat, gather_rows, scatter_add_rows, segment_sum
from .features import GraphFeatures
from .kernels import Workspace, get_backend, mlp_forward
from .nn import MLP, Module

__all__ = ["GNNConfig", "GraphEmbeddings", "GraphNeuralNetwork"]


@dataclass
class GNNConfig:
    """Sizes of the embedding network (paper defaults: 32/16 hidden units, dim-8 embeddings)."""

    num_features: int = 5
    embedding_dim: int = 8
    hidden_sizes: tuple[int, ...] = (32, 16)
    max_message_passing_depth: int = 8
    # Ablation switch (Appendix E / Fig. 19): drop the outer non-linearity g so
    # the aggregation is a plain sum of transformed child embeddings.
    two_level_aggregation: bool = True
    # Sparse frontier-restricted message passing (the default): at each height
    # only the frontier's children run through ``node_f`` and the aggregation
    # is a gather + segment-sum over edge index arrays.  ``False`` selects the
    # original dense formulation (full-width MLP passes and an O(N²) adjacency
    # matmul per height), kept as the numerical-equivalence oracle.
    sparse_message_passing: bool = True
    # Kernel backend for the inference data path (:meth:`forward_data`):
    # "numpy" is the reference; "numba" selects the optional JIT-compiled
    # gather/segment-sum + masked-softmax kernels and falls back to numpy when
    # numba is not installed.  Training always runs on the autograd path.
    kernel_backend: str = "numpy"


@dataclass
class GraphEmbeddings:
    """Outputs of the graph neural network for one observation.

    ``global_embedding`` has one row per *graph* in the input: a single row
    for an ordinary observation, and one row per component graph (session)
    when the input is a cross-session :class:`~repro.core.features.GraphBatch`
    mega-graph — each session's jobs summarise into their own ``z``, exactly
    as if the sessions had been embedded separately.
    """

    node_embeddings: Tensor   # (N, D)
    job_embeddings: Tensor    # (J, D)
    global_embedding: Tensor  # (G, D); G = 1 for a single observation


class GraphNeuralNetwork(Module):
    """Per-node, per-job and global embeddings via message passing."""

    def __init__(self, config: GNNConfig, rng: np.random.Generator):
        self.config = config
        dim = config.embedding_dim
        hidden = config.hidden_sizes
        # Node-level transforms: prep projects raw features, f/g implement Eq. (1).
        self.prep = MLP(config.num_features, dim, rng, hidden_sizes=hidden)
        self.node_f = MLP(dim, dim, rng, hidden_sizes=hidden)
        self.node_g = MLP(dim, dim, rng, hidden_sizes=hidden)
        # Job-level summary transforms (inputs: raw features + node embedding).
        self.job_f = MLP(config.num_features + dim, dim, rng, hidden_sizes=hidden)
        self.job_g = MLP(dim, dim, rng, hidden_sizes=hidden)
        # Global summary transforms (inputs: job embeddings).
        self.global_f = MLP(dim, dim, rng, hidden_sizes=hidden)
        self.global_g = MLP(dim, dim, rng, hidden_sizes=hidden)
        # Inference-only arena + kernel backend (resolved lazily so a config
        # naming the optional "numba" backend still constructs when the
        # dependency is absent — get_backend falls back to numpy).
        self.workspace = Workspace()
        self._kernels = None

    @property
    def kernels(self):
        if self._kernels is None:
            self._kernels = get_backend(self.config.kernel_backend)
        return self._kernels

    # ------------------------------------------------------------------ nodes
    def node_embeddings(self, graph: GraphFeatures) -> Tensor:
        """Bottom-up message passing over all DAGs at once (Eq. 1 / Fig. 5a)."""
        features = Tensor(graph.node_features)
        embeddings = self.prep(features)
        if graph.num_nodes == 0:
            return embeddings
        if self.config.sparse_message_passing:
            return self._sparse_node_embeddings(graph, embeddings)
        return self._dense_node_embeddings(graph, embeddings)

    def _sparse_node_embeddings(self, graph: GraphFeatures, embeddings: Tensor) -> Tensor:
        """Frontier-restricted propagation over the cached edge index arrays.

        At height ``h`` only the unique children feeding the frontier run
        through ``node_f``; per-edge messages are gathered from those rows and
        segment-summed into the frontier, whose updates are scattered back
        into the embedding matrix.  Numerically equivalent to the dense path
        (same per-node sums, different floating-point summation order).
        """
        for level in graph.frontier_levels:
            if level.height > self.config.max_message_passing_depth:
                break
            child_embeddings = gather_rows(embeddings, level.child_rows)
            messages = self.node_f(child_embeddings)
            edge_messages = gather_rows(messages, level.message_rows)
            aggregated = segment_sum(
                edge_messages, level.target_segments, level.num_targets
            )
            if self.config.two_level_aggregation:
                update = self.node_g(aggregated)
            else:
                update = aggregated
            embeddings = scatter_add_rows(embeddings, level.target_rows, update)
        return embeddings

    def _dense_node_embeddings(self, graph: GraphFeatures, embeddings: Tensor) -> Tensor:
        """Original dense formulation: full-width MLPs and adjacency matmuls."""
        adjacency = Tensor(graph.adjacency)
        max_height = int(graph.node_heights.max()) if graph.num_nodes else 0
        max_height = min(max_height, self.config.max_message_passing_depth)
        for height in range(1, max_height + 1):
            mask = (graph.node_heights == height).astype(np.float64).reshape(-1, 1)
            if not mask.any():
                continue
            messages = self.node_f(embeddings)
            aggregated = adjacency @ messages
            if self.config.two_level_aggregation:
                update = self.node_g(aggregated)
            else:
                update = aggregated
            embeddings = embeddings + update * Tensor(mask)
        return embeddings

    # -------------------------------------------------------------- summaries
    def job_embeddings(self, graph: GraphFeatures, node_embeddings: Tensor) -> Tensor:
        """Per-job summary y_i: aggregate a job's node embeddings (and raw features)."""
        inputs = concat([Tensor(graph.node_features), node_embeddings], axis=1)
        transformed = self.job_f(inputs)
        summed = segment_sum(transformed, graph.job_ids, graph.num_jobs)
        if self.config.two_level_aggregation:
            return self.job_g(summed)
        return summed

    def global_embedding(
        self, job_embeddings: Tensor, graph: Optional[GraphFeatures] = None
    ) -> Tensor:
        """Global summary z: aggregate per-job embeddings, one row per graph.

        For a plain observation every job belongs to graph 0 and the result is
        the familiar ``(1, D)`` summary.  For a merged cross-session batch the
        jobs segment by ``graph.job_graph_ids`` — each session's jobs sum into
        that session's own row, in the same job order as a per-session forward
        pass, so batching changes nothing about the values.
        """
        transformed = self.global_f(job_embeddings)
        num_jobs = job_embeddings.shape[0]
        if graph is None or graph.num_graphs == 1:
            segments = np.zeros(num_jobs, dtype=np.intp)
            num_graphs = 1
        else:
            segments = graph.job_graph_ids
            num_graphs = graph.num_graphs
        summed = segment_sum(transformed, segments, num_graphs)
        if self.config.two_level_aggregation:
            return self.global_g(summed)
        return summed

    def __call__(self, graph: GraphFeatures) -> GraphEmbeddings:
        nodes = self.node_embeddings(graph)
        jobs = self.job_embeddings(graph, nodes)
        cluster = self.global_embedding(jobs, graph)
        return GraphEmbeddings(node_embeddings=nodes, job_embeddings=jobs, global_embedding=cluster)

    # ------------------------------------------------------ inference data path
    def forward_data(
        self, graph: GraphFeatures
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Arena-buffered forward pass on plain arrays (sparse path only).

        Returns ``(node, job, global)`` embedding arrays owned by the
        network's workspace — valid until the next forward, never safe to
        hand to autograd.  Bit-identical to ``self(graph)``: every step is
        the same numpy operation the tensor ops perform (gemm + broadcast
        add, leaky-ReLU multiplier, gather, zero + ``np.add.at`` segment
        sum), merely writing into preallocated buffers; the differential
        pair ``inference_kernels_vs_tensor`` pins the two paths to each
        other end to end.
        """
        config = self.config
        if not config.sparse_message_passing:
            raise ValueError("forward_data implements the sparse path only")
        kernels = self.kernels
        workspace = self.workspace
        features = graph.node_features
        embeddings = mlp_forward(self.prep, features, workspace, "prep")
        for index, level in enumerate(graph.frontier_levels):
            if level.height > config.max_message_passing_depth:
                break
            children = workspace.get(
                f"lvl{index}:child", (len(level.child_rows), config.embedding_dim)
            )
            np.take(embeddings, level.child_rows, axis=0, out=children)
            messages = mlp_forward(self.node_f, children, workspace, f"lvl{index}:f")
            aggregated = workspace.get(
                f"lvl{index}:agg", (level.num_targets, config.embedding_dim)
            )
            scratch = workspace.get(
                f"lvl{index}:edges", (len(level.message_rows), config.embedding_dim)
            )
            kernels.gather_segment_sum(
                messages, level.message_rows, level.target_segments, aggregated, scratch
            )
            if config.two_level_aggregation:
                update = mlp_forward(self.node_g, aggregated, workspace, f"lvl{index}:g")
            else:
                update = aggregated
            # Frontier rows are unique, so in-place accumulation matches the
            # tensor path's copy-then-add.at scatter exactly.
            np.add.at(embeddings, level.target_rows, update)
        num_nodes, num_features = features.shape
        dim = config.embedding_dim
        job_inputs = workspace.get("job_in", (num_nodes, num_features + dim))
        job_inputs[:, :num_features] = features
        job_inputs[:, num_features:] = embeddings
        transformed = mlp_forward(self.job_f, job_inputs, workspace, "job_f")
        job_sums = workspace.get("job_sum", (graph.num_jobs, dim))
        job_sums[:] = 0.0
        np.add.at(job_sums, graph.job_ids, transformed)
        if config.two_level_aggregation:
            job_embeddings = mlp_forward(self.job_g, job_sums, workspace, "job_g")
        else:
            job_embeddings = job_sums
        transformed = mlp_forward(self.global_f, job_embeddings, workspace, "global_f")
        global_sums = workspace.get("global_sum", (graph.num_graphs, dim))
        global_sums[:] = 0.0
        # np.add.at even for the single-graph case: its sequential row-order
        # accumulation is what segment_sum does on the tensor path (a pairwise
        # .sum(axis=0) would round differently).
        np.add.at(global_sums, graph.job_graph_ids, transformed)
        if config.two_level_aggregation:
            global_embedding = mlp_forward(self.global_g, global_sums, workspace, "global_g")
        else:
            global_embedding = global_sums
        return embeddings, job_embeddings, global_embedding
