"""Supervised critical-path study (Appendix E / Fig. 19).

The paper sanity-checks the expressiveness of its two-level aggregation by
training the graph neural network, with supervision, to output each node's
critical-path value on random DAGs, and then measuring how often the node with
the maximum critical path is identified on unseen DAGs.  A single-level
aggregation (the standard GNN form ``e_v = sum_u f(e_u)``) cannot express the
required max operation and plateaus at low accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..simulator.jobdag import JobDAG, critical_path_value
from ..workloads.generator import random_job
from .features import FeatureConfig, GraphFeatures, GraphStructure
from .gnn import GNNConfig, GraphNeuralNetwork
from .nn import MLP, Adam, Module

__all__ = ["CriticalPathDataset", "CriticalPathRegressor", "train_critical_path_regressor"]


def graph_features_from_job(job: JobDAG, config: Optional[FeatureConfig] = None) -> GraphFeatures:
    """Build GNN inputs directly from a job DAG (no cluster state needed)."""
    config = config or FeatureConfig()
    structure = GraphStructure([job])
    features = np.zeros((structure.num_nodes, config.num_features))
    features[:, 0] = structure.num_tasks / config.task_scale
    features[:, 1] = structure.task_durations / config.duration_scale
    return GraphFeatures(
        structure=structure,
        node_features=features,
        schedulable_mask=np.ones(structure.num_nodes, dtype=bool),
    )


@dataclass
class CriticalPathDataset:
    """Random DAGs labelled with per-node critical-path values."""

    graphs: list[GraphFeatures] = field(default_factory=list)
    targets: list[np.ndarray] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        num_graphs: int,
        rng: np.random.Generator,
        min_nodes: int = 5,
        max_nodes: int = 15,
        work_scale: float = 200.0,
    ) -> "CriticalPathDataset":
        dataset = cls()
        for _ in range(num_graphs):
            job = random_job(int(rng.integers(min_nodes, max_nodes + 1)), rng)
            graph = graph_features_from_job(job)
            cache: dict = {}
            values = np.array(
                [critical_path_value(node, cache) for node in graph.nodes]
            ) / work_scale
            dataset.graphs.append(graph)
            dataset.targets.append(values)
        return dataset

    def __len__(self) -> int:
        return len(self.graphs)


class CriticalPathRegressor(Module):
    """GNN plus a linear read-out head predicting per-node critical-path values."""

    def __init__(self, two_level_aggregation: bool, seed: int = 0, embedding_dim: int = 8):
        rng = np.random.default_rng(seed)
        self.gnn = GraphNeuralNetwork(
            GNNConfig(
                num_features=FeatureConfig().num_features,
                embedding_dim=embedding_dim,
                two_level_aggregation=two_level_aggregation,
                max_message_passing_depth=20,
            ),
            rng,
        )
        self.readout = MLP(embedding_dim, 1, rng, hidden_sizes=(16,))

    def predict(self, graph: GraphFeatures) -> Tensor:
        embeddings = self.gnn.node_embeddings(graph)
        return self.readout(embeddings).reshape(graph.num_nodes)


@dataclass
class SupervisedResult:
    """Accuracy trace of the critical-path identification task."""

    accuracy_per_eval: list[float] = field(default_factory=list)
    final_accuracy: float = 0.0
    losses: list[float] = field(default_factory=list)


def _argmax_accuracy(model: CriticalPathRegressor, dataset: CriticalPathDataset) -> float:
    correct = 0
    for graph, target in zip(dataset.graphs, dataset.targets):
        predicted = model.predict(graph).data
        if int(np.argmax(predicted)) == int(np.argmax(target)):
            correct += 1
    return correct / max(len(dataset), 1)


def train_critical_path_regressor(
    model: CriticalPathRegressor,
    train_set: CriticalPathDataset,
    test_set: CriticalPathDataset,
    num_iterations: int = 100,
    learning_rate: float = 1e-3,
    eval_every: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> SupervisedResult:
    """Mean-squared-error training; returns the test accuracy trace (Fig. 19)."""
    rng = rng or np.random.default_rng(0)
    optimizer = Adam(model.parameters(), learning_rate=learning_rate)
    result = SupervisedResult()
    for iteration in range(num_iterations):
        index = int(rng.integers(0, len(train_set)))
        graph = train_set.graphs[index]
        target = Tensor(train_set.targets[index])
        model.zero_grad()
        predicted = model.predict(graph)
        error = predicted - target
        loss = (error * error).mean()
        loss.backward()
        optimizer.step()
        result.losses.append(loss.item())
        if (iteration + 1) % eval_every == 0 or iteration == num_iterations - 1:
            result.accuracy_per_eval.append(_argmax_accuracy(model, test_set))
    result.final_accuracy = result.accuracy_per_eval[-1] if result.accuracy_per_eval else 0.0
    return result
