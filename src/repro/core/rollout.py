"""Episode rollout collection for REINFORCE training."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..simulator.environment import SchedulingEnvironment
from ..simulator.jobdag import JobDAG
from ..simulator.metrics import SimulationResult
from .agent import DecimaAgent

__all__ = ["Transition", "Trajectory", "collect_rollout"]


@dataclass
class Transition:
    """One action and its consequences."""

    log_prob: Tensor
    entropy: Tensor
    reward: float
    wall_time: float


@dataclass
class Trajectory:
    """A full training episode."""

    transitions: list[Transition] = field(default_factory=list)
    result: Optional[SimulationResult] = None

    @property
    def num_actions(self) -> int:
        return len(self.transitions)

    @property
    def total_reward(self) -> float:
        return float(sum(t.reward for t in self.transitions))

    def rewards(self) -> np.ndarray:
        return np.array([t.reward for t in self.transitions])

    def wall_times(self) -> np.ndarray:
        return np.array([t.wall_time for t in self.transitions])


def collect_rollout(
    environment: SchedulingEnvironment,
    agent: DecimaAgent,
    jobs: list[JobDAG],
    rng: np.random.Generator,
    seed: Optional[int] = None,
    max_actions: Optional[int] = None,
) -> Trajectory:
    """Run one sampled episode of ``agent`` and record per-action training data.

    Actions are *sampled* from the policy (not arg-maxed) so the policy
    gradient explores.  ``max_actions`` is a safety bound for degenerate
    policies early in training.
    """
    trajectory = Trajectory()
    # Episode boundary: the job DAGs are fresh objects, so drop the agent's
    # cached graph structure from any previous episode.
    agent.reset_graph_cache()
    observation = environment.reset(jobs, seed=seed)
    done = False
    while not done:
        action, info = agent.act(observation, rng=rng, greedy=False, training=True)
        wall_time = environment.wall_time
        observation, reward, done = environment.step(action)
        if info is not None:
            trajectory.transitions.append(
                Transition(
                    log_prob=info.log_prob,
                    entropy=info.entropy,
                    reward=reward,
                    wall_time=wall_time,
                )
            )
        if max_actions is not None and trajectory.num_actions >= max_actions:
            break
    trajectory.result = environment.result()
    return trajectory
