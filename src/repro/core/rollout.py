"""Episode rollout collection for REINFORCE training."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..autograd import Tensor
from ..simulator.environment import SchedulingEnvironment
from ..simulator.jobdag import JobDAG
from ..simulator.metrics import SimulationResult
from .agent import DecimaAgent

__all__ = ["Transition", "Trajectory", "collect_rollout"]


@dataclass
class Transition:
    """One action and its consequences."""

    log_prob: Tensor
    entropy: Tensor
    reward: float
    wall_time: float


@dataclass
class Trajectory:
    """A full training episode."""

    transitions: list[Transition] = field(default_factory=list)
    result: Optional[SimulationResult] = None

    @property
    def num_actions(self) -> int:
        return len(self.transitions)

    @property
    def total_reward(self) -> float:
        return float(sum(t.reward for t in self.transitions))

    def rewards(self) -> np.ndarray:
        return np.array([t.reward for t in self.transitions])

    def wall_times(self) -> np.ndarray:
        return np.array([t.wall_time for t in self.transitions])


def collect_rollout(
    environment: SchedulingEnvironment,
    agent: DecimaAgent,
    jobs: list[JobDAG],
    rng: np.random.Generator,
    seed: Optional[int] = None,
    max_actions: Optional[int] = None,
    step_hook: Optional[Callable] = None,
) -> Trajectory:
    """Run one sampled episode of ``agent`` and record per-action training data.

    Actions are *sampled* from the policy (not arg-maxed) so the policy
    gradient explores.  ``max_actions`` is a safety bound for degenerate
    policies early in training.  ``step_hook`` is an instrumentation seam for
    the verification harness: when given, it is called as
    ``step_hook(step_index, observation, action, info, wall_time)`` *before*
    the step executes (stepping mutates the live job DAGs the observation
    references); if it returns a callable, that is invoked with the step's
    reward once the step completes.  Hooks must not mutate their arguments.
    """
    trajectory = Trajectory()
    # Episode boundary: the job DAGs are fresh objects, so drop the agent's
    # cached graph structure from any previous episode.
    agent.reset_graph_cache()
    observation = environment.reset(jobs, seed=seed)
    done = False
    step_index = 0
    while not done:
        action, info = agent.act(observation, rng=rng, greedy=False, training=True)
        wall_time = environment.wall_time
        finish_hook = (
            step_hook(step_index, observation, action, info, wall_time)
            if step_hook is not None
            else None
        )
        observation, reward, done = environment.step(action)
        if callable(finish_hook):
            finish_hook(reward)
        step_index += 1
        if info is not None:
            trajectory.transitions.append(
                Transition(
                    log_prob=info.log_prob,
                    entropy=info.entropy,
                    reward=reward,
                    wall_time=wall_time,
                )
            )
        if max_actions is not None and trajectory.num_actions >= max_actions:
            break
    trajectory.result = environment.result()
    return trajectory
