"""The Decima scheduling agent: graph neural network + policy network.

The agent implements the :class:`~repro.schedulers.base.Scheduler` interface so
it can be evaluated in the simulator exactly like the baseline heuristics, and
exposes :meth:`DecimaAgent.act` which additionally returns the action's
log-probability and entropy tensors for REINFORCE training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..autograd import Tensor, entropy_from_log_probs, masked_log_softmax
from ..schedulers.base import Scheduler
from ..simulator.environment import Action, Observation
from ..simulator.jobdag import JobDAG, Node
from .features import FeatureConfig, GraphCache, GraphFeatures, build_graph_features
from .gnn import GNNConfig, GraphNeuralNetwork
from .nn import Module
from .policy import PolicyConfig, PolicyNetwork

__all__ = ["DecimaConfig", "StepInfo", "DecimaAgent"]


@dataclass
class DecimaConfig:
    """Hyper-parameters and ablation switches of the Decima agent."""

    feature: FeatureConfig = field(default_factory=FeatureConfig)
    embedding_dim: int = 8
    hidden_sizes: tuple[int, ...] = (32, 16)
    max_message_passing_depth: int = 8
    # Ablation switches (Fig. 14 / Fig. 15a / Fig. 19).
    use_graph_embedding: bool = True
    use_parallelism_control: bool = True
    two_level_aggregation: bool = True
    # Multi-resource executor-class head (§7.3).
    multi_resource: bool = False
    # Hot-path switches.  The defaults run sparse frontier-restricted message
    # passing over a per-episode incremental GraphCache; disabling either (or
    # both) falls back to the original dense / from-scratch formulation, which
    # is kept as the numerical-equivalence oracle.
    sparse_message_passing: bool = True
    use_graph_cache: bool = True
    # Number of discrete parallelism-limit levels; ``None`` uses one level per
    # executor (the paper's encoding) capped at 64 levels for very large clusters.
    num_limit_levels: Optional[int] = None
    # When True (paper default), the limit value is a scalar input to a single
    # reused score function w(y, z, l).  When False, the limit is one-hot
    # encoded, which is equivalent to separate score functions per limit — the
    # variant Fig. 15a shows trains much more slowly.
    limit_value_input: bool = True
    seed: int = 0
    # Evaluation behaviour: greedy arg-max actions (deterministic) or sampled.
    greedy_evaluation: bool = True


@dataclass
class StepInfo:
    """Training byproducts of one action."""

    log_prob: Tensor
    entropy: Tensor


class DecimaAgent(Module, Scheduler):
    """Learned scheduling policy (the paper's primary contribution)."""

    name = "decima"

    def __init__(self, total_executors: int, config: Optional[DecimaConfig] = None):
        if total_executors <= 0:
            raise ValueError("total_executors must be positive")
        self.config = config or DecimaConfig()
        self.total_executors = int(total_executors)
        rng = np.random.default_rng(self.config.seed)
        self.gnn = GraphNeuralNetwork(
            GNNConfig(
                num_features=self.config.feature.num_features,
                embedding_dim=self.config.embedding_dim,
                hidden_sizes=self.config.hidden_sizes,
                max_message_passing_depth=self.config.max_message_passing_depth,
                two_level_aggregation=self.config.two_level_aggregation,
                sparse_message_passing=self.config.sparse_message_passing,
            ),
            rng,
        )
        self._limit_levels = self._build_limit_levels()
        # One-hot limit encoding: the level -> column mapping is static, so it
        # is precomputed here instead of being rebuilt on every act() call.
        self._limit_level_index = {
            int(level): i for i, level in enumerate(self._limit_levels)
        }
        limit_input_dim = 1 if self.config.limit_value_input else len(self._limit_levels)
        self.policy = PolicyNetwork(
            PolicyConfig(
                num_features=self.config.feature.num_features,
                embedding_dim=self.config.embedding_dim,
                hidden_sizes=self.config.hidden_sizes,
                use_graph_embedding=self.config.use_graph_embedding,
                use_executor_class_head=self.config.multi_resource,
                limit_input_dim=limit_input_dim,
            ),
            rng,
        )
        self.interarrival_hint: Optional[float] = None
        self._eval_rng = np.random.default_rng(self.config.seed + 1)
        # Per-episode incremental cache of the static graph structure; rebuilt
        # only when the set of live jobs changes (arrival/completion).
        self.graph_cache = GraphCache()

    # ---------------------------------------------------------------- helpers
    def _build_limit_levels(self) -> np.ndarray:
        num_levels = self.config.num_limit_levels
        if num_levels is None:
            num_levels = min(self.total_executors, 64)
        num_levels = max(1, min(num_levels, self.total_executors))
        levels = np.unique(
            np.round(np.linspace(1, self.total_executors, num_levels)).astype(int)
        )
        return levels

    def candidate_limits(self, job: JobDAG) -> np.ndarray:
        """Parallelism limits the agent may pick for ``job`` right now.

        The paper enforces that the limit exceeds the job's current executor
        count so every action assigns at least one new executor.
        """
        valid = self._limit_levels[self._limit_levels > job.num_active_executors]
        if valid.size == 0:
            valid = np.array([job.num_active_executors + 1])
        return valid

    def _limit_inputs(self, limits: np.ndarray) -> np.ndarray:
        """Encode candidate limits for the score function w(.) (scalar or one-hot)."""
        if self.config.limit_value_input:
            return (limits / self.total_executors).reshape(-1, 1)
        one_hot = np.zeros((len(limits), len(self._limit_levels)))
        level_index = self._limit_level_index
        for row, limit in enumerate(limits):
            one_hot[row, level_index.get(int(limit), len(self._limit_levels) - 1)] = 1.0
        return one_hot

    # ------------------------------------------------------------- scheduling
    def reset(self) -> None:
        self._eval_rng = np.random.default_rng(self.config.seed + 1)
        self.reset_graph_cache()

    def reset_graph_cache(self) -> None:
        """Invalidate the graph-structure cache (episode boundaries).

        The cache keys on job object identity, so stale entries can never be
        *wrongly* reused — this only releases the references pinning the
        previous episode's job DAGs.
        """
        self.graph_cache.reset()

    def schedule(self, observation: Observation) -> Optional[Action]:
        action, _ = self.act(
            observation,
            rng=self._eval_rng,
            greedy=self.config.greedy_evaluation,
            training=False,
        )
        return action

    def act(
        self,
        observation: Observation,
        rng: Optional[np.random.Generator] = None,
        greedy: bool = False,
        training: bool = False,
    ) -> tuple[Optional[Action], Optional[StepInfo]]:
        """Pick a (stage, parallelism limit[, executor class]) action.

        When ``training`` is true the returned :class:`StepInfo` carries the
        log-probability and entropy tensors connected to the parameter graph.
        """
        if not observation.schedulable_nodes:
            return None, None
        rng = rng or self._eval_rng
        if self.config.use_graph_cache:
            graph = self.graph_cache.features(
                observation, self.config.feature, interarrival_hint=self.interarrival_hint
            )
        else:
            graph = build_graph_features(
                observation, self.config.feature, interarrival_hint=self.interarrival_hint
            )
        embeddings = self.gnn(graph)

        # --- stage selection (masked softmax over schedulable nodes, Eq. 2)
        node_logits = self.policy.node_logits(graph, embeddings)
        node_mask = graph.schedulable_mask
        node_log_probs = masked_log_softmax(node_logits, node_mask)
        node_row = self._choose(node_log_probs.data, node_mask, rng, greedy)
        node = graph.nodes[node_row]
        job_index = int(graph.job_ids[node_row])
        job = graph.jobs[job_index]

        log_prob = node_log_probs[node_row]
        entropy = entropy_from_log_probs(node_log_probs, node_mask)

        # --- parallelism-limit selection
        if self.config.use_parallelism_control:
            limits = self.candidate_limits(job)
            limit_inputs = self._limit_inputs(limits)
            limit_logits = self.policy.limit_logits(graph, embeddings, job_index, limit_inputs)
            limit_mask = np.ones(len(limits), dtype=bool)
            limit_log_probs = masked_log_softmax(limit_logits, limit_mask)
            limit_row = self._choose(limit_log_probs.data, limit_mask, rng, greedy)
            parallelism_limit = int(limits[limit_row])
            log_prob = log_prob + limit_log_probs[limit_row]
            entropy = entropy + entropy_from_log_probs(limit_log_probs, limit_mask)
        else:
            parallelism_limit = self.total_executors

        # --- executor-class selection (multi-resource only)
        executor_class = None
        if self.config.multi_resource and observation.executor_classes:
            classes = [
                cls
                for cls in observation.executor_classes
                if cls.fits(node) and observation.free_executors_by_class.get(cls, 0) > 0
            ]
            if classes:
                class_logits = self.policy.class_logits(graph, embeddings, job_index, classes)
                class_mask = np.ones(len(classes), dtype=bool)
                class_log_probs = masked_log_softmax(class_logits, class_mask)
                class_row = self._choose(class_log_probs.data, class_mask, rng, greedy)
                executor_class = classes[class_row]
                log_prob = log_prob + class_log_probs[class_row]
                entropy = entropy + entropy_from_log_probs(class_log_probs, class_mask)

        action = Action(
            node=node, parallelism_limit=parallelism_limit, executor_class=executor_class
        )
        info = StepInfo(log_prob=log_prob, entropy=entropy) if training else None
        return action, info

    @staticmethod
    def _choose(
        log_probs: np.ndarray, mask: np.ndarray, rng: np.random.Generator, greedy: bool
    ) -> int:
        """Sample (or arg-max) an index from masked log-probabilities."""
        masked = np.where(mask, log_probs, -np.inf)
        if greedy:
            return int(np.argmax(masked))
        probs = np.exp(masked - masked.max())
        probs[~mask] = 0.0
        probs = probs / probs.sum()
        return int(rng.choice(len(probs), p=probs))
