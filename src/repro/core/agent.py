"""The Decima scheduling agent: graph neural network + policy network.

The agent implements the :class:`~repro.schedulers.base.Scheduler` interface so
it can be evaluated in the simulator exactly like the baseline heuristics, and
exposes :meth:`DecimaAgent.act` which additionally returns the action's
log-probability and entropy tensors for REINFORCE training.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..autograd import (
    Tensor,
    entropy_from_log_probs,
    masked_log_softmax,
    masked_log_softmax_data,
)
from ..schedulers.base import Scheduler
from ..simulator.environment import Action, Observation
from ..simulator.jobdag import JobDAG, Node
from .features import (
    FeatureConfig,
    GraphBatch,
    GraphCache,
    GraphFeatures,
    MergedStructureCache,
    build_graph_features,
)
from .gnn import GNNConfig, GraphEmbeddings, GraphNeuralNetwork
from .nn import Module
from .policy import PolicyConfig, PolicyNetwork

__all__ = ["DecimaConfig", "StepInfo", "StageTimings", "DecimaAgent"]

_KERNEL_BACKENDS = ("numpy", "numba", "tensor")


def _default_kernel_backend() -> str:
    """Process-wide default, overridable via ``DECIMA_KERNEL_BACKEND``.

    Lets operators (and CI's kernel-backend drift checks) flip every agent in
    a process to the compiled kernels without touching call sites.
    """
    return os.environ.get("DECIMA_KERNEL_BACKEND", "numpy")


@dataclass
class DecimaConfig:
    """Hyper-parameters and ablation switches of the Decima agent."""

    feature: FeatureConfig = field(default_factory=FeatureConfig)
    embedding_dim: int = 8
    hidden_sizes: tuple[int, ...] = (32, 16)
    max_message_passing_depth: int = 8
    # Ablation switches (Fig. 14 / Fig. 15a / Fig. 19).
    use_graph_embedding: bool = True
    use_parallelism_control: bool = True
    two_level_aggregation: bool = True
    # Multi-resource executor-class head (§7.3).
    multi_resource: bool = False
    # Hot-path switches.  The defaults run sparse frontier-restricted message
    # passing over a per-episode incremental GraphCache; disabling either (or
    # both) falls back to the original dense / from-scratch formulation, which
    # is kept as the numerical-equivalence oracle.
    sparse_message_passing: bool = True
    use_graph_cache: bool = True
    # Inference kernel backend: "numpy" (default) runs the arena-buffered
    # data path on the numpy reference kernels; "numba" swaps in the
    # JIT-compiled kernels when the optional dependency is installed (numpy
    # fallback otherwise); "tensor" disables the data path entirely and runs
    # inference through the autograd ops — kept as the equivalence oracle
    # (differential pair ``inference_kernels_vs_tensor``).
    kernel_backend: str = field(default_factory=_default_kernel_backend)
    # Number of discrete parallelism-limit levels; ``None`` uses one level per
    # executor (the paper's encoding) capped at 64 levels for very large clusters.
    num_limit_levels: Optional[int] = None
    # When True (paper default), the limit value is a scalar input to a single
    # reused score function w(y, z, l).  When False, the limit is one-hot
    # encoded, which is equivalent to separate score functions per limit — the
    # variant Fig. 15a shows trains much more slowly.
    limit_value_input: bool = True
    seed: int = 0
    # Evaluation behaviour: greedy arg-max actions (deterministic) or sampled.
    greedy_evaluation: bool = True


@dataclass
class StepInfo:
    """Training byproducts of one action."""

    log_prob: Tensor
    entropy: Tensor


class StageTimings:
    """Cumulative per-stage wall time of the decision hot path.

    Stages: ``features`` (graph cache + dynamic feature refresh, incl. the
    batch merge), ``propagation`` (GNN message passing + summaries),
    ``policy`` (node-scoring head) and ``sampling`` (softmax + draw + the
    parallelism-limit and executor-class heads).  The broker surfaces a
    snapshot through its SLO stats so the control plane can show where
    decision time goes.
    """

    STAGES = ("features", "propagation", "policy", "sampling")

    __slots__ = ("num_steps", "features_s", "propagation_s", "policy_s", "sampling_s")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.num_steps = 0
        self.features_s = 0.0
        self.propagation_s = 0.0
        self.policy_s = 0.0
        self.sampling_s = 0.0

    def add(
        self, features: float, propagation: float, policy: float, sampling: float
    ) -> None:
        self.num_steps += 1
        self.features_s += features
        self.propagation_s += propagation
        self.policy_s += policy
        self.sampling_s += sampling

    def clock(self, parent_spans: Sequence = ()) -> "_StageClock":
        """One decision's stage clock: ``mark()`` per stage boundary, then
        ``finish()`` accumulates into these totals and — when tracing —
        emits one child span per stage under each parent span."""
        return _StageClock(self, parent_spans)

    def snapshot(self) -> dict:
        """Totals and per-step means in milliseconds, JSON-ready."""
        steps = self.num_steps
        stages = {}
        for stage in self.STAGES:
            total_s = getattr(self, f"{stage}_s")
            stages[stage] = {
                "total_ms": total_s * 1e3,
                "mean_ms": (total_s / steps * 1e3) if steps else 0.0,
            }
        return {"num_steps": steps, "stages": stages}


class _StageClock:
    """Per-decision timing of the four hot-path stages.

    Replaces the copy-pasted ``t0..t4 = perf_counter()`` blocks ``act`` and
    ``act_batch`` used to carry: create one at decision start, ``mark()``
    after each stage, ``finish()`` after sampling.  When parent spans are
    supplied (traced decisions), ``finish()`` also files one
    ``stage.<name>`` child span per stage under every parent — the wall
    timestamp is only taken when a trace is actually active, so the untraced
    hot path pays exactly the five ``perf_counter`` calls it always did.
    """

    __slots__ = ("_timings", "_spans", "_wall", "_marks")

    def __init__(self, timings: StageTimings, parent_spans: Sequence = ()):
        self._timings = timings
        self._spans = tuple(span for span in parent_spans if span is not None)
        self._wall = time.time() if self._spans else 0.0
        self._marks = [time.perf_counter()]

    def mark(self) -> None:
        self._marks.append(time.perf_counter())

    def finish(self) -> tuple:
        self._marks.append(time.perf_counter())
        marks = self._marks
        if len(marks) != len(StageTimings.STAGES) + 1:
            raise RuntimeError(
                f"stage clock finished after {len(marks) - 1} intervals; "
                f"expected {len(StageTimings.STAGES)}"
            )
        durations = tuple(
            later - earlier for earlier, later in zip(marks, marks[1:])
        )
        self._timings.add(*durations)
        for parent in self._spans:
            offset = 0.0
            for stage, duration in zip(StageTimings.STAGES, durations):
                child = parent.child("stage." + stage)
                child.start_time = self._wall + offset
                child.finish(duration_ms=duration * 1e3)
                offset += duration
        return durations


class DecimaAgent(Module, Scheduler):
    """Learned scheduling policy (the paper's primary contribution)."""

    name = "decima"

    def __init__(self, total_executors: int, config: Optional[DecimaConfig] = None):
        if total_executors <= 0:
            raise ValueError("total_executors must be positive")
        self.config = config or DecimaConfig()
        self.total_executors = int(total_executors)
        if self.config.kernel_backend not in _KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend {self.config.kernel_backend!r}; "
                f"expected one of {_KERNEL_BACKENDS}"
            )
        rng = np.random.default_rng(self.config.seed)
        self.gnn = GraphNeuralNetwork(
            GNNConfig(
                num_features=self.config.feature.num_features,
                embedding_dim=self.config.embedding_dim,
                hidden_sizes=self.config.hidden_sizes,
                max_message_passing_depth=self.config.max_message_passing_depth,
                two_level_aggregation=self.config.two_level_aggregation,
                sparse_message_passing=self.config.sparse_message_passing,
                # "tensor" never reaches the GNN data path (the fast-path gate
                # below turns it off), so the GNN-level backend stays "numpy".
                kernel_backend=(
                    "numpy"
                    if self.config.kernel_backend == "tensor"
                    else self.config.kernel_backend
                ),
            ),
            rng,
        )
        self._limit_levels = self._build_limit_levels()
        # One-hot limit encoding: the level -> column mapping is static, so it
        # is precomputed here instead of being rebuilt on every act() call.
        self._limit_level_index = {
            int(level): i for i, level in enumerate(self._limit_levels)
        }
        limit_input_dim = 1 if self.config.limit_value_input else len(self._limit_levels)
        self.policy = PolicyNetwork(
            PolicyConfig(
                num_features=self.config.feature.num_features,
                embedding_dim=self.config.embedding_dim,
                hidden_sizes=self.config.hidden_sizes,
                use_graph_embedding=self.config.use_graph_embedding,
                use_executor_class_head=self.config.multi_resource,
                limit_input_dim=limit_input_dim,
            ),
            rng,
        )
        self.interarrival_hint: Optional[float] = None
        self._eval_rng = np.random.default_rng(self.config.seed + 1)
        # Per-episode incremental cache of the static graph structure; rebuilt
        # only when the set of live jobs changes (arrival/completion).
        self.graph_cache = GraphCache()
        # Cumulative per-stage wall time of every act()/act_batch() decision.
        self.stage_timings = StageTimings()
        # Instrumentation seam for the verification harness: when set, every
        # serial decision calls ``logits_tap(node_logits_row_data)`` with this
        # observation's (plain numpy) node-logit rows before selection, so a
        # trace recorder can digest the numbers behind each decision.  The
        # ``None`` default costs one identity check per act() call.
        self.logits_tap = None

    # ---------------------------------------------------------------- helpers
    def _build_limit_levels(self) -> np.ndarray:
        num_levels = self.config.num_limit_levels
        if num_levels is None:
            num_levels = min(self.total_executors, 64)
        num_levels = max(1, min(num_levels, self.total_executors))
        levels = np.unique(
            np.round(np.linspace(1, self.total_executors, num_levels)).astype(int)
        )
        return levels

    def candidate_limits(self, job: JobDAG) -> np.ndarray:
        """Parallelism limits the agent may pick for ``job`` right now.

        The paper enforces that the limit exceeds the job's current executor
        count so every action assigns at least one new executor.
        """
        valid = self._limit_levels[self._limit_levels > job.num_active_executors]
        if valid.size == 0:
            valid = np.array([job.num_active_executors + 1])
        return valid

    def _limit_inputs(self, limits: np.ndarray) -> np.ndarray:
        """Encode candidate limits for the score function w(.) (scalar or one-hot)."""
        if self.config.limit_value_input:
            return (limits / self.total_executors).reshape(-1, 1)
        one_hot = np.zeros((len(limits), len(self._limit_levels)))
        level_index = self._limit_level_index
        for row, limit in enumerate(limits):
            one_hot[row, level_index.get(int(limit), len(self._limit_levels) - 1)] = 1.0
        return one_hot

    # ------------------------------------------------------------- scheduling
    def reset(self) -> None:
        self._eval_rng = np.random.default_rng(self.config.seed + 1)
        self.reset_graph_cache()

    def reset_graph_cache(self) -> None:
        """Invalidate the graph-structure cache (episode boundaries).

        The cache keys on job object identity, so stale entries can never be
        *wrongly* reused — this only releases the references pinning the
        previous episode's job DAGs.
        """
        self.graph_cache.reset()

    def schedule(self, observation: Observation) -> Optional[Action]:
        action, _ = self.act(
            observation,
            rng=self._eval_rng,
            greedy=self.config.greedy_evaluation,
            training=False,
        )
        return action

    def build_features(
        self,
        observation: Observation,
        graph_cache: Optional[GraphCache] = None,
        reuse_buffers: bool = False,
    ) -> GraphFeatures:
        """Graph inputs for ``observation`` under this agent's feature config.

        ``graph_cache`` overrides the agent-owned cache — the policy-serving
        layer passes each session's own cache so concurrently served clusters
        do not thrash a single structure slot.  ``reuse_buffers`` hands out
        the cache's persistent arrays (inference only — see
        :meth:`GraphCache.features`).
        """
        if self.config.use_graph_cache:
            cache = graph_cache if graph_cache is not None else self.graph_cache
            return cache.features(
                observation,
                self.config.feature,
                interarrival_hint=self.interarrival_hint,
                reuse_buffers=reuse_buffers,
            )
        return build_graph_features(
            observation, self.config.feature, interarrival_hint=self.interarrival_hint
        )

    def _use_data_path(self, training: bool) -> bool:
        """True when inference may run the arena-buffered data path.

        Training must stay on the autograd ops (gradients), the dense oracle
        has no data-path implementation, and ``kernel_backend="tensor"``
        explicitly requests the autograd ops as the equivalence reference.
        """
        return (
            not training
            and self.config.sparse_message_passing
            and self.config.kernel_backend != "tensor"
        )

    def act(
        self,
        observation: Observation,
        rng: Optional[np.random.Generator] = None,
        greedy: bool = False,
        training: bool = False,
        graph_cache: Optional[GraphCache] = None,
        span=None,
    ) -> tuple[Optional[Action], Optional[StepInfo]]:
        """Pick a (stage, parallelism limit[, executor class]) action.

        When ``training`` is true the returned :class:`StepInfo` carries the
        log-probability and entropy tensors connected to the parameter graph.
        At inference the forward runs on the arena-buffered data path (delta
        features, workspace-owned scratch, optional compiled kernels) — the
        numbers, and therefore the decisions, match the autograd path.

        ``span`` (a :class:`repro.obs.tracing.Span`, or None) is the traced
        parent of this decision; when set, the four stage timings are also
        filed as its child spans.
        """
        if not observation.schedulable_nodes:
            return None, None
        fast = self._use_data_path(training)
        clock = self.stage_timings.clock((span,) if span is not None else ())
        graph = self.build_features(
            observation, graph_cache=graph_cache, reuse_buffers=fast
        )
        clock.mark()
        if fast:
            node_emb, job_emb, global_emb = self.gnn.forward_data(graph)
            embeddings = GraphEmbeddings(
                node_embeddings=Tensor(node_emb),
                job_embeddings=Tensor(job_emb),
                global_embedding=Tensor(global_emb),
            )
            clock.mark()
            # A trace recorder's tap digests the full logit vector, so only
            # the untapped hot path restricts scoring to the schedulable rows.
            rows = (
                None
                if self.logits_tap is not None
                else np.flatnonzero(graph.schedulable_mask)
            )
            node_logits = Tensor(
                self.policy.node_logits_data(
                    graph, node_emb, job_emb, global_emb, self.gnn.workspace, rows=rows
                )
            )
        else:
            embeddings = self.gnn(graph)
            clock.mark()
            node_logits = self.policy.node_logits(graph, embeddings)
        clock.mark()
        result = self.act_on_graph(
            graph, embeddings, node_logits, observation, rng=rng, greedy=greedy,
            training=training,
        )
        clock.finish()
        return result

    def score_action(
        self,
        observation: Observation,
        node: Node,
        parallelism_limit: int,
        graph_cache: Optional[GraphCache] = None,
    ) -> tuple[Tensor, Tensor]:
        """Log-probability and entropy of a *given* action, on the autograd graph.

        The online-learning trainer replays recorded serving decisions: the
        action was chosen greedily at serve time, and this scores it under the
        current parameters exactly as the training path of :meth:`act` would
        have — same masked softmax over schedulable nodes, same limit head —
        so REINFORCE gradients flow through the replayed choice.

        ``node`` must be one of the observation's schedulable nodes (by object
        identity) and ``parallelism_limit`` one of :meth:`candidate_limits`
        for its job.
        """
        if not observation.schedulable_nodes:
            raise ValueError("observation has no schedulable nodes to score")
        graph = self.build_features(observation, graph_cache=graph_cache)
        embeddings = self.gnn(graph)
        node_logits = self.policy.node_logits(graph, embeddings)
        node_mask = graph.schedulable_mask
        global_row = next(
            (row for row, candidate in enumerate(graph.nodes) if candidate is node),
            None,
        )
        if global_row is None or not node_mask[global_row]:
            raise ValueError("node is not a schedulable node of this observation")
        node_log_probs = masked_log_softmax(node_logits, node_mask)
        log_prob = node_log_probs[global_row]
        entropy = entropy_from_log_probs(node_log_probs, node_mask)
        if self.config.use_parallelism_control:
            job_index = int(graph.job_ids[global_row])
            job = graph.jobs[job_index]
            limits = self.candidate_limits(job)
            matches = np.flatnonzero(limits == int(parallelism_limit))
            if matches.size == 0:
                raise ValueError(
                    f"limit {parallelism_limit} is not a candidate for this job "
                    f"(candidates: {limits.tolist()})"
                )
            limit_inputs = self._limit_inputs(limits)
            limit_logits = self.policy.limit_logits(
                graph, embeddings, job_index, limit_inputs
            )
            limit_mask = np.ones(len(limits), dtype=bool)
            limit_log_probs = masked_log_softmax(limit_logits, limit_mask)
            log_prob = log_prob + limit_log_probs[int(matches[0])]
            entropy = entropy + entropy_from_log_probs(limit_log_probs, limit_mask)
        return log_prob, entropy

    def _select_stage(
        self,
        graph: GraphFeatures,
        node_logits,
        node_rows: slice,
        rng: np.random.Generator,
        greedy: bool,
        training: bool,
    ):
        """Stage selection (masked softmax over schedulable nodes, Eq. 2).

        Operates on one observation's row range of a (possibly merged) node
        logit vector; returns ``(node, job_index, log_prob, entropy)`` with
        ``job_index`` a *global* job row, or ``None`` if nothing is
        schedulable in the range.  The log-prob/entropy tensors are only
        assembled when ``training`` — inference skips that autograd
        bookkeeping entirely (the choice itself only needs the data).
        """
        node_mask = graph.schedulable_mask[node_rows]
        if not node_mask.any():
            return None
        if not training:
            # Inference: identical numbers via the graph-free softmax kernel
            # (the numpy backend IS masked_log_softmax_data; the numba one
            # differs only in summation order of exactly-zero terms).
            log_probs = self.gnn.kernels.masked_log_softmax(
                node_logits.data[node_rows], node_mask
            )
            node_row = self._choose(log_probs, node_mask, rng, greedy)
            global_row = node_rows.start + node_row
            return graph.nodes[global_row], int(graph.job_ids[global_row]), None, None
        node_log_probs = masked_log_softmax(node_logits[node_rows], node_mask)
        node_row = self._choose(node_log_probs.data, node_mask, rng, greedy)
        global_row = node_rows.start + node_row
        node = graph.nodes[global_row]
        job_index = int(graph.job_ids[global_row])
        log_prob = node_log_probs[node_row]
        entropy = entropy_from_log_probs(node_log_probs, node_mask)
        return node, job_index, log_prob, entropy

    def _select_limit(
        self, limit_logits, limits: np.ndarray, rng, greedy: bool, training: bool
    ):
        """Pick a parallelism limit from its logits; returns (limit, lp, ent).

        ``limit_logits`` is a Tensor when training (the log-prob must stay on
        the autograd graph) and may be a plain ndarray at inference.
        """
        limit_mask = np.ones(len(limits), dtype=bool)
        if not training:
            data = (
                limit_logits.data if isinstance(limit_logits, Tensor) else limit_logits
            )
            log_probs = masked_log_softmax_data(data, limit_mask)
            limit_row = self._choose(log_probs, limit_mask, rng, greedy)
            return int(limits[limit_row]), None, None
        limit_log_probs = masked_log_softmax(limit_logits, limit_mask)
        limit_row = self._choose(limit_log_probs.data, limit_mask, rng, greedy)
        return (
            int(limits[limit_row]),
            limit_log_probs[limit_row],
            entropy_from_log_probs(limit_log_probs, limit_mask),
        )

    def _select_class(
        self,
        graph: GraphFeatures,
        embeddings,
        job_index: int,
        node: Node,
        observation: Observation,
        rng,
        greedy: bool,
        training: bool,
    ):
        """Executor-class selection (multi-resource only); ``None`` when n/a."""
        if not (self.config.multi_resource and observation.executor_classes):
            return None
        classes = [
            cls
            for cls in observation.executor_classes
            if cls.fits(node) and observation.free_executors_by_class.get(cls, 0) > 0
        ]
        if not classes:
            return None
        class_logits = self.policy.class_logits(graph, embeddings, job_index, classes)
        class_mask = np.ones(len(classes), dtype=bool)
        if not training:
            log_probs = masked_log_softmax_data(class_logits.data, class_mask)
            class_row = self._choose(log_probs, class_mask, rng, greedy)
            return classes[class_row], None, None
        class_log_probs = masked_log_softmax(class_logits, class_mask)
        class_row = self._choose(class_log_probs.data, class_mask, rng, greedy)
        return (
            classes[class_row],
            class_log_probs[class_row],
            entropy_from_log_probs(class_log_probs, class_mask),
        )

    def act_on_graph(
        self,
        graph: GraphFeatures,
        embeddings,
        node_logits,
        observation: Observation,
        rng: Optional[np.random.Generator] = None,
        greedy: bool = False,
        training: bool = False,
        node_rows: Optional[slice] = None,
    ) -> tuple[Optional[Action], Optional[StepInfo]]:
        """Select an action from a prebuilt forward pass.

        ``graph`` / ``embeddings`` / ``node_logits`` may cover *more* than this
        observation: when they come from a cross-session mega-graph, pass
        ``node_rows`` to restrict the decision to one session's node-row range
        (job and global rows follow from the graph's own segment ids).  The
        stage softmax, limit head and class head then see exactly the rows a
        per-session forward pass would have produced, which is what makes
        batched decisions match serial ones at fixed seeds.
        """
        rng = rng if rng is not None else self._eval_rng
        node_rows = node_rows if node_rows is not None else slice(0, graph.num_nodes)
        if self.logits_tap is not None:
            self.logits_tap(node_logits.data[node_rows])
        selected = self._select_stage(
            graph, node_logits, node_rows, rng, greedy, training
        )
        if selected is None:
            return None, None
        node, job_index, log_prob, entropy = selected
        job = graph.jobs[job_index]

        if self.config.use_parallelism_control:
            limits = self.candidate_limits(job)
            limit_inputs = self._limit_inputs(limits)
            limit_logits = self.policy.limit_logits(graph, embeddings, job_index, limit_inputs)
            parallelism_limit, limit_lp, limit_ent = self._select_limit(
                limit_logits, limits, rng, greedy, training
            )
            if training:
                log_prob = log_prob + limit_lp
                entropy = entropy + limit_ent
        else:
            parallelism_limit = self.total_executors

        executor_class = None
        class_choice = self._select_class(
            graph, embeddings, job_index, node, observation, rng, greedy, training
        )
        if class_choice is not None:
            executor_class, class_lp, class_ent = class_choice
            if training:
                log_prob = log_prob + class_lp
                entropy = entropy + class_ent

        action = Action(
            node=node, parallelism_limit=parallelism_limit, executor_class=executor_class
        )
        info = StepInfo(log_prob=log_prob, entropy=entropy) if training else None
        return action, info

    def act_batch(
        self,
        observations: Sequence[Observation],
        rngs: Optional[Sequence[Optional[np.random.Generator]]] = None,
        greedy: bool = False,
        training: bool = False,
        graph_caches: Optional[Sequence[Optional[GraphCache]]] = None,
        merge_cache: Optional[MergedStructureCache] = None,
        spans: Optional[Sequence] = None,
    ) -> list[tuple[Optional[Action], Optional[StepInfo]]]:
        """Decide for several independent observations in ONE batched forward.

        The observations (typically one per served cluster session) merge into
        a single disconnected mega-graph; the GNN message passing, job/global
        summaries, the node-scoring head AND the parallelism-limit head all
        run once over the union, then each observation's decision is split
        back out of its row ranges with its own rng stream.  Per-graph global
        embeddings and per-session softmax slices mean the decisions are the
        same as calling :meth:`act` per observation with the same rngs and
        caches — batching is pure throughput, never a behaviour change (see
        ``docs/ARCHITECTURE.md``, "Serving layer").

        ``rngs`` / ``graph_caches`` / ``spans`` align with ``observations``;
        entries may be ``None``.  Observations with no schedulable node yield
        ``(None, None)``.  Traced observations' parent ``spans`` each receive
        the merged forward's four stage timings as child spans (the stages ran
        once for the whole batch, so every traced decision sees the same
        stage breakdown — which is the truth of the batched data path).
        """
        rngs = rngs if rngs is not None else [None] * len(observations)
        graph_caches = (
            graph_caches if graph_caches is not None else [None] * len(observations)
        )
        if len(rngs) != len(observations) or len(graph_caches) != len(observations):
            raise ValueError("observations, rngs and graph_caches must align")
        if not greedy and any(rng is None for rng in rngs):
            # Sampling from the shared eval rng would consume it in phase
            # order (all stage draws, then all limit draws) instead of the
            # serial per-observation order, silently breaking the
            # batched == serial guarantee.  Greedy decisions draw nothing,
            # so only sampling requires explicit per-observation streams.
            raise ValueError(
                "sampled act_batch needs one rng per observation; pass rngs="
            )
        results: list[tuple[Optional[Action], Optional[StepInfo]]] = [
            (None, None)
        ] * len(observations)
        active = [
            index
            for index, observation in enumerate(observations)
            if observation.schedulable_nodes
        ]
        if not active:
            return results
        fast = self._use_data_path(training)
        clock = self.stage_timings.clock(spans if spans is not None else ())
        components = [
            self.build_features(
                observations[index],
                graph_cache=graph_caches[index],
                reuse_buffers=fast,
            )
            for index in active
        ]
        batch = GraphBatch.merge(
            components, structure_cache=merge_cache, reuse_buffers=fast
        )
        graph = batch.features
        clock.mark()
        if fast:
            node_emb, job_emb, global_emb = self.gnn.forward_data(graph)
            embeddings = GraphEmbeddings(
                node_embeddings=Tensor(node_emb),
                job_embeddings=Tensor(job_emb),
                global_embedding=Tensor(global_emb),
            )
            clock.mark()
            node_logits = Tensor(
                self.policy.node_logits_data(
                    graph,
                    node_emb,
                    job_emb,
                    global_emb,
                    self.gnn.workspace,
                    rows=np.flatnonzero(graph.schedulable_mask),
                )
            )
        else:
            embeddings = self.gnn(graph)
            clock.mark()
            node_logits = self.policy.node_logits(graph, embeddings)
        clock.mark()

        # Phase 1: per-session stage selection (each session's own rng draw).
        stage_choices: list = []  # (index, node, job_index, log_prob, entropy)
        for position, index in enumerate(active):
            rng = rngs[index] if rngs[index] is not None else self._eval_rng
            selected = self._select_stage(
                graph, node_logits, batch.node_slices[position], rng, greedy, training
            )
            if selected is not None:
                stage_choices.append((index, *selected))

        # Phase 2: limit selection — ONE stacked pass through the limit head
        # for every session's candidate limits, then per-session softmax +
        # draw.  Each session's rng sees exactly the serial draw order (stage
        # first, limit second).
        limit_terms: dict[int, tuple] = {}
        if self.config.use_parallelism_control and stage_choices:
            candidate_limits = [
                self.candidate_limits(graph.jobs[job_index])
                for (_, _, job_index, _, _) in stage_choices
            ]
            job_rows = np.concatenate(
                [
                    np.full(len(limits), job_index, dtype=np.intp)
                    for (_, _, job_index, _, _), limits in zip(
                        stage_choices, candidate_limits
                    )
                ]
            )
            stacked_inputs = np.vstack(
                [self._limit_inputs(limits) for limits in candidate_limits]
            )
            stacked_logits = self.policy.limit_logits_rows(
                graph, embeddings, job_rows, stacked_inputs
            )
            offset = 0
            for (index, _, _, _, _), limits in zip(stage_choices, candidate_limits):
                rows = slice(offset, offset + len(limits))
                offset += len(limits)
                rng = rngs[index] if rngs[index] is not None else self._eval_rng
                session_logits = (
                    stacked_logits[rows] if training else stacked_logits.data[rows]
                )
                limit_terms[index] = self._select_limit(
                    session_logits, limits, rng, greedy, training
                )

        # Phase 3: assemble actions (+ the rare multi-resource class head).
        for index, node, job_index, log_prob, entropy in stage_choices:
            rng = rngs[index] if rngs[index] is not None else self._eval_rng
            if self.config.use_parallelism_control:
                parallelism_limit, limit_lp, limit_ent = limit_terms[index]
                if training:
                    log_prob = log_prob + limit_lp
                    entropy = entropy + limit_ent
            else:
                parallelism_limit = self.total_executors
            executor_class = None
            class_choice = self._select_class(
                graph, embeddings, job_index, node, observations[index], rng, greedy,
                training,
            )
            if class_choice is not None:
                executor_class, class_lp, class_ent = class_choice
                if training:
                    log_prob = log_prob + class_lp
                    entropy = entropy + class_ent
            action = Action(
                node=node,
                parallelism_limit=parallelism_limit,
                executor_class=executor_class,
            )
            info = StepInfo(log_prob=log_prob, entropy=entropy) if training else None
            results[index] = (action, info)
        clock.finish()
        return results

    @staticmethod
    def _choose(
        log_probs: np.ndarray, mask: np.ndarray, rng: np.random.Generator, greedy: bool
    ) -> int:
        """Sample (or arg-max) an index from masked log-probabilities."""
        masked = np.where(mask, log_probs, -np.inf)
        if greedy:
            return int(np.argmax(masked))
        probs = np.exp(masked - masked.max())
        probs[~mask] = 0.0
        probs = probs / probs.sum()
        return int(rng.choice(len(probs), p=probs))
