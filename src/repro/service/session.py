"""Server-side cluster sessions: shadow job DAGs + per-session policy state.

A *session* is one served cluster.  The server never touches the client's
simulator (or real cluster); instead each session keeps **shadow**
:class:`~repro.simulator.jobdag.JobDAG` objects reconstructed from the
client's ``decide`` snapshots.  Reconciliation is incremental and
identity-preserving:

* a job id seen for the first time builds a fresh shadow DAG from the
  snapshot's static structure (nodes, edges, durations);
* a known job id only refreshes the runtime counters *in place* on the
  existing shadow objects;
* job ids absent from a snapshot are dropped (the job finished client-side).

Because unchanged jobs keep their object identity across requests, the
session's own :class:`~repro.core.features.GraphCache` gets structure hits on
every request between job arrivals/completions — the serving hot path reuses
exactly the incremental machinery the training hot path runs on.  Each
session also owns its action rng stream (seeded by the client), which is what
makes a session's decision sequence reproducible — and independent of which
other sessions happened to share its inference batches.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Optional

import numpy as np

from ..core.features import GraphCache
from ..schedulers.base import Scheduler
from ..simulator.environment import Action, Observation
from ..simulator.executor import default_executor_class
from ..simulator.jobdag import JobDAG, Node
from ..simulator.metrics import latency_histogram
from .protocol import ProtocolError

__all__ = ["SessionState"]

# Per-session latency samples kept for the stats report; decisions beyond
# this window age out (the counters never do).
_LATENCY_WINDOW = 10_000


class SessionState:
    """Everything the server holds for one cluster session."""

    def __init__(
        self,
        session_id: str,
        num_executors: int,
        seed: int = 0,
        fallback: Optional[Scheduler] = None,
    ):
        if num_executors <= 0:
            raise ValueError("a session needs a positive executor count")
        self.session_id = session_id
        self.num_executors = int(num_executors)
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self.graph_cache = GraphCache()
        self.fallback = fallback
        # job id (client-side) -> shadow JobDAG, plus the reverse mapping used
        # to translate chosen shadow nodes back into wire ids.  The per-job
        # node_id -> Node maps are built once at shadow construction: the
        # shadow objects are identity-stable, and per-decide rebuilds would
        # sit on the serving hot path.
        self._shadow_jobs: dict[int, JobDAG] = {}
        self._shadow_nodes: dict[int, dict[int, Node]] = {}
        self._client_job_id: dict[int, int] = {}
        # Accounting.
        self.num_decisions = 0
        self.num_policy_decisions = 0
        self.num_fallback_decisions = 0
        self.latencies: deque = deque(maxlen=_LATENCY_WINDOW)
        # Newest policy version that answered this session (stamped by the
        # broker); versions are globally monotonic, so per-session they can
        # only ever increase across a hot-swap or rollback.
        self.last_policy_version: Optional[int] = None

    # ------------------------------------------------------------ reconciling
    def _build_shadow_job(self, payload: dict) -> JobDAG:
        nodes = [
            Node(
                node_id=int(spec["node_id"]),
                num_tasks=int(spec["num_tasks"]),
                task_duration=float(spec["task_duration"]),
            )
            for spec in payload["nodes"]
        ]
        return JobDAG(
            nodes,
            edges=[(int(src), int(dst)) for src, dst in payload["edges"]],
            name=str(payload.get("name", "")),
            arrival_time=float(payload.get("arrival_time", 0.0)),
        )

    @staticmethod
    def _static_matches(job: JobDAG, by_id: dict, payload: dict) -> bool:
        """True when a snapshot's static structure equals the shadow job's.

        A client may recycle a job id across episodes; trusting the id alone
        would schedule against a stale DAG.  Node count, per-node task counts
        and durations, and the edge set must all agree — anything else means
        the id now names a different job and the shadow must be rebuilt.
        """
        if len(payload["nodes"]) != len(job.nodes):
            return False
        for spec in payload["nodes"]:
            node = by_id.get(int(spec["node_id"]))
            if (
                node is None
                or node.num_tasks != int(spec["num_tasks"])
                or node.task_duration != float(spec["task_duration"])
            ):
                return False
        edges = {(int(src), int(dst)) for src, dst in payload["edges"]}
        return edges == {(src, dst) for src, dst in job.edges}

    @staticmethod
    def _refresh_counters(by_id: dict, payload: dict) -> None:
        for spec in payload["nodes"]:
            node = by_id[int(spec["node_id"])]
            finished = int(spec["num_finished_tasks"])
            running = int(spec["num_running_tasks"])
            # Log a feature touch only when a counter the feature matrix
            # reads actually changed, so the session's GraphCache delta path
            # refreshes exactly the rows this snapshot moved.
            # (next_task_index feeds no feature column.)
            if (
                finished != node.num_finished_tasks
                or running != node.num_running_tasks
            ) and node.job is not None:
                node.job.log_feature_touch(node)
            node.num_finished_tasks = finished
            node.num_running_tasks = running
            node.next_task_index = int(spec["next_task_index"])

    def observation_from_snapshot(self, payload: dict) -> Observation:
        """Reconcile the shadow state with a ``decide`` snapshot.

        Returns an :class:`Observation` over the shadow DAGs, in the
        snapshot's job order, suitable for ``DecimaAgent.act`` /
        ``act_batch`` and for the fallback heuristics alike.
        """
        job_dags: list[JobDAG] = []
        seen: set[int] = set()
        for job_payload in payload["jobs"]:
            client_id = int(job_payload["job_id"])
            if client_id in seen:
                raise ProtocolError(f"job {client_id} appears twice in one snapshot")
            seen.add(client_id)
            shadow = self._shadow_jobs.get(client_id)
            if shadow is not None and not self._static_matches(
                shadow, self._shadow_nodes[client_id], job_payload
            ):
                # The client recycled this job id for a structurally
                # different job: discard the stale shadow and rebuild.
                self._client_job_id.pop(id(shadow), None)
                shadow = None
            if shadow is None:
                shadow = self._build_shadow_job(job_payload)
                self._shadow_jobs[client_id] = shadow
                self._shadow_nodes[client_id] = {
                    node.node_id: node for node in shadow.nodes
                }
                self._client_job_id[id(shadow)] = client_id
            self._refresh_counters(self._shadow_nodes[client_id], job_payload)
            job_dags.append(shadow)
        for stale_id in [cid for cid in self._shadow_jobs if cid not in seen]:
            shadow = self._shadow_jobs.pop(stale_id)
            self._shadow_nodes.pop(stale_id, None)
            self._client_job_id.pop(id(shadow), None)

        shadow_by_id = self._shadow_jobs
        schedulable: list[Node] = []
        for job_id, node_id in payload.get("schedulable", []):
            nodes_by_id = self._shadow_nodes.get(int(job_id))
            if nodes_by_id is None:
                raise ProtocolError(f"schedulable entry names unknown job {job_id}")
            node = nodes_by_id.get(int(node_id))
            if node is None:
                raise ProtocolError(
                    f"schedulable entry names unknown node {node_id} of job {job_id}"
                )
            schedulable.append(node)

        num_free = int(payload["num_free_executors"])
        source_id = payload.get("source_job")
        cls = default_executor_class()
        return Observation(
            wall_time=float(payload.get("wall_time", 0.0)),
            job_dags=job_dags,
            schedulable_nodes=schedulable,
            num_free_executors=num_free,
            free_executors_by_class=Counter({cls: num_free} if num_free else {}),
            source_job=shadow_by_id.get(int(source_id)) if source_id is not None else None,
            total_executors=int(payload.get("total_executors", self.num_executors)),
            # The serving protocol models homogeneous clusters: no executor
            # classes on the wire, so the agent's multi-resource head (and the
            # action's executor_class) stay disabled end to end.
            executor_classes=[],
            num_jobs_in_system=int(payload.get("num_jobs_in_system", len(job_dags))),
        )

    # -------------------------------------------------------------- encoding
    def encode_action(self, action: Optional[Action]) -> dict:
        """Translate a chosen shadow action back into wire job/node ids."""
        if action is None or action.node is None:
            return {"noop": True}
        node = action.node
        job = node.job
        client_id = self._client_job_id.get(id(job))
        if client_id is None:
            raise ProtocolError("action refers to a job this session does not track")
        return {
            "noop": False,
            "job_id": int(client_id),
            "node_id": int(node.node_id),
            "parallelism_limit": int(action.parallelism_limit),
        }

    def resolve_node(self, job_id: int, node_id: int) -> Node:
        """Shadow node for a wire ``(job_id, node_id)`` pair.

        The online-learning trainer replays recorded snapshots through a
        fresh session and uses this to turn each logged action's wire ids
        back into the replayed shadow objects the agent scores against.
        """
        nodes_by_id = self._shadow_nodes.get(int(job_id))
        if nodes_by_id is None:
            raise KeyError(f"session does not track job {job_id}")
        node = nodes_by_id.get(int(node_id))
        if node is None:
            raise KeyError(f"job {job_id} has no node {node_id}")
        return node

    # ------------------------------------------------------------ accounting
    def record_decision(self, source: str, latency_seconds: float) -> None:
        self.num_decisions += 1
        if source == "fallback":
            self.num_fallback_decisions += 1
        else:
            self.num_policy_decisions += 1
        self.latencies.append(float(latency_seconds))

    @property
    def num_jobs(self) -> int:
        return len(self._shadow_jobs)

    def stats(self) -> dict:
        return {
            "session_id": self.session_id,
            "num_executors": self.num_executors,
            "num_jobs": self.num_jobs,
            "num_decisions": self.num_decisions,
            "num_policy_decisions": self.num_policy_decisions,
            "num_fallback_decisions": self.num_fallback_decisions,
            "last_policy_version": self.last_policy_version,
            "graph_rebuilds": self.graph_cache.num_rebuilds,
            "graph_delta_refreshes": self.graph_cache.num_delta_refreshes,
            "graph_full_refreshes": self.graph_cache.num_full_refreshes,
            # Canonical latency schema: milliseconds under "latency_ms", the
            # same key and unit the broker and loadgen report, so every layer
            # of the stack reads one schema (the metrics registry's
            # decision_latency_ms series is the aggregated form).
            "latency_ms": latency_histogram(
                [seconds * 1000.0 for seconds in self.latencies]
            ),
            # Deprecated since PR 9: seconds under "latency".  Kept one
            # release so existing dashboards/scripts keep reading; prefer
            # "latency_ms".
            "latency": latency_histogram(self.latencies),
        }
