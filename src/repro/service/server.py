"""The policy server: a long-lived TCP service hosting one Decima agent.

Two transports share one :class:`ServerCore` (sessions, broker, adaptive
batch window, protocol handlers):

* :class:`PolicyServer` — the original threaded transport: one **accept**
  thread, one **connection** thread per client, one **dispatch** thread
  coalescing pending requests into broker batches;
* :class:`~repro.service.aioserver.AsyncPolicyServer` — the asyncio
  transport: a single event loop multiplexes every connection plus the
  dispatch coroutine, so a shard process serves hundreds of sessions on two
  threads (the loop and the caller) instead of one thread per connection.

Both answer ``decide`` requests strictly sequentially per connection, so a
session's shadow state is never touched concurrently; and because every
session's decisions depend only on its own rng stream, graph cache and
observations, the batch composition the dispatcher happens to form has no
effect on any session's action sequence.  The coalescing window adapts to
offered load (:class:`~repro.service.batcher.AdaptiveBatchWindow`): near
zero with a lone session, a few milliseconds when dozens of sessions are
streaming requests.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Optional

from ..core.agent import DecimaAgent, StageTimings
from ..obs import FlightRecorder, MetricsRegistry, SpanStore, get_logger, log_event
from ..schedulers import make_scheduler, scheduler_names
from ..simulator.environment import SimulatorConfig
from .batcher import (
    AdaptiveBatchWindow,
    CircuitBreaker,
    DecisionRequest,
    DecisionResult,
    RequestBroker,
)
from .protocol import PROTOCOL_VERSION, ProtocolError, read_message, write_message
from .session import SessionState

__all__ = ["PolicyServer", "ServerCore"]

_QUEUE_SENTINEL = None

_logger = get_logger("service.server")


def _gauge_family(help: str, samples: list) -> dict:
    return {"type": "gauge", "help": help, "samples": samples}


def _counter_family(help: str, value: float) -> dict:
    return {
        "type": "counter",
        "help": help,
        "samples": [{"labels": {}, "value": float(value)}],
    }


def _gauge_value(help: str, value: float) -> dict:
    return _gauge_family(help, [{"labels": {}, "value": float(value)}])


class _PendingRequest:
    """A decide request parked on the dispatch queue until it is answered."""

    __slots__ = ("request", "result", "error", "done")

    def __init__(self, request: DecisionRequest):
        self.request = request
        self.result: Optional[DecisionResult] = None
        self.error: Optional[str] = None
        self.done = threading.Event()


class ServerCore:
    """Transport-independent half of a policy server.

    Owns the request broker, the session registry and the protocol-level
    handlers (open/close sessions, reconcile ``decide`` snapshots, build
    reply payloads).  Transports add sockets and a dispatch loop on top; the
    dispatch loop asks :meth:`window_seconds` how long to hold a batch open
    and reports each dispatched batch back through :meth:`observe_batch`.
    """

    def __init__(
        self,
        agent: DecimaAgent,
        host: str = "127.0.0.1",
        port: int = 0,
        fallback: str = "fifo",
        slo_ms: Optional[float] = None,
        breach_threshold: int = 3,
        cooldown_decisions: int = 20,
        batched: bool = True,
        greedy: bool = True,
        max_batch_size: int = 64,
        batch_window_ms: float = 2.0,
        adaptive_batch_window: bool = True,
        service_name: str = "server",
        flight_dir: Optional[str] = None,
        flight_capacity: int = 512,
        trace_capacity: int = 256,
    ):
        if fallback not in scheduler_names():
            known = ", ".join(scheduler_names())
            raise KeyError(f"unknown fallback scheduler {fallback!r}; known: {known}")
        self.agent = agent
        self.host = host
        self.port = int(port)
        self.default_fallback = fallback
        self.max_batch_size = int(max_batch_size)
        self.batch_window_s = float(batch_window_ms) / 1000.0
        self.adaptive_window: Optional[AdaptiveBatchWindow] = None
        if adaptive_batch_window:
            self.adaptive_window = AdaptiveBatchWindow(max_ms=float(batch_window_ms))
        breaker = None
        if slo_ms is not None:
            breaker = CircuitBreaker(
                slo_seconds=float(slo_ms) / 1000.0,
                breach_threshold=breach_threshold,
                cooldown_decisions=cooldown_decisions,
            )
        self.broker = RequestBroker(agent, batched=batched, greedy=greedy, breaker=breaker)
        self.sessions: dict[str, SessionState] = {}
        self._sessions_lock = threading.Lock()
        self._session_counter = 0
        # --- observability (see docs/OBSERVABILITY.md) ---------------------
        # One registry, span store and flight recorder per server/shard.
        # Everything here reads existing state lazily (collectors) or sits
        # behind None checks on the hot path, so an unscraped, untraced
        # server does the same work it did before telemetry existed.
        self.service_name = str(service_name)
        self.metrics = MetricsRegistry()
        self.spans = SpanStore(max_traces=int(trace_capacity))
        self.flight = FlightRecorder(
            capacity=int(flight_capacity),
            service=self.service_name,
            dump_dir=flight_dir,
        )
        self.broker.flight = self.flight
        self.broker.latency_metric = self.metrics.histogram(
            "decision_latency_ms", "End-to-end broker decision latency"
        )
        self.metrics.register_collector(self._collect_metrics)
        if breaker is not None:
            breaker.on_open = self._on_breaker_open

    # ------------------------------------------------------------ observability
    def _collect_metrics(self) -> dict:
        """Snapshot-time bridge from the legacy stat counters to the registry.

        This is what absorbs the old ad-hoc ``stats()`` schemas: the broker,
        breaker, window and :class:`StageTimings` keep their plain counters
        (zero per-decision registry cost) and this collector translates them
        into metric families only when someone scrapes.
        """
        broker = self.broker
        timings = self.agent.stage_timings.snapshot()
        fragment = {
            "policy_version": _gauge_value(
                "Monotonic id of the serving weights", broker.policy_version
            ),
            "sessions_open": _gauge_value(
                "Currently connected cluster sessions", self.num_live_sessions()
            ),
            "decisions_total": _counter_family(
                "Answered decisions (policy + fallback)", broker.num_decisions
            ),
            "fallback_decisions_total": _counter_family(
                "Decisions answered by the fallback heuristic",
                broker.num_fallback_decisions,
            ),
            "slo_breaches_total": _counter_family(
                "Decisions over the latency SLO", broker.num_slo_breaches
            ),
            "policy_swaps_total": _counter_family(
                "Hot-swapped policy installs applied", broker.num_policy_swaps
            ),
            "batches_total": _counter_family(
                "Dispatched decision batches", broker.num_batches
            ),
            "max_batch_size": _gauge_value(
                "Largest batch dispatched so far", broker.max_batch_size
            ),
            "graph_delta_refreshes_total": _counter_family(
                "GraphCache row-level delta refreshes", broker.graph_delta_refreshes
            ),
            "graph_full_refreshes_total": _counter_family(
                "GraphCache full feature refreshes", broker.graph_full_refreshes
            ),
            "graph_rebuilds_total": _counter_family(
                "GraphCache structure rebuilds", broker.graph_rebuilds
            ),
            "merged_structure_rebuilds_total": _counter_family(
                "Mega-graph merged-structure rebuilds",
                broker.merge_cache.num_rebuilds,
            ),
            "stage_steps_total": _counter_family(
                "act()/act_batch() calls timed by the stage clock",
                timings["num_steps"],
            ),
            "stage_mean_ms": _gauge_family(
                "Per-step mean wall time of each hot-path stage",
                [
                    {
                        "labels": {"stage": stage},
                        "value": timings["stages"][stage]["mean_ms"],
                    }
                    for stage in StageTimings.STAGES
                ],
            ),
            "flight_events_total": _counter_family(
                "Events appended to the flight recorder", self.flight.num_events
            ),
            "flight_dumps_total": _counter_family(
                "Flight-recorder dumps taken", self.flight.num_dumps
            ),
            "trace_spans_total": _counter_family(
                "Spans filed in the span store", self.spans.num_spans
            ),
        }
        if broker.breaker is not None:
            breaker = broker.breaker
            fragment["breaker_open"] = _gauge_value(
                "1 while the SLO circuit-breaker is open",
                1.0 if breaker.state == "open" else 0.0,
            )
            fragment["breaker_opens_total"] = _counter_family(
                "Circuit-breaker trips", breaker.num_opens
            )
        if self.adaptive_window is not None:
            window = self.adaptive_window
            fragment["batch_window_ms"] = _gauge_value(
                "Current adaptive coalescing window", window.seconds() * 1000.0
            )
            fragment["batch_ema_size"] = _gauge_value(
                "EMA of dispatched batch sizes", window.ema_batch_size
            )
        return fragment

    def _on_breaker_open(self, breaker: CircuitBreaker) -> None:
        """SLO trip: record it, dump the flight ring, log the event."""
        self.flight.record(
            "breaker_open",
            num_opens=breaker.num_opens,
            slo_ms=breaker.slo_seconds * 1000.0,
            policy_version=self.broker.policy_version,
        )
        self.flight.dump("slo_breaker_open")
        log_event(
            _logger,
            "breaker_open",
            service=self.service_name,
            num_opens=breaker.num_opens,
            slo_ms=breaker.slo_seconds * 1000.0,
        )

    def metrics_payload(self, message: dict) -> dict:
        """Handle a ``metrics`` request (data plane and control plane alike)."""
        format_name = str(message.get("format", "json"))
        if format_name == "prometheus":
            return {
                "type": "metrics",
                "format": "prometheus",
                "body": self.metrics.prometheus(),
            }
        if format_name != "json":
            raise ProtocolError(f"unknown metrics format {format_name!r}")
        return {
            "type": "metrics",
            "format": "json",
            "service": self.service_name,
            "metrics": self.metrics.snapshot(),
        }

    def trace_payload(self, message: dict) -> dict:
        """Handle a ``trace`` request: every stored span of one trace id."""
        trace_id = message.get("trace_id")
        if not trace_id:
            raise ProtocolError("trace request needs a trace_id")
        spans = self.spans.get(str(trace_id))
        spans.sort(key=lambda span: span.get("start_time", 0.0))
        return {
            "type": "trace",
            "trace_id": str(trace_id),
            "service": self.service_name,
            "spans": spans,
        }

    def record_spans(self, message: dict) -> dict:
        """Handle a ``trace_report``: a client files its own finished spans.

        This is how the client half of a traced decision lands in the same
        store as the server half — the loadgen reports its ``client.decide``
        span here after each traced reply.
        """
        spans = message.get("spans", [])
        if not isinstance(spans, list):
            raise ProtocolError("trace_report spans must be a list")
        self.spans.extend(span for span in spans if isinstance(span, dict))
        return {"type": "trace_reported", "count": len(spans)}

    def flight_payload(self, message: dict) -> dict:
        """Handle a ``flight`` request: dump (default) or peek at the ring."""
        if message.get("dump", True):
            recorder = self.flight.dump(str(message.get("reason", "on_demand")))
        else:
            recorder = {
                "service": self.service_name,
                "events": self.flight.events(),
            }
        return {
            "type": "flight",
            "service": self.service_name,
            "recorder": recorder,
            "stats": self.flight.stats(),
        }

    def finish_request(
        self, request: DecisionRequest, result: DecisionResult
    ) -> None:
        """Close a traced request's ``server.decide`` span (no-op untraced)."""
        span = request.span
        if span is not None:
            span.set_tag("source", result.source)
            span.set_tag("policy_version", result.policy_version)
            span.finish()

    # ---------------------------------------------------------------- hot-swap
    def install_policy(self, state: dict, version: int) -> None:
        """Stage refreshed weights for an atomic hot-swap.

        Delegates to the broker: the swap is applied at the top of the next
        decision round on the dispatch thread/coroutine, so no in-flight
        forward ever sees mixed weights and no session is dropped.
        """
        self.broker.install(state, version)

    @property
    def policy_version(self) -> int:
        return self.broker.policy_version

    # ------------------------------------------------------------- batch window
    def window_seconds(self) -> float:
        """How long the dispatcher should hold the current batch open."""
        if self.adaptive_window is not None:
            return self.adaptive_window.seconds()
        return self.batch_window_s

    def observe_batch(self, batch_size: int) -> None:
        if self.adaptive_window is not None:
            self.adaptive_window.observe(batch_size)

    def num_live_sessions(self) -> int:
        with self._sessions_lock:
            return len(self.sessions)

    # ----------------------------------------------------------------- handlers
    def open_session(self, message: dict, existing: Optional[SessionState]):
        """Handle a ``hello``: register a session, return it + the welcome."""
        if existing is not None:
            # Allowing a re-hello would orphan the previous session in
            # self.sessions (its id blocked until restart); refuse instead.
            raise ProtocolError(
                f"session {existing.session_id!r} is already open on this connection"
            )
        with self._sessions_lock:
            self._session_counter += 1
            default_id = f"session-{self._session_counter}"
        session_id = str(message.get("session_id") or default_id)
        num_executors = int(message.get("num_executors", self.agent.total_executors))
        fallback_name = str(message.get("fallback", self.default_fallback))
        if fallback_name not in scheduler_names():
            raise ProtocolError(f"unknown fallback scheduler {fallback_name!r}")
        fallback = make_scheduler(
            fallback_name, SimulatorConfig(num_executors=num_executors)
        )
        session = SessionState(
            session_id=session_id,
            num_executors=num_executors,
            seed=int(message.get("seed", 0)),
            fallback=fallback,
        )
        with self._sessions_lock:
            if session_id in self.sessions:
                raise ProtocolError(f"session id {session_id!r} is already connected")
            self.sessions[session_id] = session
        self.flight.record(
            "session_open", session_id=session_id, num_executors=num_executors
        )
        log_event(
            _logger,
            "session_open",
            service=self.service_name,
            session_id=session_id,
            num_executors=num_executors,
            fallback=fallback_name,
        )
        # Version negotiation: a hello without "protocol" is a v1 client.
        client_protocol = int(message.get("protocol", 1))
        welcome = {
            "type": "welcome",
            "session_id": session_id,
            "scheduler": self.agent.name,
            "total_executors": self.agent.total_executors,
            "fallback": fallback_name,
            "batched": self.broker.batched,
            "greedy": self.broker.greedy,
            "protocol": min(client_protocol, PROTOCOL_VERSION),
            "policy_version": self.broker.policy_version,
        }
        return session, welcome

    def deregister_session(self, session: Optional[SessionState]) -> None:
        if session is None:
            return
        with self._sessions_lock:
            self.sessions.pop(session.session_id, None)
        # Drop the broker's merged-structure cache: it holds strong
        # references to the dead session's structures (and through
        # them its shadow DAGs) until the next multi-session batch.
        self.broker.merge_cache.reset()
        self.flight.record(
            "session_close",
            session_id=session.session_id,
            num_decisions=session.num_decisions,
        )
        log_event(
            _logger,
            "session_close",
            service=self.service_name,
            session_id=session.session_id,
            num_decisions=session.num_decisions,
            num_fallback_decisions=session.num_fallback_decisions,
        )

    def build_request(
        self, session: Optional[SessionState], message: dict
    ) -> DecisionRequest:
        if session is None:
            raise ProtocolError("decide before hello — open a session first")
        observation = session.observation_from_snapshot(message["observation"])
        request = DecisionRequest(
            session=session,
            observation=observation,
            request_id=message.get("request_id"),
        )
        # A traced decide carries {"trace": {"trace_id", "span_id"}} (v3
        # protocol, optional): open this hop's span under the caller's.  The
        # untraced hot path pays one dict lookup.
        trace = message.get("trace")
        if trace:
            request.span = self.spans.span(
                "server.decide",
                trace,
                service=self.service_name,
                tags={"session_id": session.session_id},
            )
        return request

    @staticmethod
    def action_reply(
        session: SessionState, message: dict, result: DecisionResult
    ) -> dict:
        reply = {
            "type": "action",
            "request_id": message.get("request_id"),
            "source": result.source,
            "latency_ms": result.latency_seconds * 1000.0,
            "policy_version": result.policy_version,
        }
        reply.update(session.encode_action(result.action))
        return reply

    def stats_payload(self, session: Optional[SessionState]) -> dict:
        payload = {
            "type": "stats",
            "broker": self.broker.stats(),
            "num_sessions": self.num_live_sessions(),
        }
        if self.adaptive_window is not None:
            payload["batch_window"] = self.adaptive_window.stats()
        if session is not None:
            payload["session"] = session.stats()
        return payload


class PolicyServer(ServerCore):
    """Serve scheduling decisions for many concurrent cluster sessions.

    The threaded transport: one accept thread, one connection thread per
    client, one dispatch thread.  (For hundreds of sessions per process use
    :class:`~repro.service.aioserver.AsyncPolicyServer`, which multiplexes
    the same :class:`ServerCore` on an event loop.)
    """

    def __init__(self, agent: DecimaAgent, **kwargs):
        super().__init__(agent, **kwargs)
        self._queue: "queue.Queue" = queue.Queue()
        self._requeue: list = []  # same-session requests deferred to the next batch
        self._listener: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        self._running = False

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` — resolves port 0 after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> tuple:
        """Bind, listen and spin up the accept + dispatch threads."""
        if self._running:
            raise RuntimeError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        # Closing a socket does not reliably unblock accept() on every
        # platform; a short timeout lets the accept loop notice stop().
        listener.settimeout(0.2)
        self._listener = listener
        self._running = True
        for target, name in (
            (self._accept_loop, "policy-server-accept"),
            (self._dispatch_loop, "policy-server-dispatch"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self.address

    def stop(self) -> None:
        """Stop accepting, unblock the dispatcher and close every connection."""
        if not self._running:
            return
        self._running = False
        self._queue.put(_QUEUE_SENTINEL)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def __enter__(self) -> "PolicyServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ---------------------------------------------------------------- accept
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running:
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed by stop()
            connection.settimeout(None)
            with self._connections_lock:
                self._connections.add(connection)
            thread = threading.Thread(
                target=self._connection_loop,
                args=(connection,),
                name="policy-server-conn",
                daemon=True,
            )
            thread.start()

    # ------------------------------------------------------------- connection
    def _connection_loop(self, connection: socket.socket) -> None:
        stream = connection.makefile("rwb")
        session: Optional[SessionState] = None
        try:
            while True:
                try:
                    message = read_message(stream)
                except ProtocolError as error:
                    write_message(stream, {"type": "error", "message": str(error)})
                    continue
                except (OSError, ValueError):
                    return  # connection torn down (possibly by stop())
                if message is None:
                    return
                kind = message["type"]
                try:
                    if kind == "hello":
                        session = self._handle_hello(stream, message, session)
                    elif kind == "decide":
                        self._handle_decide(stream, session, message)
                    elif kind == "stats":
                        write_message(stream, self.stats_payload(session))
                    elif kind == "metrics":
                        write_message(stream, self.metrics_payload(message))
                    elif kind == "trace":
                        write_message(stream, self.trace_payload(message))
                    elif kind == "trace_report":
                        write_message(stream, self.record_spans(message))
                    elif kind == "flight":
                        write_message(stream, self.flight_payload(message))
                    elif kind == "bye":
                        write_message(stream, {"type": "goodbye"})
                        return
                    else:
                        write_message(
                            stream,
                            {"type": "error", "message": f"unknown request type {kind!r}"},
                        )
                except ProtocolError as error:
                    write_message(stream, {"type": "error", "message": str(error)})
                except (KeyError, TypeError, ValueError) as error:
                    # Malformed payload (missing fields, wrong types): answer
                    # with an error frame and keep the connection usable, as
                    # the protocol contract promises.
                    write_message(
                        stream,
                        {"type": "error",
                         "message": f"malformed {kind!r} payload: {error!r}"},
                    )
                except (BrokenPipeError, OSError):
                    return
        finally:
            stream.close()
            try:
                connection.close()
            except OSError:
                pass
            with self._connections_lock:
                self._connections.discard(connection)
            self.deregister_session(session)

    def _handle_hello(
        self, stream, message: dict, existing: Optional[SessionState]
    ) -> SessionState:
        session, welcome = self.open_session(message, existing)
        try:
            write_message(stream, welcome)
        except (BrokenPipeError, OSError):
            # The client vanished before seeing the welcome: deregister, or
            # the id would stay blocked (the connection loop's cleanup only
            # knows about sessions it returned).
            self.deregister_session(session)
            raise
        return session

    def _handle_decide(
        self, stream, session: Optional[SessionState], message: dict
    ) -> None:
        pending = _PendingRequest(self.build_request(session, message))
        self._queue.put(pending)
        # Bounded wait: if the request raced stop() (enqueued after the
        # dispatch loop drained its sentinel and exited), nothing will ever
        # answer it — fail it instead of hanging this connection thread.
        while not pending.done.wait(timeout=0.5):
            if not self._running:
                pending.error = "server shutting down"
                break
        if pending.error is not None:
            write_message(stream, {"type": "error", "message": pending.error})
            return
        result = pending.result
        assert result is not None
        self.finish_request(pending.request, result)
        write_message(stream, self.action_reply(session, message, result))

    # --------------------------------------------------------------- dispatch
    def _drain_batch(self, first: "_PendingRequest") -> list:
        """Coalesce pending requests: up to ``max_batch_size`` distinct sessions.

        After the first request lands we wait at most :meth:`window_seconds`
        for more sessions to show up — long enough for concurrently blocked
        clients to coalesce, far below any reasonable decision SLO.
        """
        batch = [first]
        sessions = {id(first.request.session)}
        deadline = time.perf_counter() + self.window_seconds()
        # Once every live session has a request in the batch, no further
        # request can arrive (the protocol is synchronous per session) —
        # don't make a lone client sit out the full window.
        max_size = min(self.max_batch_size, max(self.num_live_sessions(), 1))
        while len(batch) < max_size:
            remaining = deadline - time.perf_counter()
            try:
                item = (
                    self._queue.get_nowait()
                    if remaining <= 0
                    else self._queue.get(timeout=remaining)
                )
            except queue.Empty:
                break
            if item is _QUEUE_SENTINEL:
                self._queue.put(_QUEUE_SENTINEL)  # keep the stop signal visible
                break
            if id(item.request.session) in sessions:
                # One in-flight request per session: answer it in the next
                # batch (cannot happen with well-behaved synchronous clients).
                self._requeue.append(item)
                continue
            sessions.add(id(item.request.session))
            batch.append(item)
        return batch

    def _dispatch_loop(self) -> None:
        while True:
            if self._requeue:
                item = self._requeue.pop(0)
            else:
                item = self._queue.get()
            if item is _QUEUE_SENTINEL:
                # Unblock anything still parked.
                while True:
                    try:
                        pending = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if pending is _QUEUE_SENTINEL:
                        continue
                    pending.error = "server shutting down"
                    pending.done.set()
                return
            batch = self._drain_batch(item)
            self.observe_batch(len(batch))
            try:
                results = self.broker.decide([pending.request for pending in batch])
            except Exception as error:  # noqa: BLE001 - must answer every request
                for pending in batch:
                    pending.error = f"decision failed: {error!r}"
                    pending.done.set()
                continue
            for pending, result in zip(batch, results):
                pending.result = result
                pending.done.set()
