"""One construction story for every serving topology.

Before this module, the three server classes grew overlapping-but-divergent
keyword sets and every caller (examples, the test factory, CI smoke scripts)
hand-assembled its own kwarg dict.  :class:`ServingConfig` is the single
declarative description — transport, shard count, admission limit, SLO
window, batch window, kernel backend, checkpoint store path — and
:func:`build_server` turns it into the right topology:

* ``num_shards == 1`` → one in-process server (``transport`` picks the
  threaded :class:`~repro.service.server.PolicyServer` or the asyncio
  :class:`~repro.service.aioserver.AsyncPolicyServer`);
* ``num_shards > 1`` → a :class:`~repro.service.fleet.ServingFleet` (shard
  processes always run the asyncio transport; ``transport`` only governs the
  single-process case).

The agent can be passed in directly or loaded from ``checkpoint_dir`` (a
:class:`~repro.core.checkpoints.CheckpointStore` directory); setting
``kernel_backend`` rebuilds the agent with that GNN kernel backend, since the
backend is bound at construction time.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional, Union

from ..core.agent import DecimaAgent
from ..core.checkpoints import CheckpointStore, agent_spec, build_agent

__all__ = ["ServingConfig", "build_server"]

_TRANSPORTS = ("threaded", "asyncio")


@dataclass
class ServingConfig:
    """Declarative description of a policy-serving deployment."""

    # Topology.
    transport: str = "threaded"
    num_shards: int = 1
    host: str = "127.0.0.1"
    port: int = 0
    control_port: int = 0  # fleet only: the router's control plane listener
    max_sessions: Optional[int] = None  # fleet only: admission limit
    start_method: Optional[str] = None  # fleet only: mp start method
    # Decision path.
    fallback: str = "fifo"
    slo_ms: Optional[float] = None
    breach_threshold: int = 3
    cooldown_decisions: int = 20
    batched: bool = True
    greedy: bool = True
    max_batch_size: int = 64
    batch_window_ms: float = 2.0
    adaptive_batch_window: bool = True
    # Agent sourcing.
    kernel_backend: Optional[str] = None
    checkpoint_dir: Optional[str] = None
    # Online learning (fleet only): record per-decision experience in each
    # shard so an OnlineLearningManager can drain it for background updates.
    collect_experience: bool = False
    # Observability (see docs/OBSERVABILITY.md): where flight-recorder dumps
    # are written (None = in-memory only, or the DECIMA_FLIGHT_DIR env), how
    # many events each recorder ring holds, and how many traces each span
    # store retains.
    flight_dir: Optional[str] = None
    flight_capacity: int = 512
    trace_capacity: int = 256

    def __post_init__(self) -> None:
        if self.transport not in _TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; known: {_TRANSPORTS}"
            )
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")

    def server_kwargs(self) -> dict:
        """The per-server keyword set shared by both transports and shards."""
        return {
            "fallback": self.fallback,
            "slo_ms": self.slo_ms,
            "breach_threshold": self.breach_threshold,
            "cooldown_decisions": self.cooldown_decisions,
            "batched": self.batched,
            "greedy": self.greedy,
            "max_batch_size": self.max_batch_size,
            "batch_window_ms": self.batch_window_ms,
            "adaptive_batch_window": self.adaptive_batch_window,
            "flight_dir": self.flight_dir,
            "flight_capacity": self.flight_capacity,
            "trace_capacity": self.trace_capacity,
        }

    def resolve_agent(self, agent: Optional[DecimaAgent] = None) -> DecimaAgent:
        """The agent this deployment serves.

        Falls back to the ``checkpoint_dir`` store's latest version when no
        agent is passed; applies the ``kernel_backend`` override by rebuilding
        (the GNN binds its kernels at construction).
        """
        if agent is None:
            if self.checkpoint_dir is None:
                raise ValueError(
                    "pass an agent or set checkpoint_dir so one can be loaded"
                )
            agent = CheckpointStore(self.checkpoint_dir).load()
        if (
            self.kernel_backend is not None
            and self.kernel_backend != agent.config.kernel_backend
        ):
            spec = agent_spec(agent)
            spec.config = copy.deepcopy(spec.config)
            spec.config.kernel_backend = self.kernel_backend
            agent = build_agent(spec, agent.state_dict())
        return agent


def build_server(
    config: ServingConfig, agent: Optional[DecimaAgent] = None
) -> Union["PolicyServer", "AsyncPolicyServer", "ServingFleet"]:
    """Construct (but do not start) the deployment ``config`` describes.

    Returns a :class:`PolicyServer`, :class:`AsyncPolicyServer` or
    :class:`ServingFleet`; all three share the ``start()/stop()`` and
    context-manager lifecycle.
    """
    from .aioserver import AsyncPolicyServer
    from .fleet import ServingFleet
    from .server import PolicyServer

    agent = config.resolve_agent(agent)
    if config.num_shards > 1:
        return ServingFleet(
            agent,
            num_shards=config.num_shards,
            host=config.host,
            port=config.port,
            control_port=config.control_port,
            max_sessions=config.max_sessions,
            start_method=config.start_method,
            collect_experience=config.collect_experience,
            **config.server_kwargs(),
        )
    server_class = PolicyServer if config.transport == "threaded" else AsyncPolicyServer
    return server_class(
        agent, host=config.host, port=config.port, **config.server_kwargs()
    )
