"""Policy-serving subsystem: serve a trained Decima agent to many clusters.

The training/evaluation side of this repo exercises the policy inside offline
episodes; this package turns the same agent into a **long-lived scheduling
service**.  Many concurrent *cluster sessions* (each a client cluster with
its own jobs, rng stream and incremental graph cache) connect over a
newline-delimited-JSON TCP protocol; a request broker coalesces their pending
observations into one disconnected mega-graph and answers them with a single
batched GNN forward — with the documented guarantee that batching never
changes any session's decisions.  A per-request latency SLO guards the policy
path: when it breaches, a circuit-breaker temporarily routes decisions to the
session's registered fallback heuristic (any name in the scheduler registry)
so clusters keep scheduling.

Layers (see ``docs/ARCHITECTURE.md``, "Serving layer"):

* :mod:`~repro.service.protocol` — the wire format (observation snapshots in,
  actions out);
* :mod:`~repro.service.session`  — per-cluster shadow job DAGs + policy state;
* :mod:`~repro.service.batcher`  — cross-session batching and the SLO breaker;
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — the TCP
  service and its synchronous client (plus the episode driver);
* :mod:`~repro.service.loadgen`  — the synthetic multi-session load generator.
"""

from .batcher import CircuitBreaker, DecisionRequest, DecisionResult, RequestBroker
from .client import PolicyClient, decode_action, drive_episode
from .loadgen import run_load
from .protocol import (
    ProtocolError,
    encode_message,
    encode_observation,
    read_message,
    write_message,
)
from .server import PolicyServer
from .session import SessionState

__all__ = [
    "CircuitBreaker",
    "DecisionRequest",
    "DecisionResult",
    "RequestBroker",
    "PolicyClient",
    "decode_action",
    "drive_episode",
    "run_load",
    "ProtocolError",
    "encode_message",
    "encode_observation",
    "read_message",
    "write_message",
    "PolicyServer",
    "SessionState",
]
