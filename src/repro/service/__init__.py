"""Policy-serving subsystem: serve a trained Decima agent to many clusters.

The training/evaluation side of this repo exercises the policy inside offline
episodes; this package turns the same agent into a **long-lived scheduling
service**.  Many concurrent *cluster sessions* (each a client cluster with
its own jobs, rng stream and incremental graph cache) connect over a
newline-delimited-JSON TCP protocol; a request broker coalesces their pending
observations into one disconnected mega-graph and answers them with a single
batched GNN forward — with the documented guarantee that batching never
changes any session's decisions.  A per-request latency SLO guards the policy
path: when it breaches, a circuit-breaker temporarily routes decisions to the
session's registered fallback heuristic (any name in the scheduler registry)
so clusters keep scheduling.

Beyond the single-process server, the package scales out as a **sharded
fleet**: N :class:`AsyncPolicyServer` shard processes (each with its own
agent + broker) behind a :class:`ShardRouter` front that hashes sessions to
shards, applies admission control under overload, and exposes a control-plane
endpoint (health / per-shard SLO stats / live reconfiguration).
:class:`ServingFleet` wires the whole topology up with one call.  Router→shard
dispatch stays bit-identical to single-server serial dispatch at fixed seeds
(the ``sharded_vs_serial_service`` differential pair).

Layers (see ``docs/ARCHITECTURE.md``, "Serving layer"):

* :mod:`~repro.service.protocol` — the wire format (observation snapshots in,
  actions out);
* :mod:`~repro.service.session`  — per-cluster shadow job DAGs + policy state;
* :mod:`~repro.service.batcher`  — cross-session batching, the adaptive batch
  window and the SLO breaker;
* :mod:`~repro.service.server` / :mod:`~repro.service.aioserver` — the
  threaded and asyncio transports over one :class:`ServerCore`;
* :mod:`~repro.service.router` / :mod:`~repro.service.fleet` — the sharded
  fleet: session-hashing router, admission control, control plane, shard
  process management;
* :mod:`~repro.service.client`  — the synchronous session + control clients
  (plus the episode driver);
* :mod:`~repro.service.loadgen`  — the synthetic multi-session load generator.
"""

from .aioserver import AsyncPolicyServer
from .batcher import (
    AdaptiveBatchWindow,
    CircuitBreaker,
    DecisionRequest,
    DecisionResult,
    RequestBroker,
)
from .client import ControlClient, PolicyClient, decode_action, drive_episode
from .config import ServingConfig, build_server
from .fleet import ServingFleet
from .loadgen import run_load
from .protocol import (
    ProtocolError,
    encode_message,
    encode_observation,
    read_message,
    write_message,
)
from .router import ShardRouter, ShardState, shard_for_session
from .server import PolicyServer, ServerCore
from .session import SessionState

__all__ = [
    "AdaptiveBatchWindow",
    "AsyncPolicyServer",
    "CircuitBreaker",
    "ControlClient",
    "DecisionRequest",
    "DecisionResult",
    "RequestBroker",
    "PolicyClient",
    "decode_action",
    "drive_episode",
    "run_load",
    "ProtocolError",
    "ServingConfig",
    "ServingFleet",
    "build_server",
    "ShardRouter",
    "ShardState",
    "shard_for_session",
    "encode_message",
    "encode_observation",
    "read_message",
    "write_message",
    "PolicyServer",
    "ServerCore",
    "SessionState",
]
