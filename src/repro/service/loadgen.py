"""Synthetic load generator for the policy server.

Spawns N concurrent *cluster sessions*, each a thread running its own seeded
simulator episode loop through :func:`repro.service.client.drive_episode`.
Sessions keep starting fresh episodes until the fleet has collectively made
the requested number of decisions, so the server sees sustained concurrent
traffic (and its broker real cross-session batches) rather than one burst.

The returned summary is JSON-ready: fleet decisions/sec, the decision-source
breakdown (policy vs SLO fallback), and the shared p50/p95/p99 latency
histogram (:func:`repro.simulator.metrics.latency_histogram`).
"""

from __future__ import annotations

import threading
import time
from typing import Optional

import numpy as np

from ..simulator.environment import SchedulingEnvironment, SimulatorConfig
from ..simulator.metrics import latency_histogram
from ..workloads.arrivals import batched_arrivals
from ..workloads.tpch import sample_tpch_jobs
from .client import PolicyClient, drive_episode

__all__ = ["run_load"]


def run_load(
    host: str,
    port: int,
    num_sessions: int = 4,
    num_jobs: int = 6,
    num_executors: int = 10,
    min_total_decisions: int = 200,
    seed: int = 0,
    fallback: Optional[str] = None,
    max_episodes_per_session: int = 50,
    trace_every: Optional[int] = None,
) -> dict:
    """Drive ``num_sessions`` concurrent sessions until the fleet has made
    at least ``min_total_decisions`` decisions; returns the traffic summary.

    ``trace_every=N`` end-to-end traces every Nth decision of each episode;
    the minted trace ids land in the summary under ``"trace_ids"`` for
    control-plane reconstruction (extra round-trip per traced decision).
    """
    if num_sessions < 1:
        raise ValueError("need at least one session")
    total = {"decisions": 0}
    total_lock = threading.Lock()
    per_session: list[Optional[dict]] = [None] * num_sessions
    errors: list[str] = []

    def session_main(index: int) -> None:
        rng = np.random.default_rng([seed, index])
        summary = {
            "decisions": 0,
            "episodes": 0,
            "sources": {},
            "latencies_ms": [],
            "trace_ids": [],
        }
        try:
            with PolicyClient(host, port) as client:
                client.hello(
                    session_id=f"loadgen-{index}",
                    num_executors=num_executors,
                    seed=seed + index,
                    fallback=fallback,
                )
                for _ in range(max_episodes_per_session):
                    with total_lock:
                        if total["decisions"] >= min_total_decisions:
                            break
                    jobs = batched_arrivals(
                        sample_tpch_jobs(num_jobs, rng, sizes=(2.0, 5.0))
                    )
                    environment = SchedulingEnvironment(
                        SimulatorConfig(num_executors=num_executors, seed=seed + index)
                    )
                    episode = drive_episode(
                        client, environment, jobs, seed=seed + index,
                        trace_every=trace_every,
                    )
                    summary["episodes"] += 1
                    summary["decisions"] += episode["decisions"]
                    summary["latencies_ms"].extend(episode["latencies_ms"])
                    summary["trace_ids"].extend(episode.get("trace_ids", []))
                    for source, count in episode["sources"].items():
                        summary["sources"][source] = (
                            summary["sources"].get(source, 0) + count
                        )
                    with total_lock:
                        total["decisions"] += episode["decisions"]
        except Exception as error:  # noqa: BLE001 - surfaced to the caller
            errors.append(f"session {index}: {error!r}")
        per_session[index] = summary

    start = time.perf_counter()
    threads = [
        threading.Thread(target=session_main, args=(index,), daemon=True)
        for index in range(num_sessions)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    if errors:
        raise RuntimeError("load generation failed: " + "; ".join(errors))
    summaries = [summary for summary in per_session if summary is not None]
    all_latencies = [value for summary in summaries for value in summary["latencies_ms"]]
    sources: dict[str, int] = {}
    for summary in summaries:
        for source, count in summary["sources"].items():
            sources[source] = sources.get(source, 0) + count
    decisions = sum(summary["decisions"] for summary in summaries)
    trace_ids = [tid for summary in summaries for tid in summary.get("trace_ids", [])]
    return {
        **({"trace_ids": trace_ids} if trace_ids else {}),
        "num_sessions": num_sessions,
        "num_jobs_per_episode": num_jobs,
        "num_executors": num_executors,
        "decisions": decisions,
        "episodes": sum(summary["episodes"] for summary in summaries),
        "elapsed_seconds": elapsed,
        "decisions_per_sec": decisions / elapsed if elapsed > 0 else float("inf"),
        "sources": sources,
        "latency_ms": latency_histogram(all_latencies),
        "per_session": [
            {
                "decisions": summary["decisions"],
                "episodes": summary["episodes"],
                "sources": summary["sources"],
            }
            for summary in summaries
        ],
    }
