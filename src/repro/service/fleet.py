"""The serving fleet: N shard processes behind one router front.

A *shard* is one OS process running an
:class:`~repro.service.aioserver.AsyncPolicyServer` with its **own** agent
(rebuilt from a picklable :class:`~repro.core.checkpoints.AgentSpec` + state
dict, the same mechanism the rollout worker pool uses) and its own request
broker — so shards share nothing and scale with cores, not threads.
:class:`ServingFleet` spawns the shards, waits for each to report its bound
port, then fronts them with a :class:`~repro.service.router.ShardRouter`
(session hashing, admission control, control plane).

Clients are oblivious: they speak the exact same protocol to the router's
address that they would to a single :class:`PolicyServer`.  Decisions are
bit-identical to a single server at fixed seeds because a session's decisions
depend only on its own rng/cache/observations and every shard hosts an
identically-parameterised agent (pinned by the ``sharded_vs_serial_service``
differential pair).
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from typing import Optional

from ..core.agent import DecimaAgent
from ..core.checkpoints import AgentSpec, agent_spec, build_agent
from .router import ShardRouter

__all__ = ["ServingFleet"]


def _shard_main(
    connection,
    spec: AgentSpec,
    state,
    host: str,
    server_kwargs: dict,
    collect_experience: bool = False,
):
    """Entry point of one shard process: serve until the parent says stop.

    After the ready handshake the pipe becomes the shard's command channel
    (the online-learning control path):

    * ``"stop"`` — shut down (legacy token, also the teardown path);
    * ``("install", state, version)`` — stage a policy hot-swap, ack with
      ``("installed", version)`` (the swap applies at the next decision);
    * ``("stats",)`` — reply ``("stats", {...})`` with the broker snapshot;
    * ``("drain",)`` — reply ``("experience", [...])`` with the experience
      steps collected since the last drain (empty unless the shard was
      started with ``collect_experience``).
    """
    from .aioserver import AsyncPolicyServer

    agent = build_agent(spec, state)
    server = AsyncPolicyServer(agent, host=host, port=0, **server_kwargs)
    collector = None
    if collect_experience:
        from ..learning.buffer import ExperienceCollector

        collector = ExperienceCollector()
        server.broker.decision_tap = collector
    try:
        address = server.start()
    except Exception as error:  # noqa: BLE001 - parent needs the reason
        connection.send(("error", repr(error)))
        return
    connection.send(("ready", address))
    try:
        while True:
            try:
                command = connection.recv()
            except (EOFError, OSError):
                break  # parent died
            if command == "stop":
                break
            kind = command[0] if isinstance(command, tuple) and command else None
            try:
                if kind == "install":
                    _, new_state, version = command
                    server.install_policy(new_state, version)
                    connection.send(("installed", int(version)))
                elif kind == "stats":
                    connection.send(
                        (
                            "stats",
                            {
                                "policy_version": server.policy_version,
                                "broker": server.broker.stats(),
                                "num_sessions": server.num_live_sessions(),
                            },
                        )
                    )
                elif kind == "drain":
                    steps = collector.drain() if collector is not None else []
                    connection.send(("experience", steps))
                else:
                    connection.send(("error", f"unknown shard command {command!r}"))
            except Exception as error:  # noqa: BLE001 - keep the shard alive
                connection.send(("error", repr(error)))
    finally:
        server.stop()
        connection.close()


class ServingFleet:
    """Spawn shard server processes and front them with a router."""

    def __init__(
        self,
        agent: DecimaAgent,
        num_shards: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        control_port: int = 0,
        max_sessions: Optional[int] = None,
        start_method: Optional[str] = None,
        collect_experience: bool = False,
        **server_kwargs,
    ):
        if num_shards < 1:
            raise ValueError("a fleet needs at least one shard")
        self._spec = agent_spec(agent)
        self._state = agent.state_dict()
        self.num_shards = int(num_shards)
        self.host = host
        self.port = int(port)
        self.control_port = int(control_port)
        self.max_sessions = max_sessions
        self.collect_experience = bool(collect_experience)
        self.server_kwargs = dict(server_kwargs)
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._context = mp.get_context(start_method)
        self.processes: list = []
        self._connections: list = []
        self.shard_addresses: list = []
        self.router: Optional[ShardRouter] = None
        self._running = False
        # The shard pipes double as the command channel (install/stats/
        # drain); commands are strict request/reply, so serialize them.
        self._pipe_lock = threading.Lock()

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple:
        """The router's data-plane ``(host, port)``."""
        if self.router is None:
            raise RuntimeError("fleet is not started")
        return self.router.address

    @property
    def control_address(self) -> tuple:
        """The router's control-plane ``(host, port)``."""
        if self.router is None:
            raise RuntimeError("fleet is not started")
        return self.router.control_address

    def start(self) -> tuple:
        if self._running:
            raise RuntimeError("fleet already started")
        try:
            for index in range(self.num_shards):
                parent_conn, child_conn = self._context.Pipe()
                # Each shard names itself in telemetry (spans, flight dumps,
                # structured logs) so fleet-wide scrapes stay attributable.
                shard_kwargs = dict(
                    self.server_kwargs, service_name=f"shard-{index}"
                )
                process = self._context.Process(
                    target=_shard_main,
                    args=(child_conn, self._spec, self._state, self.host,
                          shard_kwargs, self.collect_experience),
                    name=f"policy-shard-{index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self.processes.append(process)
                self._connections.append(parent_conn)
            for index, connection in enumerate(self._connections):
                if not connection.poll(timeout=60.0):
                    raise RuntimeError(f"shard {index} did not come up in time")
                status, payload = connection.recv()
                if status != "ready":
                    raise RuntimeError(f"shard {index} failed to start: {payload}")
                self.shard_addresses.append(tuple(payload))
            self.router = ShardRouter(
                self.shard_addresses,
                host=self.host,
                port=self.port,
                control_port=self.control_port,
                max_sessions=self.max_sessions,
                flight_dir=self.server_kwargs.get("flight_dir"),
                flight_capacity=self.server_kwargs.get("flight_capacity", 512),
                trace_capacity=self.server_kwargs.get("trace_capacity", 256),
            )
            self.router.start()
        except Exception:
            self._teardown()
            raise
        self._running = True
        return self.router.address

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._teardown()

    def _teardown(self) -> None:
        if self.router is not None:
            try:
                self.router.stop()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
            self.router = None
        for connection in self._connections:
            try:
                connection.send("stop")
            except (BrokenPipeError, OSError):
                pass  # shard already dead (e.g. fault-injection killed it)
        for process in self.processes:
            process.join(timeout=10.0)
        for process in self.processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:
                pass
        self.processes.clear()
        self._connections.clear()
        self.shard_addresses.clear()

    def __enter__(self) -> "ServingFleet":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ----------------------------------------------------------- control path
    def _command(self, payload, expect: str, timeout: float = 30.0) -> list:
        """Send one command to every live shard; collect per-shard replies.

        Dead shards (fault-injected kills) yield ``None`` instead of raising
        — learning must keep working around a lost shard exactly as serving
        does.
        """
        replies: list = []
        with self._pipe_lock:
            for index, connection in enumerate(self._connections):
                process = self.processes[index]
                if not process.is_alive():
                    replies.append(None)
                    continue
                try:
                    connection.send(payload)
                    if not connection.poll(timeout=timeout):
                        replies.append(None)
                        continue
                    status, value = connection.recv()
                except (BrokenPipeError, EOFError, OSError):
                    replies.append(None)
                    continue
                replies.append(value if status == expect else None)
        return replies

    def install_policy(self, state: dict, version: int) -> int:
        """Stage a hot-swap on every live shard; return the ack count.

        An ack means *delivered and staged* — each shard applies the swap
        atomically at its next decision round, so sessions in flight when the
        install lands are answered by the old weights and never dropped.
        """
        acks = self._command(("install", state, int(version)), expect="installed")
        return sum(1 for ack in acks if ack is not None)

    def shard_stats(self) -> list:
        """Per-shard broker snapshots over the command channel (None = dead)."""
        return self._command(("stats",), expect="stats")

    def drain_experience(self) -> list:
        """Collect and clear every live shard's recorded experience steps."""
        drained = self._command(("drain",), expect="experience")
        steps: list = []
        for shard_steps in drained:
            if shard_steps:
                steps.extend(shard_steps)
        return steps

    # ------------------------------------------------------------------ faults
    def kill_shard(self, index: int) -> None:
        """Fault injection: hard-kill one shard process (SIGKILL, no cleanup)."""
        if not 0 <= index < len(self.processes):
            raise IndexError(f"no shard {index}")
        process = self.processes[index]
        process.kill()
        process.join(timeout=10.0)
