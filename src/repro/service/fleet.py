"""The serving fleet: N shard processes behind one router front.

A *shard* is one OS process running an
:class:`~repro.service.aioserver.AsyncPolicyServer` with its **own** agent
(rebuilt from a picklable :class:`~repro.core.checkpoints.AgentSpec` + state
dict, the same mechanism the rollout worker pool uses) and its own request
broker — so shards share nothing and scale with cores, not threads.
:class:`ServingFleet` spawns the shards, waits for each to report its bound
port, then fronts them with a :class:`~repro.service.router.ShardRouter`
(session hashing, admission control, control plane).

Clients are oblivious: they speak the exact same protocol to the router's
address that they would to a single :class:`PolicyServer`.  Decisions are
bit-identical to a single server at fixed seeds because a session's decisions
depend only on its own rng/cache/observations and every shard hosts an
identically-parameterised agent (pinned by the ``sharded_vs_serial_service``
differential pair).
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Optional

from ..core.agent import DecimaAgent
from ..core.checkpoints import AgentSpec, agent_spec, build_agent
from .router import ShardRouter

__all__ = ["ServingFleet"]


def _shard_main(connection, spec: AgentSpec, state, host: str, server_kwargs: dict):
    """Entry point of one shard process: serve until the parent says stop."""
    from .aioserver import AsyncPolicyServer

    agent = build_agent(spec, state)
    server = AsyncPolicyServer(agent, host=host, port=0, **server_kwargs)
    try:
        address = server.start()
    except Exception as error:  # noqa: BLE001 - parent needs the reason
        connection.send(("error", repr(error)))
        return
    connection.send(("ready", address))
    try:
        # Block until the parent sends the stop token or dies (EOF).
        connection.recv()
    except (EOFError, OSError):
        pass
    finally:
        server.stop()
        connection.close()


class ServingFleet:
    """Spawn shard server processes and front them with a router."""

    def __init__(
        self,
        agent: DecimaAgent,
        num_shards: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        control_port: int = 0,
        max_sessions: Optional[int] = None,
        start_method: Optional[str] = None,
        **server_kwargs,
    ):
        if num_shards < 1:
            raise ValueError("a fleet needs at least one shard")
        self._spec = agent_spec(agent)
        self._state = agent.state_dict()
        self.num_shards = int(num_shards)
        self.host = host
        self.port = int(port)
        self.control_port = int(control_port)
        self.max_sessions = max_sessions
        self.server_kwargs = dict(server_kwargs)
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._context = mp.get_context(start_method)
        self.processes: list = []
        self._connections: list = []
        self.shard_addresses: list = []
        self.router: Optional[ShardRouter] = None
        self._running = False

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple:
        """The router's data-plane ``(host, port)``."""
        if self.router is None:
            raise RuntimeError("fleet is not started")
        return self.router.address

    @property
    def control_address(self) -> tuple:
        """The router's control-plane ``(host, port)``."""
        if self.router is None:
            raise RuntimeError("fleet is not started")
        return self.router.control_address

    def start(self) -> tuple:
        if self._running:
            raise RuntimeError("fleet already started")
        try:
            for index in range(self.num_shards):
                parent_conn, child_conn = self._context.Pipe()
                process = self._context.Process(
                    target=_shard_main,
                    args=(child_conn, self._spec, self._state, self.host,
                          self.server_kwargs),
                    name=f"policy-shard-{index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self.processes.append(process)
                self._connections.append(parent_conn)
            for index, connection in enumerate(self._connections):
                if not connection.poll(timeout=60.0):
                    raise RuntimeError(f"shard {index} did not come up in time")
                status, payload = connection.recv()
                if status != "ready":
                    raise RuntimeError(f"shard {index} failed to start: {payload}")
                self.shard_addresses.append(tuple(payload))
            self.router = ShardRouter(
                self.shard_addresses,
                host=self.host,
                port=self.port,
                control_port=self.control_port,
                max_sessions=self.max_sessions,
            )
            self.router.start()
        except Exception:
            self._teardown()
            raise
        self._running = True
        return self.router.address

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._teardown()

    def _teardown(self) -> None:
        if self.router is not None:
            try:
                self.router.stop()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
            self.router = None
        for connection in self._connections:
            try:
                connection.send("stop")
            except (BrokenPipeError, OSError):
                pass  # shard already dead (e.g. fault-injection killed it)
        for process in self.processes:
            process.join(timeout=10.0)
        for process in self.processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:
                pass
        self.processes.clear()
        self._connections.clear()
        self.shard_addresses.clear()

    def __enter__(self) -> "ServingFleet":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ faults
    def kill_shard(self, index: int) -> None:
        """Fault injection: hard-kill one shard process (SIGKILL, no cleanup)."""
        if not 0 <= index < len(self.processes):
            raise IndexError(f"no shard {index}")
        process = self.processes[index]
        process.kill()
        process.join(timeout=10.0)
