"""Asyncio transport for the policy server.

:class:`AsyncPolicyServer` multiplexes every client connection plus the batch
dispatcher on one event loop (running in a background thread, so the public
``start()/stop()`` surface matches the threaded :class:`PolicyServer` and
both can host the same traffic).  Where the threaded transport spends one OS
thread per connection, this one spends one reader coroutine — which is what
lets a single shard process hold hundreds of concurrent sessions.

Inside the loop everything is single-threaded: connection handlers reconcile
snapshots, park a future on the dispatch queue and await it; the dispatch
coroutine coalesces whatever is pending (holding the batch open for the
adaptive window, see :class:`~repro.service.batcher.AdaptiveBatchWindow`) and
answers the whole batch through the shared broker.  The broker's GNN forward
runs inline on the loop — it *is* the work; while it runs, arriving frames
simply queue in the socket buffers and form the next batch.

Decisions are bit-identical to the threaded transport (and to serial
dispatch): timing only changes batch composition, which is
behaviour-neutral per session.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from ..core.agent import DecimaAgent
from .batcher import DecisionResult
from .protocol import ProtocolError, decode_frame, encode_message
from .server import ServerCore
from .session import SessionState

__all__ = ["AsyncPolicyServer"]

_QUEUE_SENTINEL = None


class _AsyncPending:
    """A decide request parked on the dispatch queue until it is answered."""

    __slots__ = ("request", "future")

    def __init__(self, request, loop: asyncio.AbstractEventLoop):
        self.request = request
        self.future: "asyncio.Future[DecisionResult]" = loop.create_future()


class AsyncPolicyServer(ServerCore):
    """Event-loop policy server: same protocol, same core, no thread-per-client."""

    def __init__(self, agent: DecimaAgent, **kwargs):
        super().__init__(agent, **kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._requeue: list = []
        self._dispatch_task: Optional[asyncio.Task] = None
        self._address: Optional[tuple] = None
        self._running = False

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple:
        if self._address is None:
            raise RuntimeError("server is not started")
        return self._address

    def start(self) -> tuple:
        """Spin up the loop thread, bind and start serving."""
        if self._running:
            raise RuntimeError("server already started")
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, name="policy-server-loop", daemon=True
        )
        self._loop_thread.start()
        future = asyncio.run_coroutine_threadsafe(self._start_serving(), self._loop)
        self._address = future.result(timeout=10.0)
        self._running = True
        return self._address

    async def _start_serving(self) -> tuple:
        self._queue = asyncio.Queue()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self._dispatch_task = asyncio.get_event_loop().create_task(self._dispatch_loop())
        return self._server.sockets[0].getsockname()[:2]

    def stop(self) -> None:
        """Stop serving, answer parked requests with errors, join the loop."""
        if not self._running:
            return
        self._running = False
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(self._shutdown(), self._loop)
        try:
            future.result(timeout=10.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._loop_thread is not None:
                self._loop_thread.join(timeout=5.0)
            self._loop.close()
            self._loop = None
            self._loop_thread = None

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._queue is not None:
            self._queue.put_nowait(_QUEUE_SENTINEL)
        if self._dispatch_task is not None:
            try:
                await asyncio.wait_for(self._dispatch_task, timeout=5.0)
            except asyncio.TimeoutError:
                self._dispatch_task.cancel()

    def __enter__(self) -> "AsyncPolicyServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------- connection
    async def _write(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(encode_message(payload))
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session: Optional[SessionState] = None
        try:
            while True:
                try:
                    line = await reader.readline()
                except (OSError, ValueError, asyncio.IncompleteReadError):
                    return
                if not line:
                    return
                try:
                    message = decode_frame(line)
                except ProtocolError as error:
                    await self._write(
                        writer, {"type": "error", "message": str(error)}
                    )
                    continue
                kind = message["type"]
                try:
                    if kind == "hello":
                        new_session, welcome = self.open_session(message, session)
                        try:
                            await self._write(writer, welcome)
                        except (ConnectionError, OSError):
                            # The client vanished before seeing the welcome:
                            # deregister, or the id would stay blocked.
                            self.deregister_session(new_session)
                            raise
                        session = new_session
                    elif kind == "decide":
                        await self._handle_decide(writer, session, message)
                    elif kind == "stats":
                        await self._write(writer, self.stats_payload(session))
                    elif kind == "metrics":
                        await self._write(writer, self.metrics_payload(message))
                    elif kind == "trace":
                        await self._write(writer, self.trace_payload(message))
                    elif kind == "trace_report":
                        await self._write(writer, self.record_spans(message))
                    elif kind == "flight":
                        await self._write(writer, self.flight_payload(message))
                    elif kind == "bye":
                        await self._write(writer, {"type": "goodbye"})
                        return
                    else:
                        await self._write(
                            writer,
                            {"type": "error",
                             "message": f"unknown request type {kind!r}"},
                        )
                except ProtocolError as error:
                    await self._write(writer, {"type": "error", "message": str(error)})
                except (KeyError, TypeError, ValueError) as error:
                    # Malformed payload: answer with an error frame and keep
                    # the connection usable, as the protocol contract promises.
                    await self._write(
                        writer,
                        {"type": "error",
                         "message": f"malformed {kind!r} payload: {error!r}"},
                    )
                except (ConnectionError, OSError):
                    return
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
            self.deregister_session(session)

    async def _handle_decide(
        self, writer, session: Optional[SessionState], message: dict
    ) -> None:
        request = self.build_request(session, message)
        assert self._loop is not None and self._queue is not None
        pending = _AsyncPending(request, self._loop)
        self._queue.put_nowait(pending)
        try:
            result = await pending.future
        except RuntimeError as error:  # set_exception on shutdown
            await self._write(writer, {"type": "error", "message": str(error)})
            return
        self.finish_request(request, result)
        await self._write(writer, self.action_reply(session, message, result))

    # --------------------------------------------------------------- dispatch
    async def _drain_batch(self, first: _AsyncPending) -> list:
        """Coalesce pending requests, holding the batch open for the window."""
        assert self._queue is not None
        batch = [first]
        sessions = {id(first.request.session)}
        loop = asyncio.get_event_loop()
        deadline = loop.time() + self.window_seconds()
        # Once every live session has a request in the batch, no further
        # request can arrive (the protocol is synchronous per session).
        max_size = min(self.max_batch_size, max(self.num_live_sessions(), 1))
        while len(batch) < max_size:
            remaining = deadline - loop.time()
            if remaining <= 0:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            else:
                try:
                    item = await asyncio.wait_for(self._queue.get(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
            if item is _QUEUE_SENTINEL:
                self._queue.put_nowait(_QUEUE_SENTINEL)
                break
            if id(item.request.session) in sessions:
                # One in-flight request per session: next batch.
                self._requeue.append(item)
                continue
            sessions.add(id(item.request.session))
            batch.append(item)
        return batch

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            if self._requeue:
                item = self._requeue.pop(0)
            else:
                item = await self._queue.get()
            if item is _QUEUE_SENTINEL:
                while True:
                    try:
                        pending = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if pending is _QUEUE_SENTINEL:
                        continue
                    if not pending.future.done():
                        pending.future.set_exception(
                            RuntimeError("server shutting down")
                        )
                for pending in self._requeue:
                    if not pending.future.done():
                        pending.future.set_exception(
                            RuntimeError("server shutting down")
                        )
                self._requeue.clear()
                return
            batch = await self._drain_batch(item)
            self.observe_batch(len(batch))
            try:
                # The GNN forward runs inline on the loop: it is the shard's
                # work, and while it runs new frames queue up into the next
                # batch.
                results = self.broker.decide([pending.request for pending in batch])
            except Exception as error:  # noqa: BLE001 - must answer every request
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(
                            RuntimeError(f"decision failed: {error!r}")
                        )
                continue
            for pending, result in zip(batch, results):
                if not pending.future.done():
                    pending.future.set_result(result)
