"""Cross-session request batching and the SLO circuit-breaker.

The broker is the serving layer's inference engine.  It takes whatever
``decide`` requests are pending — one per session at most — and answers them
either through the **policy path** (the hosted Decima agent; by default one
batched GNN forward over the disconnected union of all pending sessions'
graphs, see :meth:`~repro.core.agent.DecimaAgent.act_batch`) or, when the
policy path has been breaching its latency SLO, through each session's
registered **fallback heuristic** (FIFO / weighted-fair / anything in the
scheduler registry).

The circuit-breaker is deliberately counted in *decisions*, not wall-clock:
``breach_threshold`` consecutive over-deadline policy passes open it,
``cooldown_decisions`` fallback answers later it half-opens and lets one
policy pass try again (closing on success, reopening on another breach).
Decision-counted state machines are deterministic under test — a slowed
policy path trips the breaker after exactly the same number of requests every
run.

Batching is *never* a behaviour change: each session's decisions come out of
its own row slice of the merged forward with its own rng stream, so a
session's action sequence is identical whether its requests were answered
alone, in any batch composition, or through the serial reference path
(``batched=False``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..core.agent import DecimaAgent
from ..core.features import MergedStructureCache
from ..simulator.environment import Action, Observation
from ..simulator.metrics import latency_histogram
from .session import SessionState

__all__ = [
    "AdaptiveBatchWindow",
    "CircuitBreaker",
    "DecisionRequest",
    "DecisionResult",
    "RequestBroker",
]

# Broker-level latency samples kept for per-shard SLO accounting; decisions
# beyond this window age out (the counters never do).
_BROKER_LATENCY_WINDOW = 10_000


class AdaptiveBatchWindow:
    """Scale the dispatcher's coalescing window with offered load.

    The window is how long the dispatcher holds a batch open for stragglers
    after the first request lands.  Its ideal size depends on the offered
    load: with one or two live sessions any wait is pure latency, while with
    dozens of concurrent sessions a few extra milliseconds turns many small
    forwards into one big merged forward.  Rather than pin one compromise
    value, the window tracks an exponential moving average of recent batch
    sizes and interpolates between ``min_ms`` (idle) and ``max_ms``
    (saturated at ``saturate_at`` coalesced sessions).

    Timing never changes decisions (batch composition is behaviour-neutral,
    see :class:`RequestBroker`), so this is purely a throughput/latency
    trade-off knob.
    """

    def __init__(
        self,
        min_ms: float = 0.2,
        max_ms: float = 8.0,
        alpha: float = 0.2,
        saturate_at: int = 16,
    ):
        if min_ms < 0 or max_ms < min_ms:
            raise ValueError("need 0 <= min_ms <= max_ms")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if saturate_at < 2:
            raise ValueError("saturate_at must be >= 2")
        self.min_ms = float(min_ms)
        self.max_ms = float(max_ms)
        self.alpha = float(alpha)
        self.saturate_at = int(saturate_at)
        self._ema_batch_size = 1.0

    def observe(self, batch_size: int) -> None:
        """Feed one dispatched batch's size into the load estimate."""
        self._ema_batch_size += self.alpha * (float(batch_size) - self._ema_batch_size)

    @property
    def ema_batch_size(self) -> float:
        return self._ema_batch_size

    def seconds(self) -> float:
        """The current coalescing window, in seconds."""
        load = (self._ema_batch_size - 1.0) / (self.saturate_at - 1.0)
        fraction = min(1.0, max(0.0, load))
        return (self.min_ms + (self.max_ms - self.min_ms) * fraction) / 1000.0

    def stats(self) -> dict:
        return {
            "ema_batch_size": self._ema_batch_size,
            "window_ms": self.seconds() * 1000.0,
            "min_ms": self.min_ms,
            "max_ms": self.max_ms,
        }


class CircuitBreaker:
    """Decision-counted SLO breaker for the shared policy path."""

    def __init__(
        self,
        slo_seconds: float,
        breach_threshold: int = 3,
        cooldown_decisions: int = 20,
    ):
        if slo_seconds <= 0:
            raise ValueError("the SLO must be positive")
        if breach_threshold < 1 or cooldown_decisions < 1:
            raise ValueError("breach_threshold and cooldown_decisions must be >= 1")
        self.slo_seconds = float(slo_seconds)
        self.breach_threshold = int(breach_threshold)
        self.cooldown_decisions = int(cooldown_decisions)
        self.state = "closed"
        self.num_opens = 0
        self._consecutive_breaches = 0
        self._cooldown_remaining = 0
        # Observability hook: called (with this breaker) every time the
        # breaker trips open — the server wires it to the flight recorder so
        # an SLO trip auto-dumps the events leading up to it.
        self.on_open: Optional[Callable[["CircuitBreaker"], None]] = None

    def allow_policy(self) -> bool:
        """True when the next decision should try the policy path.

        While open, the policy path is skipped until the cooldown has been
        spent on fallback decisions; the first decision after that is the
        half-open trial.
        """
        return self.state == "closed" or self._cooldown_remaining <= 0

    def record_policy(self, latency_seconds: float) -> None:
        breached = latency_seconds > self.slo_seconds
        if self.state == "open":
            # Half-open trial: one breach reopens immediately, success closes.
            if breached:
                self._open()
            else:
                self.state = "closed"
                self._consecutive_breaches = 0
            return
        if breached:
            self._consecutive_breaches += 1
            if self._consecutive_breaches >= self.breach_threshold:
                self._open()
        else:
            self._consecutive_breaches = 0

    def record_fallback(self) -> None:
        if self.state == "open" and self._cooldown_remaining > 0:
            self._cooldown_remaining -= 1

    def _open(self) -> None:
        self.state = "open"
        self._cooldown_remaining = self.cooldown_decisions
        self._consecutive_breaches = 0
        self.num_opens += 1
        if self.on_open is not None:
            self.on_open(self)

    def stats(self) -> dict:
        return {
            "state": self.state,
            "slo_seconds": self.slo_seconds,
            "num_opens": self.num_opens,
            "cooldown_remaining": self._cooldown_remaining,
        }


@dataclass
class DecisionRequest:
    """One pending ``decide``: a session and its reconciled observation."""

    session: SessionState
    observation: Observation
    request_id: Optional[int] = None
    # Traced requests carry the transport layer's open span (the parent under
    # which the broker files its own work); untraced requests leave it None
    # and the broker never touches the tracing subsystem.
    span: Optional[object] = None


@dataclass
class DecisionResult:
    """Outcome of one decision, ready for wire encoding."""

    action: Optional[Action]
    source: str  # "policy" | "fallback" | "noop"
    latency_seconds: float
    # The broker's policy version that answered this decision — the
    # online-learning audit-trail key (every decision maps to the exact
    # weights that produced it, across hot-swaps and rollbacks).
    policy_version: int = 1


class RequestBroker:
    """Answer pending decision requests through one (batched) policy pass."""

    def __init__(
        self,
        agent: DecimaAgent,
        batched: bool = True,
        greedy: bool = True,
        breaker: Optional[CircuitBreaker] = None,
        decision_tap: Optional[Callable[[DecisionRequest, "DecisionResult"], None]] = None,
        policy_version: int = 1,
    ):
        self.agent = agent
        self.batched = bool(batched)
        self.greedy = bool(greedy)
        self.breaker = breaker
        # Monotonic id of the weights currently answering decisions.  Swaps
        # arrive from the online-learning manager on another thread via
        # install(); they are staged under the lock and applied at the top of
        # decide(), which runs serially on the dispatch thread — so weights
        # never change mid-forward and no in-flight session is dropped.
        self.policy_version = int(policy_version)
        self.num_policy_swaps = 0
        self._swap_lock = threading.Lock()
        self._pending_swap: Optional[tuple[dict, int]] = None
        # Per-decision observer (the verification harness's session decision
        # tap): called once per answered request, in request order, with the
        # request and its result.  Must not mutate either.
        self.decision_tap = decision_tap
        self.merge_cache = MergedStructureCache()
        self.num_batches = 0
        self.max_batch_size = 0
        # Broker-wide decision accounting (sessions keep their own too, but
        # they disconnect and take their counters with them — these survive,
        # which is what a shard's control-plane SLO report needs).
        self.num_decisions = 0
        self.num_fallback_decisions = 0
        self.num_slo_breaches = 0
        self.latencies: deque = deque(maxlen=_BROKER_LATENCY_WINDOW)
        # Aggregated GraphCache telemetry across every served session: the
        # per-session counters are sampled after each round and the broker
        # accumulates their non-negative increments (a counter moving
        # backwards means a new session object recycled the id — reset its
        # baseline rather than under-count).
        self.graph_delta_refreshes = 0
        self.graph_full_refreshes = 0
        self.graph_rebuilds = 0
        self._cache_marks: dict[int, tuple[int, int, int]] = {}
        # Observability seams, wired by the hosting server (None = dark):
        # ``flight`` is the shard's FlightRecorder (decision-round / swap
        # events), ``latency_metric`` a registry Histogram fed one
        # millisecond sample per answered decision.
        self.flight = None
        self.latency_metric = None

    # ----------------------------------------------------------------- swaps
    def install(self, state: dict, version: int) -> None:
        """Stage a new policy (``state_dict`` payload) for hot-swap.

        Thread-safe; returns immediately.  The swap is applied atomically at
        the start of the next decision round.  Versions must be strictly
        monotonic — a stale install (version not above both the serving and
        any already-staged version) is rejected, so rollbacks re-publish old
        weights under a *new* version rather than rewinding the counter.
        """
        version = int(version)
        with self._swap_lock:
            staged = self._pending_swap[1] if self._pending_swap else self.policy_version
            if version <= max(self.policy_version, staged):
                raise ValueError(
                    f"policy version must be monotonic: got {version}, "
                    f"serving {self.policy_version}"
                    + (f" with {staged} already staged" if staged != self.policy_version else "")
                )
            self._pending_swap = (state, version)

    @property
    def pending_policy_version(self) -> Optional[int]:
        with self._swap_lock:
            return self._pending_swap[1] if self._pending_swap else None

    def _apply_pending_swap(self) -> None:
        with self._swap_lock:
            pending, self._pending_swap = self._pending_swap, None
        if pending is None:
            return
        state, version = pending
        previous = self.policy_version
        self.agent.load_state_dict(state)
        self.policy_version = version
        self.num_policy_swaps += 1
        if self.flight is not None:
            self.flight.record(
                "policy_swap", from_version=previous, to_version=version
            )

    # ----------------------------------------------------------------- policy
    def _broker_span(self, request: DecisionRequest, name: str):
        """Child span under the transport's request span (None when untraced)."""
        parent = request.span
        if parent is None:
            return None
        span = parent.child(name)
        span.set_tag("session_id", request.session.session_id)
        return span

    def _policy_batched(
        self, requests: Sequence[DecisionRequest], record_to_breaker: bool
    ) -> list[DecisionResult]:
        spans = [self._broker_span(request, "broker.decide") for request in requests]
        traced = any(span is not None for span in spans)
        start = time.perf_counter()
        decisions = self.agent.act_batch(
            [request.observation for request in requests],
            rngs=[request.session.rng for request in requests],
            graph_caches=[request.session.graph_cache for request in requests],
            greedy=self.greedy,
            merge_cache=self.merge_cache,
            spans=spans if traced else None,
        )
        elapsed = time.perf_counter() - start
        # The batch ran as one forward: every request experienced its latency.
        if record_to_breaker and self.breaker is not None:
            self.breaker.record_policy(elapsed)
        results = []
        for request, span, (action, _) in zip(requests, spans, decisions):
            request.session.record_decision("policy", elapsed)
            if span is not None:
                span.set_tag("source", "policy")
                span.set_tag("batch_size", len(requests))
                span.set_tag("policy_version", self.policy_version)
                span.finish(duration_ms=elapsed * 1000.0)
            results.append(DecisionResult(action, "policy", elapsed))
        return results

    def _policy_serial(
        self, request: DecisionRequest, record_to_breaker: bool
    ) -> DecisionResult:
        span = self._broker_span(request, "broker.decide")
        start = time.perf_counter()
        action, _ = self.agent.act(
            request.observation,
            rng=request.session.rng,
            greedy=self.greedy,
            graph_cache=request.session.graph_cache,
            span=span,
        )
        elapsed = time.perf_counter() - start
        if record_to_breaker and self.breaker is not None:
            self.breaker.record_policy(elapsed)
        request.session.record_decision("policy", elapsed)
        if span is not None:
            span.set_tag("source", "policy")
            span.set_tag("policy_version", self.policy_version)
            span.finish(duration_ms=elapsed * 1000.0)
        return DecisionResult(action, "policy", elapsed)

    def _fallback(self, request: DecisionRequest) -> DecisionResult:
        span = self._broker_span(request, "broker.fallback")
        start = time.perf_counter()
        action = request.session.fallback.schedule(request.observation)
        elapsed = time.perf_counter() - start
        if self.breaker is not None:
            self.breaker.record_fallback()
        request.session.record_decision("fallback", elapsed)
        if span is not None:
            span.set_tag("source", "fallback")
            span.finish(duration_ms=elapsed * 1000.0)
        return DecisionResult(action, "fallback", elapsed)

    # ----------------------------------------------------------------- decide
    def decide(self, requests: Sequence[DecisionRequest]) -> list[DecisionResult]:
        """Answer every request; no request is ever dropped.

        Requests must come from distinct sessions (the server defers a
        session's next request until its previous one was answered, which the
        per-session synchronous protocol guarantees anyway).
        """
        if len({id(request.session) for request in requests}) != len(requests):
            raise ValueError("a batch must not contain two requests from one session")
        self._apply_pending_swap()
        results: list[Optional[DecisionResult]] = [None] * len(requests)
        self.num_batches += 1
        self.max_batch_size = max(self.max_batch_size, len(requests))

        active: list[int] = []
        for index, request in enumerate(requests):
            if request.observation.schedulable_nodes:
                active.append(index)
            else:
                results[index] = DecisionResult(None, "noop", 0.0)
        if not active:
            return self._finish(requests, results)

        # A policy pass *forced* by a session having no fallback (while the
        # breaker said no) must NOT feed the breaker: while open it would be
        # mistaken for the half-open trial, closing the breaker early or
        # endlessly resetting the cooldown for everyone else.  Hence the
        # breaker is only recorded when it actually sanctioned the pass.
        if self.batched:
            # One breaker consultation for the round's single shared forward.
            # Sessions without a fallback stay on the policy path even while
            # the breaker is open (exactly as in serial mode), so a mixed
            # batch splits into one policy sub-batch plus fallback answers.
            breaker_allows = self.breaker is None or self.breaker.allow_policy()
            policy_group = [
                i
                for i in active
                if requests[i].session.fallback is None or breaker_allows
            ]
            if policy_group:
                chosen = [requests[i] for i in policy_group]
                answers = self._policy_batched(chosen, record_to_breaker=breaker_allows)
                for index, result in zip(policy_group, answers):
                    results[index] = result
            for index in active:
                if results[index] is None:
                    results[index] = self._fallback(requests[index])
        else:
            for index in active:
                request = requests[index]
                allows = self.breaker is None or self.breaker.allow_policy()
                if request.session.fallback is None or allows:
                    results[index] = self._policy_serial(
                        request, record_to_breaker=allows
                    )
                else:
                    results[index] = self._fallback(request)
        return self._finish(requests, results)

    def _finish(
        self,
        requests: Sequence[DecisionRequest],
        results: Sequence[Optional[DecisionResult]],
    ) -> list[DecisionResult]:
        for request, result in zip(requests, results):
            if result is not None:
                # Stamp the audit-trail version on every answer (noop too —
                # the client still learns which weights were serving).
                result.policy_version = self.policy_version
                request.session.last_policy_version = self.policy_version
        for result in results:
            if result is None or result.source == "noop":
                continue
            self.num_decisions += 1
            if result.source == "fallback":
                self.num_fallback_decisions += 1
            self.latencies.append(result.latency_seconds)
            if self.latency_metric is not None:
                self.latency_metric.observe(result.latency_seconds * 1000.0)
            if (
                self.breaker is not None
                and result.latency_seconds > self.breaker.slo_seconds
            ):
                self.num_slo_breaches += 1
        if self.flight is not None and requests:
            # One ring event per decision round (not per request) keeps the
            # recorder O(batches): the round is the broker's unit of work.
            sources: dict = {}
            for result in results:
                if result is not None:
                    sources[result.source] = sources.get(result.source, 0) + 1
            self.flight.record(
                "decision_round",
                batch_size=len(requests),
                sources=sources,
                policy_version=self.policy_version,
                max_latency_ms=max(
                    (r.latency_seconds for r in results if r is not None),
                    default=0.0,
                )
                * 1000.0,
            )
        for request in requests:
            cache = request.session.graph_cache
            current = (
                cache.num_delta_refreshes,
                cache.num_full_refreshes,
                cache.num_rebuilds,
            )
            mark = self._cache_marks.get(id(request.session), (0, 0, 0))
            if any(now < seen for now, seen in zip(current, mark)):
                mark = (0, 0, 0)
            self.graph_delta_refreshes += current[0] - mark[0]
            self.graph_full_refreshes += current[1] - mark[1]
            self.graph_rebuilds += current[2] - mark[2]
            self._cache_marks[id(request.session)] = current
        if self.decision_tap is not None:
            for request, result in zip(requests, results):
                self.decision_tap(request, result)  # type: ignore[arg-type]
        return [result for result in results]  # type: ignore[misc]

    def stats(self) -> dict:
        return {
            "batched": self.batched,
            "greedy": self.greedy,
            "policy_version": self.policy_version,
            "pending_policy_version": self.pending_policy_version,
            "num_policy_swaps": self.num_policy_swaps,
            "num_batches": self.num_batches,
            "max_batch_size": self.max_batch_size,
            "num_decisions": self.num_decisions,
            "num_fallback_decisions": self.num_fallback_decisions,
            "num_slo_breaches": self.num_slo_breaches,
            "latency_ms": latency_histogram(
                [seconds * 1000.0 for seconds in self.latencies]
            ),
            "merged_structure_rebuilds": self.merge_cache.num_rebuilds,
            # Where decision time goes inside the agent (features /
            # propagation / policy / sampling), cumulative over every
            # act()/act_batch() this agent ran — the control plane relays
            # this per shard so hot-path regressions show up in production.
            "stage_timing": self.agent.stage_timings.snapshot(),
            "graph_cache": {
                "delta_refreshes": self.graph_delta_refreshes,
                "full_refreshes": self.graph_full_refreshes,
                "rebuilds": self.graph_rebuilds,
            },
            "breaker": self.breaker.stats() if self.breaker is not None else None,
        }
