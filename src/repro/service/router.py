"""Session router / load-balancer front for a sharded policy-serving fleet.

The router owns no policy and no sessions' state — it is a thin, stateless-
per-request front that:

* **hashes sessions to shards**: a session id deterministically prefers
  ``crc32(session_id) % num_shards`` (:func:`shard_for_session`) and walks
  forward to the next healthy, non-draining shard.  One session lives on
  exactly one shard for its whole life, so the shard's shadow DAGs, graph
  cache and rng stream stay session-local exactly as in a single server;
* **applies admission control**: above ``max_sessions`` concurrent sessions
  a new ``hello`` is refused with an ``admission_rejected`` error frame
  instead of letting overload grow unbounded queues inside the shards;
* **reports per-session failures cleanly**: when the shard hosting a
  session dies mid-request, the client gets a ``shard_failed`` error frame
  (not a hang, not a raw reset), the shard is marked unhealthy, and new
  sessions route around it;
* **exposes a control plane** on a second listener (mirroring the compute /
  control API split of SiNE's channel server): ``health`` actively probes
  every shard, ``stats`` aggregates router counters with each shard's
  broker/SLO accounting, ``reconfigure`` changes the admission limit or
  drains/undrains/revives shards live, and the observability commands
  (``metrics`` / ``trace`` / ``flight``) fan out over every shard to return
  one fleet-wide registry scrape, span set or flight dump.

Like :class:`~repro.service.aioserver.AsyncPolicyServer`, the router runs
its event loop in a background thread so the blocking ``start()/stop()``
lifecycle matches the rest of the serving stack.
"""

from __future__ import annotations

import asyncio
import threading
import zlib
from dataclasses import dataclass
from typing import Optional, Sequence

from ..obs import (
    FlightRecorder,
    MetricsRegistry,
    SpanStore,
    get_logger,
    log_event,
    render_prometheus,
)
from .protocol import ProtocolError, decode_frame, encode_message

__all__ = ["ShardRouter", "ShardState", "shard_for_session"]

_logger = get_logger("service.router")


def shard_for_session(session_id: str, num_shards: int) -> int:
    """The shard a session id *prefers* (stable hash, not load-dependent)."""
    if num_shards < 1:
        raise ValueError("need at least one shard")
    return zlib.crc32(str(session_id).encode("utf-8")) % num_shards


@dataclass
class ShardState:
    """The router's view of one shard."""

    host: str
    port: int
    index: int
    healthy: bool = True
    draining: bool = False
    active_sessions: int = 0
    failures: int = 0

    def accepts_new_sessions(self) -> bool:
        return self.healthy and not self.draining

    def describe(self) -> dict:
        return {
            "index": self.index,
            "host": self.host,
            "port": self.port,
            "healthy": self.healthy,
            "draining": self.draining,
            "active_sessions": self.active_sessions,
            "failures": self.failures,
        }


@dataclass
class _RouterCounters:
    routed_sessions: int = 0
    rejected_sessions: int = 0
    shard_failures: int = 0
    forwarded_frames: int = 0
    reconfigurations: int = 0

    def describe(self) -> dict:
        return dict(self.__dict__)


class ShardRouter:
    """Route cluster sessions across shard servers; serve the control plane."""

    def __init__(
        self,
        shards: Sequence[tuple],
        host: str = "127.0.0.1",
        port: int = 0,
        control_port: int = 0,
        max_sessions: Optional[int] = None,
        connect_timeout: float = 5.0,
        probe_timeout: float = 2.0,
        flight_dir: Optional[str] = None,
        flight_capacity: int = 512,
        trace_capacity: int = 256,
    ):
        if not shards:
            raise ValueError("a router needs at least one shard address")
        self.shards = [
            ShardState(host=shard_host, port=int(shard_port), index=index)
            for index, (shard_host, shard_port) in enumerate(shards)
        ]
        self.host = host
        self.port = int(port)
        self.control_port = int(control_port)
        self.max_sessions = None if max_sessions is None else int(max_sessions)
        self.connect_timeout = float(connect_timeout)
        self.probe_timeout = float(probe_timeout)
        self.counters = _RouterCounters()
        # Router-side observability: its own registry (collector over the
        # relay counters), span store (the router.forward hop of traced
        # decisions) and flight recorder (admission rejections, shard
        # failures, reconfigures; auto-dumped on a shard death).  The control
        # plane's metrics/trace/flight commands merge these with every
        # shard's own, so one query sees the whole fleet.
        self.metrics = MetricsRegistry()
        self.metrics.register_collector(self._collect_metrics)
        self.spans = SpanStore(max_traces=int(trace_capacity))
        self.flight = FlightRecorder(
            capacity=int(flight_capacity), service="router", dump_dir=flight_dir
        )
        # Online-learning bookkeeping published through control-plane stats.
        # The learning manager owns the content (current/previous checkpoint
        # version, rollback count); the router just relays the latest dict.
        self.learning_info: Optional[dict] = None
        self._active_sessions = 0
        self._session_counter = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._data_server: Optional[asyncio.AbstractServer] = None
        self._control_server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[tuple] = None
        self._control_address: Optional[tuple] = None
        self._running = False

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple:
        if self._address is None:
            raise RuntimeError("router is not started")
        return self._address

    @property
    def control_address(self) -> tuple:
        if self._control_address is None:
            raise RuntimeError("router is not started")
        return self._control_address

    def start(self) -> tuple:
        if self._running:
            raise RuntimeError("router already started")
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, name="shard-router-loop", daemon=True
        )
        self._loop_thread.start()
        future = asyncio.run_coroutine_threadsafe(self._start_serving(), self._loop)
        self._address, self._control_address = future.result(timeout=10.0)
        self._running = True
        return self._address

    async def _start_serving(self):
        self._data_server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self._control_server = await asyncio.start_server(
            self._handle_control, self.host, self.control_port
        )
        return (
            self._data_server.sockets[0].getsockname()[:2],
            self._control_server.sockets[0].getsockname()[:2],
        )

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(self._shutdown(), self._loop)
        try:
            future.result(timeout=10.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._loop_thread is not None:
                self._loop_thread.join(timeout=5.0)
            self._loop.close()
            self._loop = None
            self._loop_thread = None

    async def _shutdown(self) -> None:
        for server in (self._data_server, self._control_server):
            if server is not None:
                server.close()
                await server.wait_closed()

    def __enter__(self) -> "ShardRouter":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # --------------------------------------------------------------- data path
    async def _write(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(encode_message(payload))
        await writer.drain()

    def _pick_shard(self, session_id: str) -> Optional[ShardState]:
        """Preferred shard by hash; walk forward past unhealthy/draining ones."""
        preferred = shard_for_session(session_id, len(self.shards))
        for offset in range(len(self.shards)):
            shard = self.shards[(preferred + offset) % len(self.shards)]
            if shard.accepts_new_sessions():
                return shard
        return None

    def _collect_metrics(self) -> dict:
        """Router counters as registry families (read at snapshot time)."""

        def counter(help: str, value) -> dict:
            return {
                "type": "counter",
                "help": help,
                "samples": [{"labels": {}, "value": float(value)}],
            }

        counters = self.counters
        return {
            "router_sessions_routed_total": counter(
                "Sessions admitted and placed on a shard", counters.routed_sessions
            ),
            "router_sessions_rejected_total": counter(
                "Sessions refused by admission control", counters.rejected_sessions
            ),
            "router_shard_failures_total": counter(
                "Shard failures observed by the router", counters.shard_failures
            ),
            "router_forwarded_frames_total": counter(
                "Frames relayed shard-ward", counters.forwarded_frames
            ),
            "router_reconfigurations_total": counter(
                "Applied live reconfigurations", counters.reconfigurations
            ),
            "router_active_sessions": {
                "type": "gauge",
                "help": "Sessions currently live across the fleet",
                "samples": [{"labels": {}, "value": float(self._active_sessions)}],
            },
            "router_healthy_shards": {
                "type": "gauge",
                "help": "Shards currently marked healthy",
                "samples": [
                    {
                        "labels": {},
                        "value": float(
                            sum(1 for shard in self.shards if shard.healthy)
                        ),
                    }
                ],
            },
            "flight_events_total": counter(
                "Events appended to the router's flight recorder",
                self.flight.num_events,
            ),
            "flight_dumps_total": counter(
                "Router flight-recorder dumps taken", self.flight.num_dumps
            ),
        }

    def _mark_failed(self, shard: ShardState) -> None:
        was_healthy = shard.healthy
        shard.healthy = False
        shard.failures += 1
        self.counters.shard_failures += 1
        self.flight.record(
            "shard_failed",
            shard=shard.index,
            host=shard.host,
            port=shard.port,
            failures=shard.failures,
        )
        log_event(
            _logger,
            "shard_failed",
            shard=shard.index,
            host=shard.host,
            port=shard.port,
            failures=shard.failures,
        )
        if was_healthy:
            # First sighting of this shard's death: preserve the events that
            # led here before the ring rolls over.
            self.flight.dump("shard_death")

    async def _connect_shard(self, session_id: str):
        """Open a connection on the session's shard, failing over as needed."""
        while True:
            shard = self._pick_shard(session_id)
            if shard is None:
                return None, None, None
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(shard.host, shard.port),
                    timeout=self.connect_timeout,
                )
                return shard, reader, writer
            except (ConnectionError, OSError, asyncio.TimeoutError):
                # Dead at connect time: mark it and retry the pick, which now
                # walks past this shard (reassignment of its hash slot).
                self._mark_failed(shard)

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        shard: Optional[ShardState] = None
        shard_reader = shard_writer = None
        admitted = False
        try:
            # The first frame must open the session: everything the router
            # does (admission, placement) keys off the hello.
            line = await reader.readline()
            if not line:
                return
            try:
                message = decode_frame(line)
            except ProtocolError as error:
                await self._write(writer, {"type": "error", "message": str(error)})
                return
            if message["type"] != "hello":
                await self._write(
                    writer,
                    {"type": "error",
                     "message": "the router requires 'hello' as the first frame"},
                )
                return
            if (
                self.max_sessions is not None
                and self._active_sessions >= self.max_sessions
            ):
                self.counters.rejected_sessions += 1
                self.flight.record(
                    "admission_rejected",
                    session_id=message.get("session_id"),
                    active_sessions=self._active_sessions,
                    max_sessions=self.max_sessions,
                )
                log_event(
                    _logger,
                    "admission_rejected",
                    session_id=message.get("session_id"),
                    active_sessions=self._active_sessions,
                    max_sessions=self.max_sessions,
                )
                await self._write(
                    writer,
                    {
                        "type": "error",
                        "code": "admission_rejected",
                        "message": (
                            f"fleet at admission limit "
                            f"({self._active_sessions}/{self.max_sessions} sessions)"
                        ),
                    },
                )
                return
            if not message.get("session_id"):
                # Placement needs a stable id; assign one before hashing.
                self._session_counter += 1
                message["session_id"] = f"router-{self._session_counter}"
            session_id = str(message["session_id"])
            shard, shard_reader, shard_writer = await self._connect_shard(session_id)
            if shard is None:
                self.flight.record("no_healthy_shards", session_id=session_id)
                await self._write(
                    writer,
                    {"type": "error", "code": "no_healthy_shards",
                     "message": "no healthy shard can accept this session"},
                )
                return
            self._active_sessions += 1
            shard.active_sessions += 1
            admitted = True
            reply = await self._forward(shard, shard_writer, shard_reader,
                                        writer, message)
            if reply is None or reply.get("type") != "welcome":
                return
            self.counters.routed_sessions += 1
            # Steady state: strict request/response relay.
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    message = decode_frame(line)
                except ProtocolError as error:
                    await self._write(writer, {"type": "error", "message": str(error)})
                    continue
                # Traced decide: add the router hop to the chain.  The span
                # continues the client's context, and the frame forwarded to
                # the shard carries *this* span as the parent — so the
                # reconstructed trace reads client → router → shard.
                span = None
                if message["type"] == "decide" and message.get("trace"):
                    span = self.spans.span(
                        "router.forward",
                        message["trace"],
                        service="router",
                        tags={"shard": shard.index, "session_id": session_id},
                    )
                    if span is not None:
                        message["trace"] = span.context()
                reply = await self._forward(shard, shard_writer, shard_reader,
                                            writer, message)
                if span is not None:
                    if reply is not None:
                        span.set_tag("source", reply.get("source"))
                    span.finish()
                if reply is None or message["type"] == "bye":
                    return
        except (ConnectionError, OSError):
            return
        finally:
            if admitted:
                self._active_sessions -= 1
                assert shard is not None
                shard.active_sessions -= 1
            for peer in (shard_writer, writer):
                if peer is not None:
                    try:
                        peer.close()
                    except Exception:  # noqa: BLE001 - best-effort teardown
                        pass

    async def _forward(
        self, shard, shard_writer, shard_reader, client_writer, message: dict
    ) -> Optional[dict]:
        """Relay one frame shard-ward and its reply client-ward.

        Returns the decoded reply, or ``None`` after reporting a shard
        failure to the client (the caller must end the session).
        """
        try:
            shard_writer.write(encode_message(message))
            await shard_writer.drain()
            line = await shard_reader.readline()
            if not line:
                raise ConnectionResetError("shard closed the connection")
            reply = decode_frame(line)
        except (ConnectionError, OSError, ProtocolError):
            self._mark_failed(shard)
            try:
                await self._write(
                    client_writer,
                    {
                        "type": "error",
                        "code": "shard_failed",
                        "message": (
                            f"shard {shard.index} ({shard.host}:{shard.port}) "
                            f"failed mid-session; please reconnect"
                        ),
                    },
                )
            except (ConnectionError, OSError):
                pass
            return None
        self.counters.forwarded_frames += 1
        client_writer.write(encode_message(reply))
        await client_writer.drain()
        return reply

    # ------------------------------------------------------------ control plane
    async def _probe_shard(self, shard: ShardState) -> bool:
        """One liveness probe: connect, ask for stats, expect a stats reply."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(shard.host, shard.port),
                timeout=self.probe_timeout,
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            return False
        try:
            writer.write(encode_message({"type": "stats"}))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=self.probe_timeout)
            if not line:
                return False
            return decode_frame(line).get("type") == "stats"
        except (ConnectionError, OSError, ProtocolError, asyncio.TimeoutError):
            return False
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass

    async def _shard_stats(self, shard: ShardState) -> dict:
        entry = shard.describe()
        if not shard.healthy:
            entry["ok"] = False
            return entry
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(shard.host, shard.port),
                timeout=self.probe_timeout,
            )
            try:
                writer.write(encode_message({"type": "stats"}))
                await writer.drain()
                line = await asyncio.wait_for(
                    reader.readline(), timeout=self.probe_timeout
                )
                reply = decode_frame(line) if line else {}
            finally:
                try:
                    writer.close()
                except Exception:  # noqa: BLE001
                    pass
        except (ConnectionError, OSError, ProtocolError, asyncio.TimeoutError):
            self._mark_failed(shard)
            entry.update(shard.describe())
            entry["ok"] = False
            return entry
        entry["ok"] = reply.get("type") == "stats"
        entry["broker"] = reply.get("broker")
        entry["batch_window"] = reply.get("batch_window")
        entry["num_sessions"] = reply.get("num_sessions")
        return entry

    async def _shard_request(
        self, shard: ShardState, payload: dict
    ) -> Optional[dict]:
        """One request/reply against a shard's data plane; None if unreachable.

        Used by the control plane's fleet-wide metrics/trace/flight fan-out.
        Unlike :meth:`_shard_stats` it does not demote the shard on failure —
        an observability query should never change placement state.
        """
        if not shard.healthy:
            return None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(shard.host, shard.port),
                timeout=self.probe_timeout,
            )
            try:
                writer.write(encode_message(payload))
                await writer.drain()
                line = await asyncio.wait_for(
                    reader.readline(), timeout=self.probe_timeout
                )
                return decode_frame(line) if line else None
            finally:
                try:
                    writer.close()
                except Exception:  # noqa: BLE001 - best-effort teardown
                    pass
        except (ConnectionError, OSError, ProtocolError, asyncio.TimeoutError):
            return None

    async def _metrics_payload(self, message: dict) -> dict:
        """Fleet-wide ``metrics``: the router's registry plus every shard's.

        JSON keeps the per-shard snapshots separate; Prometheus concatenates
        them with a ``shard="N"`` label on every sample (and
        ``service="router"`` on the router's own), so one scrape of the
        control plane yields a standard multi-instance exposition.
        """
        format_name = str(message.get("format", "json"))
        if format_name not in ("json", "prometheus"):
            raise ProtocolError(f"unknown metrics format {format_name!r}")
        replies = await asyncio.gather(
            *(
                self._shard_request(shard, {"type": "metrics", "format": "json"})
                for shard in self.shards
            )
        )
        shard_snapshots = [
            (shard.index, reply.get("metrics", {}))
            for shard, reply in zip(self.shards, replies)
            if reply is not None and reply.get("type") == "metrics"
        ]
        if format_name == "prometheus":
            parts = [
                render_prometheus(
                    self.metrics.snapshot(), extra_labels={"service": "router"}
                )
            ]
            parts.extend(
                render_prometheus(snapshot, extra_labels={"shard": str(index)})
                for index, snapshot in shard_snapshots
            )
            return {
                "type": "metrics",
                "format": "prometheus",
                "body": "".join(parts),
            }
        return {
            "type": "metrics",
            "format": "json",
            "router": self.metrics.snapshot(),
            "shards": [
                {"index": index, "metrics": snapshot}
                for index, snapshot in shard_snapshots
            ],
        }

    async def _trace_payload(self, message: dict) -> dict:
        """Fleet-wide ``trace``: one trace id's spans from every process.

        Merges the router's own ``router.forward`` span(s) with whatever each
        shard stored (``server.decide``, ``broker.*``, ``stage.*`` and any
        client-reported spans) — the single-query end-to-end reconstruction
        of one decision.
        """
        trace_id = message.get("trace_id")
        if not trace_id:
            raise ProtocolError("trace request needs a trace_id")
        trace_id = str(trace_id)
        replies = await asyncio.gather(
            *(
                self._shard_request(
                    shard, {"type": "trace", "trace_id": trace_id}
                )
                for shard in self.shards
            )
        )
        spans = self.spans.get(trace_id)
        for reply in replies:
            if reply is not None and reply.get("type") == "trace":
                spans.extend(reply.get("spans", []))
        spans.sort(key=lambda span: span.get("start_time", 0.0))
        return {"type": "trace", "trace_id": trace_id, "spans": spans}

    async def _flight_payload(self, message: dict) -> dict:
        """Fleet-wide ``flight``: dump the router's ring and every shard's."""
        reason = str(message.get("reason", "on_demand"))
        replies = await asyncio.gather(
            *(
                self._shard_request(
                    shard, {"type": "flight", "reason": reason}
                )
                for shard in self.shards
            )
        )
        return {
            "type": "flight",
            "router": self.flight.dump(reason),
            "shards": [
                {
                    "index": shard.index,
                    "recorder": (
                        reply.get("recorder")
                        if reply is not None and reply.get("type") == "flight"
                        else None
                    ),
                }
                for shard, reply in zip(self.shards, replies)
            ],
        }

    def _health_payload(self, probes) -> dict:
        shards = []
        for shard, alive in zip(self.shards, probes):
            # A probe is evidence either way: revive shards that came back
            # only via explicit reconfigure (operators decide), but always
            # demote dead ones.
            if not alive:
                shard.healthy = False
            shards.append({**shard.describe(), "probe_ok": bool(alive)})
        return {
            "type": "health",
            "shards": shards,
            "num_healthy": sum(1 for shard in self.shards if shard.healthy),
            "active_sessions": self._active_sessions,
            "max_sessions": self.max_sessions,
        }

    def _apply_reconfigure(self, message: dict) -> dict:
        """Live reconfiguration: admission limit and per-shard placement state."""
        changed = {}
        if "max_sessions" in message:
            limit = message["max_sessions"]
            self.max_sessions = None if limit is None else int(limit)
            changed["max_sessions"] = self.max_sessions
        if "shard" in message:
            index = int(message["shard"])
            if not 0 <= index < len(self.shards):
                raise ProtocolError(f"unknown shard index {index}")
            shard = self.shards[index]
            if "draining" in message:
                shard.draining = bool(message["draining"])
                changed["draining"] = shard.draining
            if "healthy" in message:
                shard.healthy = bool(message["healthy"])
                changed["healthy"] = shard.healthy
            changed["shard"] = index
        if not changed:
            raise ProtocolError(
                "reconfigure changes nothing: pass max_sessions and/or "
                "shard with draining/healthy"
            )
        self.counters.reconfigurations += 1
        self.flight.record("reconfigure", changed=changed)
        log_event(_logger, "reconfigure", changed=changed)
        return {"type": "reconfigured", "changed": changed}

    async def _handle_control(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    message = decode_frame(line)
                except ProtocolError as error:
                    await self._write(writer, {"type": "error", "message": str(error)})
                    continue
                kind = message["type"]
                try:
                    if kind == "health":
                        probes = await asyncio.gather(
                            *(self._probe_shard(shard) for shard in self.shards)
                        )
                        await self._write(writer, self._health_payload(probes))
                    elif kind == "stats":
                        shard_stats = await asyncio.gather(
                            *(self._shard_stats(shard) for shard in self.shards)
                        )
                        payload = {
                            "type": "stats",
                            "router": {
                                **self.counters.describe(),
                                "active_sessions": self._active_sessions,
                                "max_sessions": self.max_sessions,
                            },
                            "shards": list(shard_stats),
                        }
                        if self.learning_info is not None:
                            payload["learning"] = dict(self.learning_info)
                        await self._write(writer, payload)
                    elif kind == "reconfigure":
                        await self._write(writer, self._apply_reconfigure(message))
                    elif kind == "metrics":
                        await self._write(
                            writer, await self._metrics_payload(message)
                        )
                    elif kind == "trace":
                        await self._write(writer, await self._trace_payload(message))
                    elif kind == "flight":
                        await self._write(
                            writer, await self._flight_payload(message)
                        )
                    elif kind == "bye":
                        await self._write(writer, {"type": "goodbye"})
                        return
                    else:
                        await self._write(
                            writer,
                            {"type": "error",
                             "message": f"unknown control request {kind!r}"},
                        )
                except ProtocolError as error:
                    await self._write(writer, {"type": "error", "message": str(error)})
                except (KeyError, TypeError, ValueError) as error:
                    await self._write(
                        writer,
                        {"type": "error",
                         "message": f"malformed {kind!r} payload: {error!r}"},
                    )
        except (ConnectionError, OSError):
            return
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
