"""Newline-delimited-JSON wire protocol of the policy-serving subsystem.

One JSON object per line, UTF-8, over a plain TCP stream.  The client speaks
first; every request gets exactly one reply, so a session's connection is a
simple synchronous request/response channel (concurrency comes from *many*
sessions, each on its own connection — which is precisely what the server's
request broker batches across).

Request types:

``hello``
    Open a session: ``{"type": "hello", "session_id", "num_executors",
    "seed", "fallback"}``.  Since protocol 2 the client may add a
    ``"protocol"`` field naming the newest protocol it speaks; the server
    negotiates ``min(client, server)`` and echoes the result as
    ``"protocol"`` in the ``welcome`` reply (a hello without the field is a
    protocol-1 client and still works).  Reply: ``welcome`` (echoes the
    session id, describes the hosted policy, and since protocol 2 reports
    the serving ``policy_version``).
``decide``
    Ask for one scheduling decision: ``{"type": "decide", "session_id",
    "request_id", "observation": {...}}`` where the observation payload is
    produced by :func:`encode_observation`.  Reply: ``action`` with the chosen
    ``(job_id, node_id, parallelism_limit)``, the decision ``source``
    (``"policy"`` or ``"fallback"``), the measured ``latency_ms`` and — since
    protocol 2 — the monotonic ``policy_version`` that answered it (the
    online-learning audit trail; old clients ignore the extra key).  Since
    protocol 3 a decide may carry an optional ``"trace": {"trace_id",
    "span_id"}`` context: the server (and every hop in between, see the
    router) then files its share of the decision as spans under that trace,
    queryable via ``trace``.  Untraced decides are byte-identical to v2.
``stats``
    Reply: per-session decision counts, the latency histogram
    (p50/p95/p99, :func:`repro.simulator.metrics.latency_histogram`) and the
    SLO circuit-breaker state.
``metrics``
    (Protocol 3.)  One metrics-registry snapshot:
    ``{"type": "metrics", "format": "json" | "prometheus"}``.  Reply carries
    either the JSON snapshot (``"metrics"``) or the Prometheus text
    exposition (``"body"``) — see :mod:`repro.obs.registry`.
``trace``
    (Protocol 3.)  ``{"type": "trace", "trace_id"}`` returns every span this
    process stored for the trace id.
``trace_report``
    (Protocol 3.)  ``{"type": "trace_report", "spans": [...]}`` files
    client-side finished spans (e.g. ``client.decide``) into the server's
    span store, completing the end-to-end chain.  Reply: ``trace_reported``.
``flight``
    (Protocol 3.)  Dump the flight recorder on demand:
    ``{"type": "flight", "reason"?, "dump"?}``.  Reply carries the ring's
    events plus recorder stats; ``"dump": false`` peeks without counting a
    dump.
``bye``
    Close the session; the server replies ``goodbye`` and drops it.

Errors are reported as ``{"type": "error", "message", ...}`` replies; the
connection stays usable unless framing itself broke.  Fleet-level failures
additionally carry a machine-readable ``code``:

``admission_rejected``
    The router refused a new session because the fleet is at its admission
    limit; retry later or against another fleet.
``shard_failed``
    The shard hosting this session died mid-session; the session is gone and
    the client must re-``hello`` (the router routes new sessions around the
    dead shard).
``no_healthy_shards``
    Every shard is unhealthy or draining; the fleet cannot admit sessions.

The router's **control plane** (a second listener, same framing) speaks
``health`` (per-shard liveness probe), ``stats`` (router counters + per-shard
broker/SLO accounting), ``reconfigure`` (live admission-limit changes, shard
drain/undrain) and — protocol 3 — ``metrics`` (router + every shard's
registry, mergeable with per-shard labels), ``trace`` (router + shard spans
of one trace id, the fleet-wide reconstruction of a single decision) and
``flight`` (router + per-shard flight-recorder dumps) — see
:mod:`repro.service.router`.
"""

from __future__ import annotations

import json
from typing import Optional

from ..simulator.environment import Observation

__all__ = [
    "ProtocolError",
    "encode_message",
    "write_message",
    "decode_frame",
    "read_message",
    "encode_observation",
]

# Version 2 added hello protocol negotiation and policy_version on welcome
# and action replies.  Version 3 added the observability surface: the
# optional "trace" context on decide frames and the metrics / trace /
# trace_report / flight request types.  All additive: a v1 client's hello
# (no "protocol" field) negotiates down to 1, extra reply keys are
# ignorable, untraced decides are unchanged, and the observation payload
# format still stamps its own version.
PROTOCOL_VERSION = 3


class ProtocolError(RuntimeError):
    """A malformed frame or an out-of-protocol message.

    ``code`` carries the machine-readable error code of fleet-level error
    frames (``admission_rejected``, ``shard_failed``, ``no_healthy_shards``);
    plain protocol violations leave it ``None``.
    """

    def __init__(self, message: str, code: Optional[str] = None):
        super().__init__(message)
        self.code = code


def encode_message(payload: dict) -> bytes:
    """One wire frame: compact JSON + newline (keys sorted for stable logs)."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8") + b"\n"


def write_message(stream, payload: dict) -> None:
    """Write one frame and flush (each frame is a complete request/reply)."""
    stream.write(encode_message(payload))
    stream.flush()


def decode_frame(line: bytes) -> dict:
    """Decode one received wire frame (shared by the sync and async readers)."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed frame: {error}") from error
    if not isinstance(payload, dict) or "type" not in payload:
        raise ProtocolError("every frame must be a JSON object with a 'type'")
    return payload


def read_message(stream) -> Optional[dict]:
    """Read one frame; ``None`` on a cleanly closed stream."""
    line = stream.readline()
    if not line:
        return None
    return decode_frame(line)


def encode_observation(observation: Observation) -> dict:
    """Serialize a scheduling observation into the ``decide`` payload.

    The snapshot is complete (full per-job DAG structure and task counters),
    so the server can reconstruct — and incrementally reconcile — shadow job
    DAGs without ever seeing the client's simulator.  Static fields
    (``edges``, ``num_tasks``, ``task_duration``) are only *read* by the
    server the first time a job id appears; later snapshots of the same job
    only refresh the runtime counters.
    """
    jobs = []
    for job in observation.job_dags:
        jobs.append(
            {
                "job_id": int(job.job_id),
                "name": job.name,
                "arrival_time": float(job.arrival_time),
                "edges": [[int(src), int(dst)] for src, dst in job.edges],
                "nodes": [
                    {
                        "node_id": int(node.node_id),
                        "num_tasks": int(node.num_tasks),
                        "task_duration": float(node.task_duration),
                        "num_finished_tasks": int(node.num_finished_tasks),
                        "num_running_tasks": int(node.num_running_tasks),
                        "next_task_index": int(node.next_task_index),
                    }
                    for node in job.nodes
                ],
            }
        )
    return {
        "version": PROTOCOL_VERSION,
        "wall_time": float(observation.wall_time),
        "num_free_executors": int(observation.num_free_executors),
        "total_executors": int(observation.total_executors),
        "num_jobs_in_system": int(observation.num_jobs_in_system),
        "source_job": (
            int(observation.source_job.job_id)
            if observation.source_job is not None
            else None
        ),
        "jobs": jobs,
        "schedulable": [
            [int(node.job.job_id), int(node.node_id)]
            for node in observation.schedulable_nodes
        ],
    }
