"""Client side of the policy service: wire clients and an episode driver.

:class:`PolicyClient` is the raw synchronous protocol client (one session per
connection) — it speaks the identical protocol to a single
:class:`~repro.service.server.PolicyServer`, an
:class:`~repro.service.aioserver.AsyncPolicyServer` shard, or a
:class:`~repro.service.router.ShardRouter` front.  :class:`ControlClient`
talks to the router's control plane (health, fleet stats, live
reconfiguration).  :func:`drive_episode` is the reference *consumer*: it runs
a local :class:`~repro.simulator.SchedulingEnvironment` as the "cluster",
ships every observation to the server, applies the returned action and steps
the simulator — i.e. exactly the loop a live cluster's scheduler agent would
run, with simulated time standing in for the cluster.  The load generator and
the CI smoke test both drive this loop.
"""

from __future__ import annotations

import socket
from typing import Iterable, Optional

from ..obs import Span
from ..simulator.environment import Action, Observation, SchedulingEnvironment
from ..simulator.jobdag import JobDAG
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_observation,
    read_message,
    write_message,
)

__all__ = ["ControlClient", "PolicyClient", "decode_action", "drive_episode"]


class _LineClient:
    """Shared request/response plumbing of the synchronous wire clients."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0):
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._socket.makefile("rwb")

    def request(self, payload: dict) -> dict:
        """Send one frame and read its reply (raises on ``error`` replies)."""
        write_message(self._stream, payload)
        reply = read_message(self._stream)
        if reply is None:
            raise ProtocolError("server closed the connection")
        if reply["type"] == "error":
            raise ProtocolError(
                reply.get("message", "unknown server error"),
                code=reply.get("code"),
            )
        return reply

    def bye(self) -> None:
        try:
            self.request({"type": "bye"})
        except (ProtocolError, OSError):
            pass

    def close(self) -> None:
        try:
            self._stream.close()
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.bye()
        self.close()


class PolicyClient(_LineClient):
    """Synchronous newline-delimited-JSON client for one cluster session."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0):
        super().__init__(host, port, timeout=timeout)
        self.session_id: Optional[str] = None
        # Filled in by hello()'s welcome: the negotiated protocol version and
        # the newest serving policy version seen on any reply (None against a
        # protocol-1 server, which never sends either field).
        self.protocol: Optional[int] = None
        self.policy_version: Optional[int] = None

    # ------------------------------------------------------------------- API
    def hello(
        self,
        session_id: Optional[str] = None,
        num_executors: Optional[int] = None,
        seed: int = 0,
        fallback: Optional[str] = None,
    ) -> dict:
        payload: dict = {
            "type": "hello",
            "seed": int(seed),
            "protocol": PROTOCOL_VERSION,
        }
        if session_id is not None:
            payload["session_id"] = session_id
        if num_executors is not None:
            payload["num_executors"] = int(num_executors)
        if fallback is not None:
            payload["fallback"] = fallback
        reply = self.request(payload)
        self.session_id = reply["session_id"]
        self.protocol = reply.get("protocol")
        self.policy_version = reply.get("policy_version")
        return reply

    def decide(
        self,
        observation: Observation,
        request_id: Optional[int] = None,
        trace: bool = False,
    ) -> dict:
        """One scheduling decision for ``observation`` (an ``action`` reply).

        With ``trace=True`` (protocol 3) the decision is traced end-to-end:
        a ``client.decide`` span is minted here, its context rides the wire
        so every hop (router, shard, broker, model stages) files child spans,
        and after the reply the finished client span is reported back to the
        server's span store.  The reply then carries ``"trace_id"`` — query
        it via :meth:`ControlClient.trace` (fleet) or a data-plane ``trace``
        request.  Tracing costs one extra round-trip per decision; leave it
        off on the hot path and sample instead.
        """
        payload = {
            "type": "decide",
            "session_id": self.session_id,
            "observation": encode_observation(observation),
        }
        if request_id is not None:
            payload["request_id"] = int(request_id)
        span = None
        if trace:
            span = Span(
                "client.decide",
                service="client",
                tags={"session_id": self.session_id},
            )
            payload["trace"] = span.context()
        reply = self.request(payload)
        if "policy_version" in reply:
            self.policy_version = reply["policy_version"]
        if span is not None:
            span.set_tag("source", reply.get("source"))
            span.finish()
            # File the client half of the trace where the rest of it lives.
            try:
                self.request(
                    {"type": "trace_report", "spans": [span.to_dict()]}
                )
            except ProtocolError:
                pass  # pre-v3 server: the trace is just server-side
            reply = dict(reply)
            reply["trace_id"] = span.trace_id
        return reply

    def stats(self) -> dict:
        return self.request({"type": "stats"})

    def metrics(self, format: str = "json") -> dict:
        """This server's metrics-registry snapshot (JSON or Prometheus)."""
        return self.request({"type": "metrics", "format": format})

    def trace(self, trace_id: str) -> dict:
        """Every span this server stored for ``trace_id``."""
        return self.request({"type": "trace", "trace_id": str(trace_id)})

    def flight(self, reason: str = "on_demand", dump: bool = True) -> dict:
        """Dump (or with ``dump=False`` peek at) the server's flight ring."""
        return self.request({"type": "flight", "reason": reason, "dump": dump})


class ControlClient(_LineClient):
    """Synchronous client for the router's control plane.

    Connect it to :attr:`ShardRouter.control_address` (or
    :attr:`ServingFleet.control_address`); one connection can issue any
    number of control requests.
    """

    def health(self) -> dict:
        """Actively probe every shard; returns per-shard liveness + placement."""
        return self.request({"type": "health"})

    def stats(self) -> dict:
        """Router counters plus each shard's broker/SLO accounting."""
        return self.request({"type": "stats"})

    def reconfigure(self, **changes) -> dict:
        """Live reconfiguration, e.g. ``reconfigure(max_sessions=32)`` or
        ``reconfigure(shard=1, draining=True)``."""
        return self.request({"type": "reconfigure", **changes})

    def metrics(self, format: str = "json") -> dict:
        """Fleet-wide registry scrape: the router's plus every shard's.

        ``format="prometheus"`` returns one text exposition with per-shard
        labels in ``reply["body"]``; JSON keeps the snapshots separate under
        ``reply["router"]`` / ``reply["shards"]``.
        """
        return self.request({"type": "metrics", "format": format})

    def trace(self, trace_id: str) -> dict:
        """One trace id's spans from the router and every shard, merged and
        sorted by start time — the end-to-end story of one decision."""
        return self.request({"type": "trace", "trace_id": str(trace_id)})

    def flight(self, reason: str = "on_demand") -> dict:
        """Dump the router's flight ring and every shard's, in one reply."""
        return self.request({"type": "flight", "reason": reason})


def decode_action(reply: dict, observation: Observation) -> Optional[Action]:
    """Map an ``action`` reply back onto the client's own job/node objects."""
    if reply.get("noop"):
        return None
    job_id = int(reply["job_id"])
    node_id = int(reply["node_id"])
    for job in observation.job_dags:
        if job.job_id == job_id:
            for node in job.nodes:
                if node.node_id == node_id:
                    return Action(
                        node=node,
                        parallelism_limit=int(reply["parallelism_limit"]),
                    )
    raise ProtocolError(
        f"server chose job {job_id} node {node_id}, which this cluster does not have"
    )


def drive_episode(
    client: PolicyClient,
    environment: SchedulingEnvironment,
    jobs: Iterable[JobDAG],
    seed: Optional[int] = None,
    max_decisions: Optional[int] = None,
    trace_every: Optional[int] = None,
) -> dict:
    """Run one full episode with every decision served remotely.

    Returns a summary: decision counts by source, per-request latencies (as
    measured by the *server*), and the episode's scheduling outcome.

    ``trace_every=N`` traces every Nth decision end-to-end (see
    :meth:`PolicyClient.decide`); the minted trace ids come back under
    ``"trace_ids"`` so a caller (the loadgen, a test) can reconstruct those
    decisions from the control plane.
    """
    observation = environment.reset(jobs, seed=seed)
    decisions = 0
    sources: dict[str, int] = {}
    latencies_ms: list[float] = []
    trace_ids: list[str] = []
    done = False
    while not done:
        if max_decisions is not None and decisions >= max_decisions:
            break
        traced = trace_every is not None and decisions % trace_every == 0
        reply = client.decide(observation, request_id=decisions, trace=traced)
        action = decode_action(reply, observation)
        sources[reply["source"]] = sources.get(reply["source"], 0) + 1
        latencies_ms.append(float(reply["latency_ms"]))
        if traced and "trace_id" in reply:
            trace_ids.append(reply["trace_id"])
        observation, _, done = environment.step(action)
        decisions += 1
    result = environment.result()
    summary = {
        "decisions": decisions,
        "sources": sources,
        "latencies_ms": latencies_ms,
        "finished_jobs": len(result.finished_jobs),
        "unfinished_jobs": len(result.unfinished_jobs),
        "wall_time": result.wall_time,
    }
    if trace_ids:
        summary["trace_ids"] = trace_ids
    return summary
