"""Client side of the policy service: wire clients and an episode driver.

:class:`PolicyClient` is the raw synchronous protocol client (one session per
connection) — it speaks the identical protocol to a single
:class:`~repro.service.server.PolicyServer`, an
:class:`~repro.service.aioserver.AsyncPolicyServer` shard, or a
:class:`~repro.service.router.ShardRouter` front.  :class:`ControlClient`
talks to the router's control plane (health, fleet stats, live
reconfiguration).  :func:`drive_episode` is the reference *consumer*: it runs
a local :class:`~repro.simulator.SchedulingEnvironment` as the "cluster",
ships every observation to the server, applies the returned action and steps
the simulator — i.e. exactly the loop a live cluster's scheduler agent would
run, with simulated time standing in for the cluster.  The load generator and
the CI smoke test both drive this loop.
"""

from __future__ import annotations

import socket
from typing import Iterable, Optional

from ..simulator.environment import Action, Observation, SchedulingEnvironment
from ..simulator.jobdag import JobDAG
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_observation,
    read_message,
    write_message,
)

__all__ = ["ControlClient", "PolicyClient", "decode_action", "drive_episode"]


class _LineClient:
    """Shared request/response plumbing of the synchronous wire clients."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0):
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._socket.makefile("rwb")

    def request(self, payload: dict) -> dict:
        """Send one frame and read its reply (raises on ``error`` replies)."""
        write_message(self._stream, payload)
        reply = read_message(self._stream)
        if reply is None:
            raise ProtocolError("server closed the connection")
        if reply["type"] == "error":
            raise ProtocolError(
                reply.get("message", "unknown server error"),
                code=reply.get("code"),
            )
        return reply

    def bye(self) -> None:
        try:
            self.request({"type": "bye"})
        except (ProtocolError, OSError):
            pass

    def close(self) -> None:
        try:
            self._stream.close()
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.bye()
        self.close()


class PolicyClient(_LineClient):
    """Synchronous newline-delimited-JSON client for one cluster session."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0):
        super().__init__(host, port, timeout=timeout)
        self.session_id: Optional[str] = None
        # Filled in by hello()'s welcome: the negotiated protocol version and
        # the newest serving policy version seen on any reply (None against a
        # protocol-1 server, which never sends either field).
        self.protocol: Optional[int] = None
        self.policy_version: Optional[int] = None

    # ------------------------------------------------------------------- API
    def hello(
        self,
        session_id: Optional[str] = None,
        num_executors: Optional[int] = None,
        seed: int = 0,
        fallback: Optional[str] = None,
    ) -> dict:
        payload: dict = {
            "type": "hello",
            "seed": int(seed),
            "protocol": PROTOCOL_VERSION,
        }
        if session_id is not None:
            payload["session_id"] = session_id
        if num_executors is not None:
            payload["num_executors"] = int(num_executors)
        if fallback is not None:
            payload["fallback"] = fallback
        reply = self.request(payload)
        self.session_id = reply["session_id"]
        self.protocol = reply.get("protocol")
        self.policy_version = reply.get("policy_version")
        return reply

    def decide(self, observation: Observation, request_id: Optional[int] = None) -> dict:
        """One scheduling decision for ``observation`` (an ``action`` reply)."""
        payload = {
            "type": "decide",
            "session_id": self.session_id,
            "observation": encode_observation(observation),
        }
        if request_id is not None:
            payload["request_id"] = int(request_id)
        reply = self.request(payload)
        if "policy_version" in reply:
            self.policy_version = reply["policy_version"]
        return reply

    def stats(self) -> dict:
        return self.request({"type": "stats"})


class ControlClient(_LineClient):
    """Synchronous client for the router's control plane.

    Connect it to :attr:`ShardRouter.control_address` (or
    :attr:`ServingFleet.control_address`); one connection can issue any
    number of control requests.
    """

    def health(self) -> dict:
        """Actively probe every shard; returns per-shard liveness + placement."""
        return self.request({"type": "health"})

    def stats(self) -> dict:
        """Router counters plus each shard's broker/SLO accounting."""
        return self.request({"type": "stats"})

    def reconfigure(self, **changes) -> dict:
        """Live reconfiguration, e.g. ``reconfigure(max_sessions=32)`` or
        ``reconfigure(shard=1, draining=True)``."""
        return self.request({"type": "reconfigure", **changes})


def decode_action(reply: dict, observation: Observation) -> Optional[Action]:
    """Map an ``action`` reply back onto the client's own job/node objects."""
    if reply.get("noop"):
        return None
    job_id = int(reply["job_id"])
    node_id = int(reply["node_id"])
    for job in observation.job_dags:
        if job.job_id == job_id:
            for node in job.nodes:
                if node.node_id == node_id:
                    return Action(
                        node=node,
                        parallelism_limit=int(reply["parallelism_limit"]),
                    )
    raise ProtocolError(
        f"server chose job {job_id} node {node_id}, which this cluster does not have"
    )


def drive_episode(
    client: PolicyClient,
    environment: SchedulingEnvironment,
    jobs: Iterable[JobDAG],
    seed: Optional[int] = None,
    max_decisions: Optional[int] = None,
) -> dict:
    """Run one full episode with every decision served remotely.

    Returns a summary: decision counts by source, per-request latencies (as
    measured by the *server*), and the episode's scheduling outcome.
    """
    observation = environment.reset(jobs, seed=seed)
    decisions = 0
    sources: dict[str, int] = {}
    latencies_ms: list[float] = []
    done = False
    while not done:
        if max_decisions is not None and decisions >= max_decisions:
            break
        reply = client.decide(observation, request_id=decisions)
        action = decode_action(reply, observation)
        sources[reply["source"]] = sources.get(reply["source"], 0) + 1
        latencies_ms.append(float(reply["latency_ms"]))
        observation, _, done = environment.step(action)
        decisions += 1
    result = environment.result()
    return {
        "decisions": decisions,
        "sources": sources,
        "latencies_ms": latencies_ms,
        "finished_jobs": len(result.finished_jobs),
        "unfinished_jobs": len(result.unfinished_jobs),
        "wall_time": result.wall_time,
    }
