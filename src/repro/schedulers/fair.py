"""Fair-sharing baselines (baselines 3-5 of §7.1).

* :class:`FairScheduler` — each active job gets an equal share of the
  executors; runnable branches within a job are drained round-robin.
* :class:`NaiveWeightedFairScheduler` — executor shares proportional to each
  job's total work (``alpha = 1``).
* :class:`WeightedFairScheduler` — shares proportional to ``T_i ** alpha``;
  sweeping ``alpha`` in ``{-2, -1.9, ..., 2}`` and picking the best gives the
  paper's "optimally tuned weighted fair" heuristic (the strongest baseline).

All three are work-conserving: when every job already holds its share, the
remaining free executors are given to the job with the largest deficit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..simulator.environment import Action, Observation
from ..simulator.jobdag import JobDAG, Node
from .base import Scheduler, best_fit_class, runnable_by_job

__all__ = [
    "FairScheduler",
    "NaiveWeightedFairScheduler",
    "WeightedFairScheduler",
    "ALPHA_SWEEP",
]

#: The paper sweeps alpha over {-2, -1.9, ..., 2} to tune the weighted fair heuristic.
ALPHA_SWEEP = tuple(np.round(np.arange(-2.0, 2.0 + 1e-9, 0.1), 1))


class WeightedFairScheduler(Scheduler):
    """Weighted fair sharing with executor shares proportional to ``T_i ** alpha``."""

    name = "weighted_fair"

    def __init__(self, alpha: float = 0.0):
        self.alpha = float(alpha)
        self._round_robin: dict[int, int] = {}

    def reset(self) -> None:
        self._round_robin = {}

    # ------------------------------------------------------------------ shares
    def _shares(self, observation: Observation) -> dict[JobDAG, float]:
        jobs = observation.job_dags
        if not jobs:
            return {}
        weights = np.array([max(job.total_work, 1e-6) ** self.alpha for job in jobs])
        weights = weights / weights.sum()
        return {job: float(w * observation.total_executors) for job, w in zip(jobs, weights)}

    def _pick_branch(self, job: JobDAG, nodes: list[Node]) -> Node:
        """Round-robin over a job's runnable branches to drain them concurrently."""
        nodes = sorted(nodes, key=lambda node: node.node_id)
        cursor = self._round_robin.get(job.job_id, 0)
        node = nodes[cursor % len(nodes)]
        self._round_robin[job.job_id] = cursor + 1
        return node

    def schedule(self, observation: Observation) -> Optional[Action]:
        grouped = runnable_by_job(observation)
        if not grouped:
            return None
        shares = self._shares(observation)
        # Job with the largest deficit (share - held executors) gets the next executors.
        def deficit(job: JobDAG) -> float:
            return shares.get(job, 0.0) - job.num_active_executors

        job = max(grouped, key=lambda j: (deficit(j), -j.arrival_time, -j.job_id))
        node = self._pick_branch(job, grouped[job])
        target = int(np.ceil(shares.get(job, 1.0)))
        if deficit(job) <= 0:
            # Work conserving: everyone has its share, so allow this job to grow.
            target = job.num_active_executors + 1
        limit = max(target, job.num_active_executors + 1)
        return Action(
            node=node,
            parallelism_limit=limit,
            executor_class=best_fit_class(observation, node),
        )


class FairScheduler(WeightedFairScheduler):
    """Simple (unweighted) fair sharing: equal executor shares (``alpha = 0``)."""

    name = "fair"

    def __init__(self):
        super().__init__(alpha=0.0)


class NaiveWeightedFairScheduler(WeightedFairScheduler):
    """Weighted fair sharing with shares proportional to total work (``alpha = 1``)."""

    name = "naive_weighted_fair"

    def __init__(self):
        super().__init__(alpha=1.0)
