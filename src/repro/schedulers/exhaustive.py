"""Exhaustive job-ordering search (Appendix H).

The paper estimates how close Decima is to optimal by brute-forcing all ``n!``
orderings of a small batch of jobs in a simplified environment: for each
ordering, a static scheduler serves the earliest unfinished job in that order
and follows each job's critical path.  The ordering with the lowest average
JCT is the (near-)optimal reference point.
"""

from __future__ import annotations

from itertools import permutations
from typing import Callable, Iterable, Optional, Sequence

from ..simulator.environment import Action, Observation
from ..simulator.jobdag import JobDAG
from .base import Scheduler, best_fit_class, critical_path_node, runnable_by_job

__all__ = ["StaticOrderScheduler", "exhaustive_search"]


class StaticOrderScheduler(Scheduler):
    """Serve jobs strictly in a fixed order, following each job's critical path.

    ``order`` is a sequence of job names; jobs not named are served last in
    arrival order.
    """

    name = "static_order"

    def __init__(self, order: Sequence[str]):
        self.order = list(order)
        self._rank = {name: i for i, name in enumerate(self.order)}

    def _job_rank(self, job: JobDAG) -> tuple[int, float, int]:
        return (self._rank.get(job.name, len(self._rank)), job.arrival_time, job.job_id)

    def schedule(self, observation: Observation) -> Optional[Action]:
        grouped = runnable_by_job(observation)
        if not grouped:
            return None
        job = min(grouped, key=self._job_rank)
        node = critical_path_node(grouped[job])
        limit = job.num_active_executors + observation.num_free_executors
        return Action(
            node=node,
            parallelism_limit=limit,
            executor_class=best_fit_class(observation, node),
        )


def exhaustive_search(
    job_names: Iterable[str],
    evaluate_order: Callable[[tuple[str, ...]], float],
    max_permutations: Optional[int] = None,
) -> tuple[tuple[str, ...], float, dict[tuple[str, ...], float]]:
    """Evaluate every permutation of ``job_names`` and return the best one.

    ``evaluate_order`` maps an ordering to a score to *minimise* (the paper
    uses average JCT).  ``max_permutations`` caps the search for large inputs
    (the paper uses batches of 10 jobs, i.e. 10! orderings; our benchmarks use
    smaller batches so the search finishes quickly).
    """
    names = tuple(job_names)
    if not names:
        raise ValueError("exhaustive search needs at least one job")
    scores: dict[tuple[str, ...], float] = {}
    best_order: Optional[tuple[str, ...]] = None
    best_score = float("inf")
    for count, order in enumerate(permutations(names)):
        if max_permutations is not None and count >= max_permutations:
            break
        score = float(evaluate_order(order))
        scores[order] = score
        if score < best_score:
            best_score = score
            best_order = order
    assert best_order is not None
    return best_order, best_score, scores
