"""A uniformly random scheduling policy (sanity-check floor baseline)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..simulator.environment import Action, Observation
from .base import Scheduler, best_fit_class

__all__ = ["RandomScheduler"]


class RandomScheduler(Scheduler):
    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self.rng = np.random.default_rng(self.seed)

    def schedule(self, observation: Observation) -> Optional[Action]:
        nodes = observation.schedulable_nodes
        if not nodes:
            return None
        node = nodes[int(self.rng.integers(0, len(nodes)))]
        job = node.job
        limit = job.num_active_executors + int(
            self.rng.integers(1, max(2, observation.num_free_executors + 1))
        )
        return Action(
            node=node,
            parallelism_limit=limit,
            executor_class=best_fit_class(observation, node),
        )
