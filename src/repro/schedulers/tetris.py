"""Tetris multi-resource packing heuristic (baseline 6 of §7.1, Grandl et al. 2014).

Tetris greedily schedules the stage that maximises the dot product of its
requested resource vector and the cluster's available resource vector, and
packs its tasks into the best-fitting executor class (Appendix F).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..simulator.environment import Action, Observation
from ..simulator.jobdag import Node
from .base import Scheduler, best_fit_class, runnable_by_job

__all__ = ["TetrisScheduler"]


class TetrisScheduler(Scheduler):
    name = "tetris"

    def _available_vector(self, observation: Observation) -> np.ndarray:
        cpu = 0.0
        memory = 0.0
        for cls, count in observation.free_executors_by_class.items():
            cpu += cls.cpu * count
            memory += cls.memory * count
        return np.array([cpu, memory])

    @staticmethod
    def _request_vector(node: Node) -> np.ndarray:
        # In the standalone (single-resource) setting every task requests one slot.
        cpu = node.cpu_request if node.cpu_request > 0 else 1.0
        memory = node.mem_request if node.mem_request > 0 else 1.0
        return np.array([cpu, memory])

    def schedule(self, observation: Observation) -> Optional[Action]:
        grouped = runnable_by_job(observation)
        if not grouped:
            return None
        available = self._available_vector(observation)
        best_node = None
        best_score = -np.inf
        for nodes in grouped.values():
            for node in nodes:
                score = float(self._request_vector(node) @ available)
                if score > best_score:
                    best_score = score
                    best_node = node
        assert best_node is not None
        job = best_node.job
        # Greedily grant as much parallelism as the stage's tasks need.
        limit = job.num_active_executors + min(
            best_node.remaining_tasks, observation.free_executors_for(best_node)
        )
        return Action(
            node=best_node,
            parallelism_limit=max(limit, job.num_active_executors + 1),
            executor_class=best_fit_class(observation, best_node),
        )
