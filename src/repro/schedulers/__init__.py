"""Baseline scheduling heuristics evaluated against Decima (§7.1, Appendix H)."""

from .base import Scheduler, best_fit_class, critical_path_node, runnable_by_job
from .exhaustive import StaticOrderScheduler, exhaustive_search
from .fair import (
    ALPHA_SWEEP,
    FairScheduler,
    NaiveWeightedFairScheduler,
    WeightedFairScheduler,
)
from .fifo import FIFOScheduler
from .graphene import GrapheneScheduler
from .random_policy import RandomScheduler
from .sjf_cp import SJFCPScheduler
from .tetris import TetrisScheduler

__all__ = [
    "Scheduler",
    "best_fit_class",
    "critical_path_node",
    "runnable_by_job",
    "StaticOrderScheduler",
    "exhaustive_search",
    "ALPHA_SWEEP",
    "FairScheduler",
    "NaiveWeightedFairScheduler",
    "WeightedFairScheduler",
    "FIFOScheduler",
    "GrapheneScheduler",
    "RandomScheduler",
    "SJFCPScheduler",
    "TetrisScheduler",
]
