"""Baseline scheduling heuristics evaluated against Decima (§7.1, Appendix H).

Besides the scheduler classes themselves, this package owns the *scheduler
registry*: the single name → factory mapping used everywhere a scheduler is
picked by name — the sweep engine's scenario matrix, CLI ``--schedulers``
flags, and the policy-serving layer's SLO fallback path.  A factory takes the
target cluster's :class:`~repro.simulator.environment.SimulatorConfig` (some
schedulers, like Decima's multi-resource variant, configure themselves from
it) and returns a fresh :class:`Scheduler`.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..simulator.environment import SimulatorConfig
from .base import Scheduler, best_fit_class, critical_path_node, runnable_by_job
from .exhaustive import StaticOrderScheduler, exhaustive_search
from .fair import (
    ALPHA_SWEEP,
    FairScheduler,
    NaiveWeightedFairScheduler,
    WeightedFairScheduler,
)
from .fifo import FIFOScheduler
from .graphene import GrapheneScheduler
from .random_policy import RandomScheduler
from .sjf_cp import SJFCPScheduler
from .tetris import TetrisScheduler

__all__ = [
    "Scheduler",
    "best_fit_class",
    "critical_path_node",
    "runnable_by_job",
    "StaticOrderScheduler",
    "exhaustive_search",
    "ALPHA_SWEEP",
    "FairScheduler",
    "NaiveWeightedFairScheduler",
    "WeightedFairScheduler",
    "FIFOScheduler",
    "GrapheneScheduler",
    "RandomScheduler",
    "SJFCPScheduler",
    "TetrisScheduler",
    "SchedulerFactory",
    "register_scheduler",
    "make_scheduler",
    "scheduler_names",
]

SchedulerFactory = Callable[[SimulatorConfig], Scheduler]

_REGISTRY: Dict[str, SchedulerFactory] = {}


def register_scheduler(
    name: str, factory: SchedulerFactory, overwrite: bool = False
) -> None:
    """Add a named scheduler factory to the registry.

    Registration is what makes a scheduler reachable from the sweep CLI and
    usable as a serving-layer fallback.  Duplicate names raise unless
    ``overwrite`` is set (tests and experiments may shadow a builtin).
    """
    if not overwrite and name in _REGISTRY:
        raise ValueError(f"scheduler {name!r} is already registered")
    _REGISTRY[name] = factory


def make_scheduler(name: str, config: SimulatorConfig) -> Scheduler:
    """Instantiate the named scheduler for a cluster's simulator config."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(scheduler_names())
        raise KeyError(f"unknown scheduler {name!r}; known schedulers: {known}") from None
    return factory(config)


def scheduler_names() -> tuple:
    """Registered scheduler names, in registration order."""
    return tuple(_REGISTRY)


def _make_decima(config: SimulatorConfig) -> Scheduler:
    """A randomly initialized Decima agent (greedy, deterministic evaluation).

    The class-selection head is enabled automatically on clusters with more
    than one executor class (§7.3).  Imported lazily: ``repro.core.agent``
    itself imports this package for the :class:`Scheduler` interface.
    """
    from ..core.agent import DecimaAgent, DecimaConfig

    classes = config.executor_classes or []
    multi = len({cls for cls, _ in classes}) > 1
    return DecimaAgent(
        total_executors=config.num_executors,
        config=DecimaConfig(seed=0, multi_resource=multi),
    )


register_scheduler("fifo", lambda config: FIFOScheduler())
register_scheduler("fair", lambda config: FairScheduler())
register_scheduler("weighted_fair", lambda config: WeightedFairScheduler())
register_scheduler("naive_weighted_fair", lambda config: NaiveWeightedFairScheduler())
register_scheduler("sjf_cp", lambda config: SJFCPScheduler())
register_scheduler("graphene", lambda config: GrapheneScheduler())
register_scheduler("tetris", lambda config: TetrisScheduler())
register_scheduler("random", lambda config: RandomScheduler())
register_scheduler("decima", _make_decima)
