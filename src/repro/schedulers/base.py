"""Scheduler interface shared by Decima and all baseline heuristics.

A scheduler is a policy mapping an :class:`~repro.simulator.Observation` to an
:class:`~repro.simulator.Action` (stage, parallelism limit, optional executor
class).  The environment keeps invoking the scheduler while free executors and
schedulable stages remain at the current instant, exactly as the paper's agent
is invoked (§5.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from ..simulator.environment import Action, Observation
from ..simulator.executor import ExecutorClass
from ..simulator.jobdag import JobDAG, Node, critical_path_value

__all__ = ["Scheduler", "critical_path_node", "best_fit_class", "runnable_by_job"]


class Scheduler(ABC):
    """Base class for scheduling policies."""

    name = "scheduler"

    def reset(self) -> None:
        """Clear per-episode state (called before every episode)."""

    @abstractmethod
    def schedule(self, observation: Observation) -> Optional[Action]:
        """Return the next scheduling action, or ``None`` to leave executors idle."""


def runnable_by_job(observation: Observation) -> dict[JobDAG, list[Node]]:
    """Group the schedulable stages of the observation by job."""
    grouped: dict[JobDAG, list[Node]] = {}
    for node in observation.schedulable_nodes:
        grouped.setdefault(node.job, []).append(node)
    return grouped


def critical_path_node(nodes: list[Node]) -> Node:
    """The schedulable stage with the largest downstream critical-path work.

    This is the "next stage on its critical path" rule used by the SJF-CP
    baseline (§7.1) and by Graphene* as a tie-breaker.
    """
    if not nodes:
        raise ValueError("no schedulable nodes to choose from")
    cache: dict = {}
    return max(nodes, key=lambda node: critical_path_value(node, cache))


def best_fit_class(observation: Observation, node: Node) -> Optional[ExecutorClass]:
    """Smallest free executor class that satisfies the node's resource request.

    Returns ``None`` when the cluster has a single executor class (the
    standalone setting) so the environment's default selection applies.
    """
    if len(observation.executor_classes) <= 1:
        return None
    fitting = [
        cls
        for cls, count in observation.free_executors_by_class.items()
        if count > 0 and cls.fits(node)
    ]
    if not fitting:
        return None
    return min(fitting, key=lambda cls: (cls.memory, cls.cpu))
