"""Spark's default FIFO scheduling (baseline 1 of §7.1).

Jobs run in arrival order; each job is granted as many executors as the user
requested (``executor_cap``, defaulting to the whole cluster).
"""

from __future__ import annotations

from typing import Optional

from ..simulator.environment import Action, Observation
from .base import Scheduler, best_fit_class, critical_path_node, runnable_by_job

__all__ = ["FIFOScheduler"]


class FIFOScheduler(Scheduler):
    name = "fifo"

    def __init__(self, executor_cap: Optional[int] = None):
        self.executor_cap = executor_cap

    def schedule(self, observation: Observation) -> Optional[Action]:
        grouped = runnable_by_job(observation)
        if not grouped:
            return None
        cap = self.executor_cap or observation.total_executors
        # Earliest-arrived job first; within it, follow the critical path.
        job = min(grouped, key=lambda j: (j.arrival_time, j.job_id))
        node = critical_path_node(grouped[job])
        limit = min(cap, job.num_active_executors + observation.num_free_executors)
        return Action(
            node=node,
            parallelism_limit=max(limit, job.num_active_executors + 1),
            executor_class=best_fit_class(observation, node),
        )
