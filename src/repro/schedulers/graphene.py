"""Graphene* — adaptation of Graphene (Grandl et al. 2016) to discrete executors.

Following Appendix F of the paper, Graphene*:

* detects "troublesome" stages of each DAG (stages whose duration and resource
  demand are both unusually large),
* suppresses the priority of a DAG's troublesome stages until *all* of them are
  schedulable, so they can be scheduled together (the essence of Graphene's
  offline packing plan),
* controls parallelism with the optimally tuned weighted fair share
  (``T_i ** alpha``), and
* packs tasks into the best-fitting executor class.

The two hyperparameters (``troublesome_threshold`` and ``alpha``) are tuned by
grid search in the benchmark harness, mirroring the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..simulator.environment import Action, Observation
from ..simulator.jobdag import JobDAG, Node
from .base import Scheduler, best_fit_class, critical_path_node, runnable_by_job

__all__ = ["GrapheneScheduler"]


class GrapheneScheduler(Scheduler):
    name = "graphene"

    def __init__(self, troublesome_threshold: float = 0.7, alpha: float = -1.0):
        if not 0.0 <= troublesome_threshold <= 1.0:
            raise ValueError("troublesome_threshold must be in [0, 1]")
        self.troublesome_threshold = float(troublesome_threshold)
        self.alpha = float(alpha)
        self._troublesome: dict[int, set[int]] = {}

    def reset(self) -> None:
        self._troublesome = {}

    # --------------------------------------------------------- troublesome set
    def _troublesome_nodes(self, job: JobDAG) -> set[int]:
        """Stage ids whose combined duration/resource score exceeds the threshold."""
        if job.job_id in self._troublesome:
            return self._troublesome[job.job_id]
        works = np.array([node.total_work for node in job.nodes], dtype=float)
        memory = np.array([max(node.mem_request, 1e-3) for node in job.nodes], dtype=float)
        score = (works / works.max()) * (memory / memory.max())
        troublesome = {
            node.node_id
            for node, s in zip(job.nodes, score)
            if s >= self.troublesome_threshold
        }
        self._troublesome[job.job_id] = troublesome
        return troublesome

    def _priority(self, job: JobDAG, node: Node) -> float:
        """Critical-path priority, suppressed for not-yet-co-schedulable troublesome nodes."""
        troublesome = self._troublesome_nodes(job)
        if node.node_id in troublesome:
            runnable_ids = {n.node_id for n in job.runnable_nodes}
            all_ready = troublesome <= runnable_ids
            if not all_ready:
                return -1.0
        from ..simulator.jobdag import critical_path_value

        return critical_path_value(node)

    # -------------------------------------------------------------- scheduling
    def _share(self, observation: Observation, job: JobDAG) -> int:
        jobs = observation.job_dags
        weights = np.array([max(j.total_work, 1e-6) ** self.alpha for j in jobs])
        weights = weights / weights.sum()
        share = float(weights[jobs.index(job)] * observation.total_executors)
        return max(1, int(np.ceil(share)))

    def schedule(self, observation: Observation) -> Optional[Action]:
        grouped = runnable_by_job(observation)
        if not grouped:
            return None
        # Jobs with the largest share deficit are served first (fairness),
        # and within a job the highest-priority (non-suppressed) stage runs.
        best: tuple[float, float] | None = None
        best_node: Optional[Node] = None
        best_job: Optional[JobDAG] = None
        for job, nodes in grouped.items():
            deficit = self._share(observation, job) - job.num_active_executors
            priorities = [(self._priority(job, node), node) for node in nodes]
            positive = [(p, node) for p, node in priorities if p >= 0]
            if positive:
                priority, node = max(positive, key=lambda item: item[0])
            else:
                # Every runnable stage is a suppressed troublesome stage; fall
                # back to the critical path so the DAG still makes progress.
                node = critical_path_node(nodes)
                priority = 0.0
            key = (deficit, priority)
            if best is None or key > best:
                best = key
                best_node = node
                best_job = job
        assert best_node is not None and best_job is not None
        limit = max(self._share(observation, best_job), best_job.num_active_executors + 1)
        return Action(
            node=best_node,
            parallelism_limit=limit,
            executor_class=best_fit_class(observation, best_node),
        )
