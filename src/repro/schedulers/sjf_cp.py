"""Shortest-job-first critical-path heuristic (SJF-CP, baseline 2 of §7.1).

Prioritises jobs by their total remaining work and, within the chosen job,
runs tasks from the next stage on its critical path.  All executors are
dedicated to the chosen job (the paper notes this is inefficient but simple).
"""

from __future__ import annotations

from typing import Optional

from ..simulator.environment import Action, Observation
from .base import Scheduler, best_fit_class, critical_path_node, runnable_by_job

__all__ = ["SJFCPScheduler"]


class SJFCPScheduler(Scheduler):
    name = "sjf_cp"

    def schedule(self, observation: Observation) -> Optional[Action]:
        grouped = runnable_by_job(observation)
        if not grouped:
            return None
        job = min(grouped, key=lambda j: (j.remaining_work, j.arrival_time, j.job_id))
        node = critical_path_node(grouped[job])
        limit = job.num_active_executors + observation.num_free_executors
        return Action(
            node=node,
            parallelism_limit=limit,
            executor_class=best_fit_class(observation, node),
        )
