"""repro — a reproduction of Decima (Mao et al., SIGCOMM 2019).

Decima learns workload-specific scheduling policies for DAG-structured data
processing jobs with reinforcement learning.  This package contains:

* :mod:`repro.autograd` — a numpy reverse-mode autodiff engine (the substrate
  that replaces TensorFlow);
* :mod:`repro.simulator` — the event-driven Spark-like cluster simulator;
* :mod:`repro.workloads` — TPC-H-like and Alibaba-like workload generators;
* :mod:`repro.schedulers` — all baseline heuristics from the paper;
* :mod:`repro.core` — the Decima agent (graph neural network, policy network,
  REINFORCE training with curriculum and input-dependent baselines);
* :mod:`repro.experiments` — the harness regenerating every table and figure;
* :mod:`repro.service` — the policy-serving subsystem (multi-session
  scheduling service with cross-session batched GNN inference);
* :mod:`repro.verify` — deterministic trace record/replay and the
  differential verification harness across all fast/oracle pairs.
"""

__version__ = "1.0.0"

__all__ = [
    "autograd",
    "simulator",
    "workloads",
    "schedulers",
    "core",
    "experiments",
    "service",
    "verify",
]
