"""Benchmark: the telemetry layer must stay off the decision path.

Issue 9 threads a metrics registry, per-decision tracing and a flight
recorder through the serving stack with one hard promise: an *untraced*
decision does the same work it did before telemetry existed, and even a
*traced* decision (span minting, the stage clock's wall-timestamp, four
child spans filed per ``act()``) stays within a few percent of it.  This
benchmark measures ``act()`` steps/sec over identical seeded episodes with
tracing off and on and records both in ``BENCH_obs.json``.

``DECIMA_BENCH_OBS_MAX_OVERHEAD_PCT`` (default 5.0) sets the allowed traced
overhead in percent; CI loosens it for noisy shared runners.  Each mode is
measured over alternating repetitions and scored by its best run, so the
comparison tracks the code paths rather than scheduler jitter.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import run_once

from repro.core import DecimaAgent, DecimaConfig
from repro.obs import Span, SpanStore
from repro.simulator import SchedulingEnvironment, SimulatorConfig
from repro.workloads import batched_arrivals, sample_tpch_jobs

NUM_JOBS = 50
NUM_EXECUTORS = 20
STEPS = 60
REPETITIONS = 5


def _measure(traced: bool) -> dict:
    """Steps/sec of ``act()`` over one seeded greedy episode prefix."""
    rng = np.random.default_rng(0)
    jobs = batched_arrivals(sample_tpch_jobs(NUM_JOBS, rng, sizes=(2.0, 5.0)))
    environment = SchedulingEnvironment(
        SimulatorConfig(num_executors=NUM_EXECUTORS, seed=0)
    )
    agent = DecimaAgent(total_executors=NUM_EXECUTORS, config=DecimaConfig(seed=0))
    agent.reset()
    observation = environment.reset(jobs, seed=0)
    act_rng = np.random.default_rng(1)
    store = SpanStore(max_traces=STEPS + 1)

    act_seconds = 0.0
    actions = 0
    done = False
    while not done and actions < STEPS:
        span = None
        if traced:
            span = Span("broker.decide", service="bench", store=store)
        start = time.perf_counter()
        action, _ = agent.act(observation, rng=act_rng, greedy=True, span=span)
        act_seconds += time.perf_counter() - start
        if span is not None:
            span.finish()
        observation, _, done = environment.step(action)
        actions += 1
    if traced:
        # Sanity: tracing actually happened (per decision: the parent span
        # plus 4 stage children).
        assert store.num_spans == actions * 5
    return {
        "traced": traced,
        "actions": actions,
        "act_seconds": act_seconds,
        "steps_per_sec": actions / act_seconds if act_seconds else float("inf"),
    }


def _compare_modes() -> dict:
    runs = {False: [], True: []}
    for _ in range(REPETITIONS):
        for traced in (False, True):
            runs[traced].append(_measure(traced))
    best = {
        traced: max(rows, key=lambda row: row["steps_per_sec"])
        for traced, rows in runs.items()
    }
    overhead_pct = (
        best[False]["steps_per_sec"] / best[True]["steps_per_sec"] - 1.0
    ) * 100.0
    return {
        "num_jobs": NUM_JOBS,
        "steps_per_mode": STEPS,
        "repetitions": REPETITIONS,
        "telemetry_off": best[False],
        "telemetry_on": best[True],
        "traced_overhead_pct": overhead_pct,
    }


def test_bench_obs_overhead(benchmark):
    result = run_once(benchmark, _compare_modes)
    off = result["telemetry_off"]["steps_per_sec"]
    on = result["telemetry_on"]["steps_per_sec"]
    print()
    print("act() telemetry overhead (stage clock + per-decision spans)")
    print(f"  untraced: {off:>8.1f} steps/s")
    print(f"  traced:   {on:>8.1f} steps/s")
    print(f"  overhead: {result['traced_overhead_pct']:>7.2f} %")
    benchmark.extra_info["traced_overhead_pct"] = round(
        result["traced_overhead_pct"], 3
    )

    output_dir = Path(os.environ.get("DECIMA_BENCH_OUTPUT_DIR", "."))
    artifact = output_dir / "BENCH_obs.json"
    artifact.write_text(json.dumps(result, indent=2) + "\n")
    print(f"  wrote {artifact}")

    allowed = float(os.environ.get("DECIMA_BENCH_OBS_MAX_OVERHEAD_PCT", "5.0"))
    assert result["traced_overhead_pct"] <= allowed, (
        f"traced act() is {result['traced_overhead_pct']:.2f}% slower than "
        f"untraced; the telemetry budget is {allowed:.1f}%"
    )
