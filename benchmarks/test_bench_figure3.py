"""Benchmark: Figure 3 — illustrative 10-job batch, FIFO vs SJF vs fair vs Decima."""

from conftest import run_once

from repro.experiments import figure3_illustrative_example, format_scalar_table


def test_bench_figure3_illustrative_example(benchmark):
    outputs = run_once(
        benchmark,
        figure3_illustrative_example,
        num_jobs=8,
        num_executors=20,
        train_iterations=8,
        seed=0,
    )
    jcts = {name: data["average_jct"] for name, data in outputs.items()}
    print()
    print(format_scalar_table("Figure 3: average JCT (paper: FIFO 111.4, SJF 81.7, "
                              "fair 74.9, Decima 61.1 sec)", jcts))
    for name, value in jcts.items():
        benchmark.extra_info[name] = round(value, 1)

    # Shape check from §2.3: structured schedulers beat FIFO.
    assert jcts["fair"] < jcts["fifo"]
    assert jcts["decima"] < jcts["fifo"]
