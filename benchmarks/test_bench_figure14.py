"""Benchmark: Figure 14 — contribution of each key idea (ablation study)."""

from conftest import run_once

from repro.experiments import figure14_ablations


def test_bench_figure14_ablations(benchmark):
    output = run_once(
        benchmark,
        figure14_ablations,
        mean_interarrivals=(60.0, 30.0),
        num_jobs=8,
        num_executors=20,
        train_iterations=5,
        max_time=4000.0,
        seed=0,
    )
    print()
    print("Figure 14: average JCT by variant and load (interarrival time; smaller = higher load)")
    loads = sorted({load for row in output.values() for load in row}, reverse=True)
    header = "variant".ljust(26) + "".join(f"IAT {load:>6.0f}s" for load in loads)
    print(header)
    for variant, row in output.items():
        cells = "".join(f"{row.get(load, float('nan')):>10.1f}" for load in loads)
        print(variant.ljust(26) + cells)
        for load, value in row.items():
            benchmark.extra_info[f"{variant}@{load}"] = round(value, 1)

    # Structural check: every ablation variant was evaluated at every load.
    for variant in (
        "decima",
        "no_graph_embedding",
        "no_parallelism_control",
        "no_variance_reduction",
        "trained_on_batched",
        "opt_weighted_fair",
    ):
        assert set(output[variant]) == set(loads)
