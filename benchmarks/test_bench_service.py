"""Benchmark: batched policy serving vs serial dispatch, and shard scaling.

Part 1 (``test_bench_service``): eight concurrent cluster sessions stream
``decide`` requests at the request broker (through the real wire encoding and
shadow-DAG reconciliation); the batched broker answers each round with ONE
GNN forward over the merged mega-graph, the serial reference answers session
by session.  Decisions are identical either way (see ``tests/test_service.py``)
— this measures the throughput axis: fleet decisions/sec.

Part 2 (``test_bench_shard_scaling``): 64 concurrent sessions partitioned
across 1 / 2 / 4 shard *processes* (each shard a fork with its own agent +
batched broker, exactly the fleet's dispatch layout), measuring whole-fleet
decisions/sec wall-clock.  Decisions are bit-identical at any shard count
(differential pair ``sharded_vs_serial_service``) — sharding buys throughput
only, and this sweep writes the scaling curve.  Like the parallel-rollout
benchmark, the scaling *assertion* only applies on machines with at least as
many CPUs as shards; the curve is written regardless.

Both parts merge their rows into ``BENCH_service.json``.

``DECIMA_BENCH_SERVICE_MIN_SPEEDUP`` (default 2.0) sets the required batched
speedup at 8 concurrent sessions; ``DECIMA_BENCH_SHARD_MIN_SCALING``
(default 1.6) sets the required 4-shard vs 1-shard scaling at 64 sessions.
CI loosens both for noisy shared runners.
"""

import json
import multiprocessing as mp
import os
import time
from pathlib import Path

import numpy as np

from conftest import run_once

from repro.core import DecimaAgent, DecimaConfig
from repro.service import DecisionRequest, RequestBroker, SessionState, encode_observation
from repro.service.client import decode_action
from repro.service.router import shard_for_session
from repro.simulator import SchedulingEnvironment, SimulatorConfig
from repro.workloads import batched_arrivals, sample_tpch_jobs

# (concurrent sessions, timed decision rounds); jobs per session chosen so a
# session's episode comfortably outlasts the timed rounds.
SCENARIOS = ((2, 40), (8, 40))
NUM_EXECUTORS = 10
JOBS_PER_SESSION = 5

# Shard sweep: 64 sessions, hashed across 1/2/4 shard processes.
FLEET_SESSIONS = 64
FLEET_ROUNDS = 8
SHARD_COUNTS = (1, 2, 4)


def _measure(num_sessions: int, rounds: int, batched: bool) -> dict:
    agent = DecimaAgent(total_executors=NUM_EXECUTORS, config=DecimaConfig(seed=0))
    broker = RequestBroker(agent, batched=batched, greedy=True)
    environments, observations, sessions = [], [], []
    for index in range(num_sessions):
        rng = np.random.default_rng(index)
        jobs = batched_arrivals(
            sample_tpch_jobs(JOBS_PER_SESSION, rng, sizes=(2.0, 5.0))
        )
        environment = SchedulingEnvironment(
            SimulatorConfig(num_executors=NUM_EXECUTORS, seed=index)
        )
        environments.append(environment)
        observations.append(environment.reset(jobs, seed=index))
        sessions.append(SessionState(f"bench-{index}", NUM_EXECUTORS, seed=index))

    decisions = 0
    decide_seconds = 0.0
    for _ in range(rounds):
        pending = [
            index for index, observation in enumerate(observations)
            if observation is not None
        ]
        if not pending:
            break
        requests = [
            DecisionRequest(
                session=sessions[index],
                observation=sessions[index].observation_from_snapshot(
                    encode_observation(observations[index])
                ),
            )
            for index in pending
        ]
        start = time.perf_counter()
        results = broker.decide(requests)
        decide_seconds += time.perf_counter() - start
        decisions += len(results)
        for index, request, result in zip(pending, requests, results):
            encoded = request.session.encode_action(result.action)
            action = decode_action(encoded, observations[index])
            observation, _, done = environments[index].step(action)
            observations[index] = None if done else observation
    return {
        "num_sessions": num_sessions,
        "decisions": decisions,
        "decide_seconds": decide_seconds,
        "decisions_per_sec": decisions / decide_seconds if decide_seconds else float("inf"),
    }


def _best_of(num_sessions: int, rounds: int, batched: bool, repeats: int = 2) -> dict:
    """Best throughput over ``repeats`` runs (damps allocator/warm-up noise)."""
    runs = [_measure(num_sessions, rounds, batched=batched) for _ in range(repeats)]
    return max(runs, key=lambda run: run["decisions_per_sec"])


def _compare_modes():
    rows = []
    for num_sessions, rounds in SCENARIOS:
        batched = _best_of(num_sessions, rounds, batched=True)
        serial = _best_of(num_sessions, rounds, batched=False)
        assert batched["decisions"] == serial["decisions"]
        rows.append(
            {
                "num_sessions": num_sessions,
                "decisions": batched["decisions"],
                "serial_decisions_per_sec": serial["decisions_per_sec"],
                "batched_decisions_per_sec": batched["decisions_per_sec"],
                "speedup": batched["decisions_per_sec"] / serial["decisions_per_sec"],
            }
        )
    return rows


def _write_bench_artifact(update: dict) -> Path:
    """Merge ``update`` into BENCH_service.json (both tests share the file)."""
    output_dir = Path(os.environ.get("DECIMA_BENCH_OUTPUT_DIR", "."))
    artifact = output_dir / "BENCH_service.json"
    payload = {}
    if artifact.exists():
        try:
            payload = json.loads(artifact.read_text())
        except (ValueError, OSError):
            payload = {}
    payload.update(update)
    artifact.write_text(json.dumps(payload, indent=2) + "\n")
    return artifact


# ----------------------------------------------------------- shard scaling
def _fleet_shard_worker(start_event, results, shard_index, session_indices,
                        rounds):
    """One shard process: its own agent + batched broker, its session subset.

    Setup (agent build, environment resets) happens before the start barrier
    so the timed region covers only decision serving — the same accounting a
    router-fronted fleet gets from its long-lived shard servers.
    """
    agent = DecimaAgent(total_executors=NUM_EXECUTORS, config=DecimaConfig(seed=0))
    broker = RequestBroker(agent, batched=True, greedy=True)
    environments, observations, sessions = [], [], []
    for index in session_indices:
        rng = np.random.default_rng(index)
        jobs = batched_arrivals(
            sample_tpch_jobs(JOBS_PER_SESSION, rng, sizes=(2.0, 5.0))
        )
        environment = SchedulingEnvironment(
            SimulatorConfig(num_executors=NUM_EXECUTORS, seed=index)
        )
        environments.append(environment)
        observations.append(environment.reset(jobs, seed=index))
        sessions.append(SessionState(f"bench-{index}", NUM_EXECUTORS, seed=index))
    start_event.wait()
    decisions = 0
    for _ in range(rounds):
        pending = [
            position for position, observation in enumerate(observations)
            if observation is not None
        ]
        if not pending:
            break
        requests = [
            DecisionRequest(
                session=sessions[position],
                observation=sessions[position].observation_from_snapshot(
                    encode_observation(observations[position])
                ),
            )
            for position in pending
        ]
        answers = broker.decide(requests)
        decisions += len(answers)
        for position, request, result in zip(pending, requests, answers):
            encoded = request.session.encode_action(result.action)
            action = decode_action(encoded, observations[position])
            observation, _, done = environments[position].step(action)
            observations[position] = None if done else observation
    results.put((shard_index, decisions))


def _measure_fleet(num_shards: int, rounds: int = FLEET_ROUNDS) -> dict:
    """Whole-fleet decisions/sec: 64 sessions over ``num_shards`` processes."""
    context = mp.get_context("fork" if "fork" in mp.get_all_start_methods()
                             else "spawn")
    start_event = context.Event()
    results = context.Queue()
    placement = [
        [index for index in range(FLEET_SESSIONS)
         if shard_for_session(f"bench-{index}", num_shards) == shard]
        for shard in range(num_shards)
    ]
    workers = [
        context.Process(
            target=_fleet_shard_worker,
            args=(start_event, results, shard, session_indices, rounds),
            daemon=True,
        )
        for shard, session_indices in enumerate(placement)
    ]
    for worker in workers:
        worker.start()
    # Give every shard time to finish its (untimed) setup before the clock
    # starts; the event releases them all at once.
    time.sleep(0.5)
    start = time.perf_counter()
    start_event.set()
    per_shard = dict(results.get() for _ in workers)
    elapsed = time.perf_counter() - start
    for worker in workers:
        worker.join(timeout=30.0)
    decisions = sum(per_shard.values())
    return {
        "num_shards": num_shards,
        "num_sessions": FLEET_SESSIONS,
        "decisions": decisions,
        "elapsed_seconds": elapsed,
        "decisions_per_sec": decisions / elapsed if elapsed else float("inf"),
        "per_shard_decisions": [per_shard[shard] for shard in range(num_shards)],
    }


def _sweep_shards():
    rows = []
    for num_shards in SHARD_COUNTS:
        runs = [_measure_fleet(num_shards) for _ in range(2)]
        rows.append(max(runs, key=lambda run: run["decisions_per_sec"]))
    baseline = rows[0]["decisions_per_sec"]
    for row in rows:
        row["scaling_vs_1_shard"] = row["decisions_per_sec"] / baseline
    return rows


def test_bench_service(benchmark):
    rows = run_once(benchmark, _compare_modes)
    print()
    print("policy serving: cross-session batched broker vs serial dispatch")
    print(f"  {'sessions':>8} {'decisions':>9} {'serial dec/s':>13} "
          f"{'batched dec/s':>14} {'speedup':>8}")
    for row in rows:
        print(
            f"  {row['num_sessions']:>8} {row['decisions']:>9} "
            f"{row['serial_decisions_per_sec']:>13.1f} "
            f"{row['batched_decisions_per_sec']:>14.1f} {row['speedup']:>7.2f}x"
        )
        benchmark.extra_info[f"speedup_{row['num_sessions']}_sessions"] = round(
            row["speedup"], 3
        )

    artifact = _write_bench_artifact({"scenarios": rows})
    print(f"  wrote {artifact}")

    by_sessions = {row["num_sessions"]: row for row in rows}
    # DECIMA_BENCH_SERVICE_MIN_SPEEDUP loosens the bar on noisy shared runners.
    required = float(os.environ.get("DECIMA_BENCH_SERVICE_MIN_SPEEDUP", "2.0"))
    assert by_sessions[8]["speedup"] >= required, (
        f"expected >={required}x decisions/sec from the batched broker at 8 "
        f"concurrent sessions, got {by_sessions[8]['speedup']:.2f}x"
    )
    # Batching should never hurt even tiny fleets; the bar scales with the
    # same env override so noisy shared runners get the same relief.
    assert by_sessions[2]["speedup"] >= required / 2.0


def test_bench_shard_scaling(benchmark):
    rows = run_once(benchmark, _sweep_shards)
    print()
    print(f"shard scaling: {FLEET_SESSIONS} sessions across shard processes")
    print(f"  {'shards':>6} {'decisions':>9} {'elapsed s':>10} "
          f"{'fleet dec/s':>12} {'scaling':>8}")
    for row in rows:
        print(
            f"  {row['num_shards']:>6} {row['decisions']:>9} "
            f"{row['elapsed_seconds']:>10.2f} "
            f"{row['decisions_per_sec']:>12.1f} "
            f"{row['scaling_vs_1_shard']:>7.2f}x"
        )
        benchmark.extra_info[f"scaling_{row['num_shards']}_shards"] = round(
            row["scaling_vs_1_shard"], 3
        )

    cpus = os.cpu_count() or 1
    artifact = _write_bench_artifact(
        {"shard_scaling": {"num_sessions": FLEET_SESSIONS, "cpus": cpus,
                           "rows": rows}}
    )
    print(f"  wrote {artifact}")
    benchmark.extra_info["cpus"] = cpus

    by_shards = {row["num_shards"]: row for row in rows}
    # Every shard count serves the same total decision stream.
    assert len({row["decisions"] for row in rows}) == 1
    # Like the parallel-rollout benchmark, the scaling bar only applies where
    # the shards actually get cores; on fewer CPUs the curve is still written
    # (and honestly flat) but the wall-clock assertion would measure the
    # scheduler's time slicing, not the fleet.
    if cpus >= max(SHARD_COUNTS):
        # DECIMA_BENCH_SHARD_MIN_SCALING loosens the bar on noisy runners.
        required = float(os.environ.get("DECIMA_BENCH_SHARD_MIN_SCALING", "1.6"))
        assert by_shards[4]["scaling_vs_1_shard"] >= required, (
            f"expected >={required}x fleet decisions/sec at 4 shards vs 1 "
            f"shard ({FLEET_SESSIONS} sessions), got "
            f"{by_shards[4]['scaling_vs_1_shard']:.2f}x"
        )
        # 2 shards must already help (same relief valve, halved).
        assert by_shards[2]["scaling_vs_1_shard"] >= max(1.0, required / 2.0)
    else:
        print(f"  ({cpus} CPU(s) < {max(SHARD_COUNTS)} shards: scaling bar "
              f"not applied on this machine)")