"""Benchmark: cross-session batched policy serving vs serial dispatch.

Eight concurrent cluster sessions stream ``decide`` requests at the request
broker (through the real wire encoding and shadow-DAG reconciliation); the
batched broker answers each round with ONE GNN forward over the merged
mega-graph, the serial reference answers session by session.  Decisions are
identical either way (see ``tests/test_service.py``) — this measures the
throughput axis: fleet decisions/sec, written to ``BENCH_service.json``.

``DECIMA_BENCH_SERVICE_MIN_SPEEDUP`` (default 2.0) sets the required speedup
at 8 concurrent sessions; CI loosens it for noisy shared runners.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import run_once

from repro.core import DecimaAgent, DecimaConfig
from repro.service import DecisionRequest, RequestBroker, SessionState, encode_observation
from repro.service.client import decode_action
from repro.simulator import SchedulingEnvironment, SimulatorConfig
from repro.workloads import batched_arrivals, sample_tpch_jobs

# (concurrent sessions, timed decision rounds); jobs per session chosen so a
# session's episode comfortably outlasts the timed rounds.
SCENARIOS = ((2, 40), (8, 40))
NUM_EXECUTORS = 10
JOBS_PER_SESSION = 5


def _measure(num_sessions: int, rounds: int, batched: bool) -> dict:
    agent = DecimaAgent(total_executors=NUM_EXECUTORS, config=DecimaConfig(seed=0))
    broker = RequestBroker(agent, batched=batched, greedy=True)
    environments, observations, sessions = [], [], []
    for index in range(num_sessions):
        rng = np.random.default_rng(index)
        jobs = batched_arrivals(
            sample_tpch_jobs(JOBS_PER_SESSION, rng, sizes=(2.0, 5.0))
        )
        environment = SchedulingEnvironment(
            SimulatorConfig(num_executors=NUM_EXECUTORS, seed=index)
        )
        environments.append(environment)
        observations.append(environment.reset(jobs, seed=index))
        sessions.append(SessionState(f"bench-{index}", NUM_EXECUTORS, seed=index))

    decisions = 0
    decide_seconds = 0.0
    for _ in range(rounds):
        pending = [
            index for index, observation in enumerate(observations)
            if observation is not None
        ]
        if not pending:
            break
        requests = [
            DecisionRequest(
                session=sessions[index],
                observation=sessions[index].observation_from_snapshot(
                    encode_observation(observations[index])
                ),
            )
            for index in pending
        ]
        start = time.perf_counter()
        results = broker.decide(requests)
        decide_seconds += time.perf_counter() - start
        decisions += len(results)
        for index, request, result in zip(pending, requests, results):
            encoded = request.session.encode_action(result.action)
            action = decode_action(encoded, observations[index])
            observation, _, done = environments[index].step(action)
            observations[index] = None if done else observation
    return {
        "num_sessions": num_sessions,
        "decisions": decisions,
        "decide_seconds": decide_seconds,
        "decisions_per_sec": decisions / decide_seconds if decide_seconds else float("inf"),
    }


def _best_of(num_sessions: int, rounds: int, batched: bool, repeats: int = 2) -> dict:
    """Best throughput over ``repeats`` runs (damps allocator/warm-up noise)."""
    runs = [_measure(num_sessions, rounds, batched=batched) for _ in range(repeats)]
    return max(runs, key=lambda run: run["decisions_per_sec"])


def _compare_modes():
    rows = []
    for num_sessions, rounds in SCENARIOS:
        batched = _best_of(num_sessions, rounds, batched=True)
        serial = _best_of(num_sessions, rounds, batched=False)
        assert batched["decisions"] == serial["decisions"]
        rows.append(
            {
                "num_sessions": num_sessions,
                "decisions": batched["decisions"],
                "serial_decisions_per_sec": serial["decisions_per_sec"],
                "batched_decisions_per_sec": batched["decisions_per_sec"],
                "speedup": batched["decisions_per_sec"] / serial["decisions_per_sec"],
            }
        )
    return rows


def test_bench_service(benchmark):
    rows = run_once(benchmark, _compare_modes)
    print()
    print("policy serving: cross-session batched broker vs serial dispatch")
    print(f"  {'sessions':>8} {'decisions':>9} {'serial dec/s':>13} "
          f"{'batched dec/s':>14} {'speedup':>8}")
    for row in rows:
        print(
            f"  {row['num_sessions']:>8} {row['decisions']:>9} "
            f"{row['serial_decisions_per_sec']:>13.1f} "
            f"{row['batched_decisions_per_sec']:>14.1f} {row['speedup']:>7.2f}x"
        )
        benchmark.extra_info[f"speedup_{row['num_sessions']}_sessions"] = round(
            row["speedup"], 3
        )

    output_dir = Path(os.environ.get("DECIMA_BENCH_OUTPUT_DIR", "."))
    artifact = output_dir / "BENCH_service.json"
    artifact.write_text(json.dumps({"scenarios": rows}, indent=2) + "\n")
    print(f"  wrote {artifact}")

    by_sessions = {row["num_sessions"]: row for row in rows}
    # DECIMA_BENCH_SERVICE_MIN_SPEEDUP loosens the bar on noisy shared runners.
    required = float(os.environ.get("DECIMA_BENCH_SERVICE_MIN_SPEEDUP", "2.0"))
    assert by_sessions[8]["speedup"] >= required, (
        f"expected >={required}x decisions/sec from the batched broker at 8 "
        f"concurrent sessions, got {by_sessions[8]['speedup']:.2f}x"
    )
    # Batching should never hurt even tiny fleets; the bar scales with the
    # same env override so noisy shared runners get the same relief.
    assert by_sessions[2]["speedup"] >= required / 2.0