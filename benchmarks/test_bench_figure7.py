"""Benchmark: Figure 7 — reward variance caused by different job-arrival sequences."""

import numpy as np

from conftest import run_once

from repro.experiments import figure7_arrival_variance, format_series


def test_bench_figure7_arrival_variance(benchmark):
    series = run_once(
        benchmark,
        figure7_arrival_variance,
        num_sequences=2,
        num_jobs=30,
        mean_interarrival=10.0,
        num_executors=50,
        seed=0,
    )
    print()
    print(format_series("Figure 7: jobs-in-system penalty under two arrival sequences", series))
    peaks = {name: max(v for _, v in points) for name, points in series.items()}
    for name, peak in peaks.items():
        benchmark.extra_info[f"{name} peak penalty"] = peak
        print(f"{name}: peak penalty {peak:.0f} jobs in system")

    # Shape check: the two sequences expose visibly different penalties even
    # under the same scheduler — the variance the input-dependent baseline removes.
    values = list(peaks.values())
    assert not np.isclose(values[0], values[1], rtol=0.01)
