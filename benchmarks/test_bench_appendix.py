"""Benchmarks: appendix experiments — Figures 16, 18, 19, 22, 23 and Table 3."""

import numpy as np

from conftest import run_once

from repro.experiments import (
    figure16_appendix_example,
    figure18_simulator_fidelity,
    figure19_expressiveness,
    figure22_optimality,
    figure23_incomplete_information,
    format_scalar_table,
    table3_scale_generalization,
)


def test_bench_figure16_dependency_aware_example(benchmark):
    outputs = run_once(benchmark, figure16_appendix_example, epsilon=0.05)
    print()
    print(format_scalar_table(
        "Figure 16 (Appendix A): toy join DAG makespans "
        "(paper: critical path 28+3e, optimal 20+3e)", outputs))
    benchmark.extra_info.update({k: round(v, 2) for k, v in outputs.items()})
    assert outputs["optimal_plan"] < outputs["critical_path"]
    np.testing.assert_allclose(
        outputs["critical_path"], outputs["theoretical_critical_path"], rtol=0.05
    )
    np.testing.assert_allclose(
        outputs["optimal_plan"], outputs["theoretical_optimal"], rtol=0.05
    )


def test_bench_figure18_simulator_fidelity(benchmark):
    errors = run_once(
        benchmark,
        figure18_simulator_fidelity,
        query_ids=(1, 4, 9, 13, 17, 21),
        size_gb=10.0,
        num_executors=20,
        seed=0,
    )
    isolated = np.array(list(errors["isolated_relative_error"].values()))
    shared = np.array(list(errors["shared_relative_error"].values()))
    print()
    print("Figure 18 (Appendix D): run-to-run relative error of the simulator")
    print(f"  isolated jobs: mean {isolated.mean():.1%}, p95 {np.percentile(isolated, 95):.1%} "
          "(paper: mean <= 5%)")
    print(f"  shared cluster: mean {shared.mean():.1%}, p95 {np.percentile(shared, 95):.1%} "
          "(paper: mean <= 9%)")
    benchmark.extra_info["isolated mean error"] = float(isolated.mean())
    benchmark.extra_info["shared mean error"] = float(shared.mean())
    assert isolated.mean() < 0.25
    assert shared.mean() < 0.5


def test_bench_figure19_expressiveness(benchmark):
    curves = run_once(
        benchmark,
        figure19_expressiveness,
        num_train_graphs=40,
        num_test_graphs=25,
        num_iterations=350,
        seed=0,
    )
    print()
    print("Figure 19 (Appendix E): critical-path identification accuracy over training")
    for name, accuracies in curves.items():
        rendered = ", ".join(f"{a:.2f}" for a in accuracies)
        print(f"  {name}: {rendered}")
        benchmark.extra_info[f"{name} final accuracy"] = accuracies[-1]
    assert set(curves) == {"two_level_aggregation", "single_aggregation"}


def test_bench_figure22_optimality(benchmark):
    outputs = run_once(
        benchmark,
        figure22_optimality,
        num_jobs=4,
        num_executors=12,
        train_iterations=5,
        seed=0,
    )
    print()
    print(format_scalar_table(
        "Figure 22 (Appendix H): Decima vs exhaustive job-ordering search "
        "(simplified environment)", outputs))
    benchmark.extra_info.update({k: round(v, 1) for k, v in outputs.items()})
    # The exhaustive search is the (near-)optimal reference: nothing beats it by much.
    assert outputs["exhaustive_search"] <= outputs["sjf_cp"] + 1e-6
    assert outputs["exhaustive_search"] <= outputs["opt_weighted_fair"] + 1e-6


def test_bench_figure23_incomplete_information(benchmark):
    outputs = run_once(
        benchmark,
        figure23_incomplete_information,
        num_jobs=8,
        num_executors=20,
        train_iterations=4,
        seed=0,
    )
    print()
    print(format_scalar_table(
        "Figure 23 (Appendix J): Decima without task-duration estimates", outputs))
    benchmark.extra_info.update({k: round(v, 1) for k, v in outputs.items()})
    assert set(outputs) == {"opt_weighted_fair", "decima", "decima_no_duration"}


def test_bench_table3_scale_generalization(benchmark):
    outputs = run_once(
        benchmark,
        table3_scale_generalization,
        test_num_jobs=10,
        test_num_executors=20,
        job_scale_down=5,
        executor_scale_down=4,
        mean_interarrival=35.0,
        train_iterations=3,
        seed=0,
    )
    print()
    print(format_scalar_table(
        "Table 3 (Appendix I): generalisation across cluster size / job count "
        "(paper: within 3-7% of the agent trained on the test setting)", outputs))
    benchmark.extra_info.update({k: round(v, 1) for k, v in outputs.items()})
    assert set(outputs) == {
        "trained_on_test_setting",
        "trained_with_fewer_jobs",
        "trained_on_smaller_cluster",
    }
