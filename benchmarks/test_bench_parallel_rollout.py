"""Benchmark: parallel rollout workers vs. serial episode collection (§5.3).

The paper trains with 16 parallel rollout workers; this benchmark measures
the wall-clock speedup of :class:`ParallelRolloutBackend` over the serial
path on an identical training workload.  The ≥1.5× speedup assertion only
applies on a multi-core machine (4+ CPUs) — on fewer cores the benchmark
still runs both paths and reports the ratio, since process overhead can make
parallel collection slower than serial when the workers share one core.
"""

import os
import time

from conftest import run_once

from repro.core import (
    DecimaAgent,
    DecimaConfig,
    ParallelRolloutBackend,
    ReinforceTrainer,
    SerialRolloutBackend,
    TrainingConfig,
)
from repro.experiments.training import tpch_batch_factory
from repro.simulator import SimulatorConfig

NUM_WORKERS = 4
TRAINING = dict(
    num_iterations=2,
    episodes_per_iteration=4,
    initial_episode_time=1500.0,
    max_actions_per_episode=250,
    seed=0,
)


def _train(backend):
    config = SimulatorConfig(num_executors=10, seed=0)
    agent = DecimaAgent(total_executors=10, config=DecimaConfig(seed=0))
    trainer = ReinforceTrainer(
        agent,
        config,
        tpch_batch_factory(4, sizes=(2.0, 5.0)),
        TrainingConfig(**TRAINING),
        backend=backend,
    )
    with trainer:
        start = time.perf_counter()
        history = trainer.train()
        elapsed = time.perf_counter() - start
    return history, elapsed


def _compare_backends():
    serial_history, serial_time = _train(SerialRolloutBackend())
    parallel_history, parallel_time = _train(
        ParallelRolloutBackend(num_workers=NUM_WORKERS, seed=0)
    )
    return {
        "serial_time": serial_time,
        "parallel_time": parallel_time,
        "speedup": serial_time / parallel_time,
        "serial_history": serial_history,
        "parallel_history": parallel_history,
    }


def test_bench_parallel_rollout_speedup(benchmark):
    data = run_once(benchmark, _compare_backends)
    cpus = os.cpu_count() or 1
    print()
    print(f"Parallel rollout workers ({NUM_WORKERS} workers, {cpus} CPUs, "
          f"{TRAINING['num_iterations']}x{TRAINING['episodes_per_iteration']} episodes)")
    print(f"  serial   iteration time: {data['serial_time'] / TRAINING['num_iterations']:.2f} s")
    print(f"  parallel iteration time: {data['parallel_time'] / TRAINING['num_iterations']:.2f} s")
    print(f"  speedup: {data['speedup']:.2f}x (paper trains with 16 workers)")
    benchmark.extra_info["speedup"] = round(data["speedup"], 3)
    benchmark.extra_info["cpus"] = cpus

    # Same shape and semantics regardless of the backend.
    serial, parallel = data["serial_history"], data["parallel_history"]
    assert len(parallel.iterations) == len(serial.iterations)
    assert parallel.rewards().shape == serial.rewards().shape
    assert all(s.mean_num_actions > 0 for s in parallel.iterations)

    if cpus >= NUM_WORKERS:
        # DECIMA_BENCH_MIN_SPEEDUP loosens the bar on noisy shared runners (CI).
        required = float(os.environ.get("DECIMA_BENCH_MIN_SPEEDUP", "1.5"))
        assert data["speedup"] >= required, (
            f"expected >={required}x speedup with {NUM_WORKERS} workers on {cpus} CPUs, "
            f"got {data['speedup']:.2f}x"
        )
