"""Benchmark: Figure 11 — multi-resource packing (Alibaba-like trace and TPC-H).

The module also feeds Figures 12, 20 and 21 (executor profiles and time
series), which reuse the same simulation outputs.
"""

import pytest

from conftest import run_once

from repro.experiments import (
    figure11_multi_resource,
    figure12_executor_profile,
    figure20_multi_resource_timeseries,
    format_scalar_table,
)


@pytest.fixture(scope="module")
def alibaba_results():
    return figure11_multi_resource(
        workload="alibaba",
        num_jobs=8,
        total_executors=16,
        mean_interarrival=40.0,
        train_iterations=4,
        seed=0,
    )


def test_bench_figure11a_industrial_trace(benchmark, alibaba_results):
    # The heavy lifting happens in the module fixture; time one fresh TPC-H run.
    tpch_results = run_once(
        benchmark,
        figure11_multi_resource,
        workload="tpch",
        num_jobs=8,
        total_executors=16,
        mean_interarrival=40.0,
        train_iterations=4,
        seed=0,
    )
    for title, results in (
        ("Figure 11a: industrial trace (paper: Decima 32% below Graphene*)", alibaba_results),
        ("Figure 11b: TPC-H workload (paper: Decima 43% below Graphene*)", tpch_results),
    ):
        jcts = {name: data["average_jct"] for name, data in results.items()}
        print()
        print(format_scalar_table(title, jcts))
        for name, value in jcts.items():
            benchmark.extra_info[f"{title.split(':')[0]} {name}"] = round(value, 1)
        assert all(value > 0 for value in jcts.values())


def test_bench_figure12_executor_profile(benchmark, alibaba_results):
    profile = run_once(benchmark, figure12_executor_profile, alibaba_results)
    print()
    print("Figure 12: Decima vs Graphene* profiles")
    for bin_name, ratio in profile["jct_ratio_by_work_bin"].items():
        print(f"  JCT ratio (Decima/Graphene*) for jobs with {bin_name}: {ratio:.2f}")
    print(f"  Large-executor task count on small jobs: Decima "
          f"{profile['decima_large_executor_tasks']:.0f} vs Graphene* "
          f"{profile['graphene_large_executor_tasks']:.0f} "
          f"(ratio {profile['large_executor_usage_ratio']:.2f}; paper: 1.39)")
    benchmark.extra_info["large_executor_usage_ratio"] = profile["large_executor_usage_ratio"]


def test_bench_figure20_21_multi_resource_timeseries(benchmark, alibaba_results):
    analysis = run_once(benchmark, figure20_multi_resource_timeseries, alibaba_results)
    print()
    print("Figure 20/21: multi-resource time series (Appendix G)")
    for name, data in analysis.items():
        peak = max((count for _, count in data["concurrency"]), default=0)
        mean_executors = (
            sum(data["executors_per_job"].values()) / max(len(data["executors_per_job"]), 1)
        )
        print(f"  {name}: peak concurrent jobs {peak}, mean executors per job {mean_executors:.1f}")
        benchmark.extra_info[f"{name} peak concurrency"] = peak
    assert "decima" in analysis and "graphene" in analysis
