"""Benchmark: Figure 2 — job runtime vs. degree of parallelism for TPC-H queries."""

from conftest import run_once

from repro.experiments import figure2_parallelism_curves, format_series


def test_bench_figure2_parallelism_curves(benchmark):
    curves = run_once(benchmark, figure2_parallelism_curves, max_parallelism=100)

    print()
    print(format_series("Figure 2: runtime vs parallelism", curves))
    for name, series in curves.items():
        best_runtime = min(runtime for _, runtime in series)
        sweet_spot = next(p for p, runtime in series if runtime <= 1.05 * best_runtime)
        benchmark.extra_info[f"{name} sweet spot"] = sweet_spot
        print(f"{name}: ~5%-optimal at {sweet_spot} parallel tasks "
              f"(runtime {best_runtime:.0f}s vs {series[0][1]:.0f}s serial)")

    # Shape check: the small input saturates at lower parallelism than the large one.
    def sweet(name):
        series = curves[name]
        best = min(r for _, r in series)
        return next(p for p, r in series if r <= 1.05 * best)

    assert sweet("Q9, 2 GB") < sweet("Q9, 100 GB")
