"""Benchmark: sparse frontier message passing + GraphCache vs the dense hot path.

Every scheduling decision calls ``DecimaAgent.act``; the dense oracle rebuilds
all GNN inputs from scratch (per-node Python loops, an O(N²) adjacency) and
runs message passing as full-width O(N²·D) matmuls, while the sparse path
reuses cached graph structure, serves features from the delta path and runs
the GNN on arena buffers, touching only each height frontier (§5.1, Fig. 5a).
This benchmark measures ``act()`` steps/sec at 10/50/200 concurrent jobs for
both paths on identical seeded episodes — plus a sparse-only 500-job scale
point (~6,000 nodes, beyond the dense oracle's O(N²) reach) — and writes the
results to ``BENCH_gnn_inference.json`` so CI can track the perf trajectory.

``DECIMA_BENCH_GNN_MIN_SPEEDUP`` (default 2.0) sets the required speedup at 50
concurrent jobs; CI loosens it for noisy shared runners.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import run_once

from repro.core import DecimaAgent, DecimaConfig
from repro.simulator import SchedulingEnvironment, SimulatorConfig
from repro.workloads import batched_arrivals, sample_tpch_jobs

# (concurrent jobs, timed act() steps): fewer steps at larger sizes keeps the
# dense oracle affordable — 200 jobs is ~2,500 nodes, i.e. a 2,500² adjacency
# rebuild per step on the dense path.
SCENARIOS = ((10, 120), (50, 60), (200, 20))
# Sparse-only scale point: ~6,000 nodes is out of reach for the dense oracle
# (a 6,000² float adjacency per step), so no speedup is recorded there — the
# row tracks the absolute steps/sec of the delta+arena hot path at scale.
SPARSE_ONLY_SCENARIOS = ((500, 10),)
NUM_EXECUTORS = 20


def _measure(num_jobs: int, steps: int, sparse: bool) -> dict:
    """Steps/sec of ``act()`` over one seeded greedy episode prefix."""
    rng = np.random.default_rng(0)
    jobs = batched_arrivals(sample_tpch_jobs(num_jobs, rng, sizes=(2.0, 5.0)))
    environment = SchedulingEnvironment(
        SimulatorConfig(num_executors=NUM_EXECUTORS, seed=0)
    )
    agent = DecimaAgent(
        total_executors=NUM_EXECUTORS,
        config=DecimaConfig(
            seed=0, sparse_message_passing=sparse, use_graph_cache=sparse
        ),
    )
    agent.reset()
    observation = environment.reset(jobs, seed=0)
    act_rng = np.random.default_rng(1)
    num_nodes = sum(job.num_nodes for job in observation.job_dags)

    act_seconds = 0.0
    actions = 0
    done = False
    while not done and actions < steps:
        start = time.perf_counter()
        action, _ = agent.act(observation, rng=act_rng, greedy=True)
        act_seconds += time.perf_counter() - start
        observation, _, done = environment.step(action)
        actions += 1
    return {
        "num_jobs": num_jobs,
        "num_nodes": num_nodes,
        "actions": actions,
        "act_seconds": act_seconds,
        "steps_per_sec": actions / act_seconds if act_seconds else float("inf"),
    }


def _compare_paths():
    results = []
    for num_jobs, steps in SCENARIOS:
        sparse = _measure(num_jobs, steps, sparse=True)
        dense = _measure(num_jobs, steps, sparse=False)
        results.append(
            {
                "num_jobs": num_jobs,
                "num_nodes": sparse["num_nodes"],
                "actions": sparse["actions"],
                "sparse_steps_per_sec": sparse["steps_per_sec"],
                "dense_steps_per_sec": dense["steps_per_sec"],
                "speedup": sparse["steps_per_sec"] / dense["steps_per_sec"],
            }
        )
    for num_jobs, steps in SPARSE_ONLY_SCENARIOS:
        sparse = _measure(num_jobs, steps, sparse=True)
        results.append(
            {
                "num_jobs": num_jobs,
                "num_nodes": sparse["num_nodes"],
                "actions": sparse["actions"],
                "sparse_steps_per_sec": sparse["steps_per_sec"],
                "dense_steps_per_sec": None,
                "speedup": None,
            }
        )
    return results


def test_bench_gnn_inference(benchmark):
    rows = run_once(benchmark, _compare_paths)
    print()
    print("act() inference: sparse frontier + GraphCache vs dense oracle")
    print(f"  {'jobs':>5} {'nodes':>6} {'dense steps/s':>14} {'sparse steps/s':>15} {'speedup':>8}")
    for row in rows:
        if row["speedup"] is None:
            print(
                f"  {row['num_jobs']:>5} {row['num_nodes']:>6} "
                f"{'(skipped)':>14} {row['sparse_steps_per_sec']:>15.1f} "
                f"{'—':>8}"
            )
            continue
        print(
            f"  {row['num_jobs']:>5} {row['num_nodes']:>6} "
            f"{row['dense_steps_per_sec']:>14.1f} {row['sparse_steps_per_sec']:>15.1f} "
            f"{row['speedup']:>7.2f}x"
        )
        benchmark.extra_info[f"speedup_{row['num_jobs']}_jobs"] = round(row["speedup"], 3)

    output_dir = Path(os.environ.get("DECIMA_BENCH_OUTPUT_DIR", "."))
    artifact = output_dir / "BENCH_gnn_inference.json"
    artifact.write_text(json.dumps({"scenarios": rows}, indent=2) + "\n")
    print(f"  wrote {artifact}")

    by_jobs = {row["num_jobs"]: row for row in rows}
    # DECIMA_BENCH_GNN_MIN_SPEEDUP loosens the bar on noisy shared runners (CI).
    required = float(os.environ.get("DECIMA_BENCH_GNN_MIN_SPEEDUP", "2.0"))
    assert by_jobs[50]["speedup"] >= required, (
        f"expected >={required}x act() speedup at 50 concurrent jobs, "
        f"got {by_jobs[50]['speedup']:.2f}x"
    )
    # The win must grow with scale (the dense path is O(N²) per step); the
    # 0.8 factor absorbs timing noise in the short 200-job run on shared
    # runners, where only 20 actions are timed.
    assert by_jobs[200]["speedup"] > 0.8 * by_jobs[50]["speedup"]
    assert by_jobs[200]["speedup"] >= required
