"""Benchmark: Figure 15 — training behaviour of parallelism encodings and scheduling delay."""

import numpy as np

from conftest import run_once

from repro.experiments import figure15a_learning_curves, figure15b_scheduling_delay


def test_bench_figure15a_learning_curves(benchmark):
    curves = run_once(
        benchmark,
        figure15a_learning_curves,
        num_iterations=6,
        num_jobs=5,
        num_executors=12,
        seed=0,
    )
    print()
    print("Figure 15a: total episode reward per training iteration (higher is better)")
    for name, rewards in curves.items():
        rendered = ", ".join(f"{reward:.2f}" for reward in rewards)
        print(f"  {name}: {rendered}")
        benchmark.extra_info[f"{name} final reward"] = round(rewards[-1], 3)
    assert set(curves) == {"decima", "limit_one_hot", "no_parallelism_control"}
    assert all(len(rewards) == 6 for rewards in curves.values())


def test_bench_figure15b_scheduling_delay(benchmark):
    data = run_once(
        benchmark,
        figure15b_scheduling_delay,
        num_jobs=10,
        mean_interarrival=40.0,
        num_executors=20,
        train_iterations=3,
        seed=0,
    )
    delays = np.array(data["scheduling_delays"])
    intervals = np.array(data["event_intervals"])
    print()
    print("Figure 15b: scheduling delay vs. interval between scheduling events")
    print(f"  decision latency: median {np.median(delays) * 1e3:.1f} ms, "
          f"p95 {np.percentile(delays, 95) * 1e3:.1f} ms (paper: < 15 ms)")
    print(f"  event interval:   median {np.median(intervals):.2f} s, "
          f"p95 {np.percentile(intervals, 95):.2f} s (paper: seconds)")
    benchmark.extra_info["median delay ms"] = float(np.median(delays) * 1e3)
    benchmark.extra_info["median interval s"] = float(np.median(intervals))

    # Shape check: decisions are much faster than the time between events.
    assert np.median(delays) < np.median(intervals)
