"""Shared configuration for the benchmark harness.

Every benchmark regenerates one figure or table of the paper on a scaled-down
workload (small job counts, few training iterations) so the whole harness runs
on a laptop in minutes.  The printed rows/series follow the paper's figures;
EXPERIMENTS.md records the measured values next to the paper's.
"""

import pathlib
import sys

import pytest

_BENCH_DIR = pathlib.Path(__file__).parent.resolve()


def pytest_configure(config):
    # Benchmarks print the reproduced rows/series; make sure they are visible
    # even when pytest capture is on by flushing stdout at the end of each run.
    sys.stdout.flush()


def pytest_collection_modifyitems(items):
    # Everything under benchmarks/ is a performance benchmark: tag it with the
    # registered ``bench`` marker so ``-m "not bench"`` deselects the lot.
    # A non-root conftest hook still sees the whole session's items, so scope
    # the marker to this directory.
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
