"""Benchmark: Figure 13 — learned policies under different objectives/environments."""

from conftest import run_once

from repro.experiments import figure13_objectives, format_scalar_table


def test_bench_figure13_objectives(benchmark):
    outputs = run_once(
        benchmark,
        figure13_objectives,
        num_jobs=6,
        num_executors=12,
        train_iterations=4,
        seed=0,
    )
    jcts = {name: data["average_jct"] for name, data in outputs.items()}
    makespans = {name: data["makespan"] for name, data in outputs.items()}
    print()
    print(format_scalar_table(
        "Figure 13: average JCT by objective (paper: 67.3 / 61.4 / 74.5 sec)", jcts))
    print()
    print(format_scalar_table(
        "Figure 13: makespan by objective (paper: 119.6 / 114.3 / 102.1 sec)", makespans))
    for name in outputs:
        benchmark.extra_info[f"{name} jct"] = round(jcts[name], 1)
        benchmark.extra_info[f"{name} makespan"] = round(makespans[name], 1)
    assert set(outputs) == {"avg_jct", "avg_jct_free_motion", "makespan"}
