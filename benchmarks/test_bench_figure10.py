"""Benchmark: Figure 10 — time-series analysis of continuous TPC-H arrivals."""

import numpy as np

from conftest import run_once

from repro.experiments import figure10_time_series, format_scalar_table


def test_bench_figure10_time_series(benchmark):
    analysis = run_once(
        benchmark,
        figure10_time_series,
        num_jobs=15,
        mean_interarrival=35.0,
        num_executors=20,
        train_iterations=4,
        seed=0,
    )
    print()
    jcts = {name: data["average_jct"] for name, data in analysis.items()}
    print(format_scalar_table("Figure 10: average JCT (time-series run)", jcts))
    for name, data in analysis.items():
        concurrency = [count for _, count in data["concurrency"]]
        executed = sum(data["executed_work"].values())
        executors = data["executors_per_job"]
        print(f"{name}: peak concurrent jobs {max(concurrency)}, "
              f"mean {np.mean(concurrency):.1f}; executed work {executed:.0f} task-s; "
              f"mean executors/job {np.mean(list(executors.values())):.1f}")
        benchmark.extra_info[f"{name} peak concurrency"] = max(concurrency)
        benchmark.extra_info[f"{name} executed work"] = round(executed)

    # Fig. 10c/d shape: both schedulers complete the workload; the comparison
    # data (JCT vs work scatter and executor counts) is present for both.
    for data in analysis.values():
        assert data["jct_vs_work"]
        assert data["executors_per_job"]
