"""Benchmark: Figure 9 — batched and continuous TPC-H arrivals, Decima vs all baselines."""

from conftest import run_once

from repro.experiments import (
    figure9a_batched_arrivals,
    figure9b_continuous_arrivals,
    format_cdf_summary,
    format_scalar_table,
)


def test_bench_figure9a_batched_arrivals(benchmark):
    jcts = run_once(
        benchmark,
        figure9a_batched_arrivals,
        num_experiments=2,
        num_jobs=8,
        num_executors=20,
        train_iterations=12,
        seed=0,
    )
    print()
    print(format_cdf_summary(
        "Figure 9a: average JCT over random 10-job batches "
        "(paper: Decima >= 21% better than the best heuristic)", jcts))
    means = {name: sum(values) / len(values) for name, values in jcts.items()}
    for name, value in means.items():
        benchmark.extra_info[name] = round(value, 1)

    # Shape checks from §7.2: fair beats FIFO and naive weighted fair.  With
    # the shipped (tiny) training budget Decima is only required to beat the
    # weakest baseline; longer training closes the gap to the tuned heuristic
    # (see EXPERIMENTS.md).
    assert means["fair"] < means["fifo"]
    assert means["fair"] < means["naive_weighted_fair"]
    assert means["decima"] < means["naive_weighted_fair"]


def test_bench_figure9b_continuous_arrivals(benchmark):
    jcts = run_once(
        benchmark,
        figure9b_continuous_arrivals,
        num_jobs=15,
        mean_interarrival=35.0,
        num_executors=20,
        train_iterations=5,
        seed=0,
    )
    print()
    print(format_scalar_table(
        "Figure 9b: average JCT with continuous (Poisson) arrivals "
        "(paper: Decima 29% below opt. weighted fair)", jcts))
    for name, value in jcts.items():
        benchmark.extra_info[name] = round(value, 1)
    assert jcts["decima"] > 0
