"""Benchmark: Table 2 — generalisation of Decima across job interarrival times."""

from conftest import run_once

from repro.experiments import table2_generalization


def test_bench_table2_generalization(benchmark):
    rows = run_once(
        benchmark,
        table2_generalization,
        test_interarrival=35.0,
        anti_skewed_interarrival=70.0,
        mixed_interarrivals=(30.0, 45.0, 60.0, 70.0),
        num_jobs=10,
        num_executors=20,
        train_iterations=3,
        num_test_sequences=2,
        seed=0,
    )
    print()
    print("Table 2: average JCT on the unseen 35 s-interarrival workload "
          "(paper: 91.2 / 65.4 / 104.8 / 82.3 / 76.6 sec)")
    for name, stats in rows.items():
        print(f"  {name:<32} {stats['mean_jct']:8.1f} ± {stats['std_jct']:.1f} sec")
        benchmark.extra_info[name] = round(stats["mean_jct"], 1)

    expected_rows = {
        "opt_weighted_fair",
        "decima_trained_on_test",
        "decima_anti_skewed",
        "decima_mixed",
        "decima_mixed_with_hint",
    }
    assert set(rows) == expected_rows
    assert all(stats["mean_jct"] > 0 for stats in rows.values())
