"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, masked_softmax, segment_sum, softmax
from repro.simulator import (
    DurationModelConfig,
    SchedulingEnvironment,
    SimulatorConfig,
    critical_path_value,
    topological_order,
)
from repro.simulator.environment import Action
from repro.workloads import ScalingProfile, estimated_runtime, random_job

# Hypothesis exploration makes this the longest module in the suite; the
# tier-1 CI matrix deselects it (-m "not slow") and the full-suite job on
# main pushes runs it.
pytestmark = pytest.mark.slow

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=6),
    elements=st.floats(-10, 10, allow_nan=False),
)


class TestAutogradProperties:
    @SETTINGS
    @given(finite_arrays)
    def test_sum_gradient_is_ones(self, data):
        x = Tensor(data, requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, np.ones_like(data))

    @SETTINGS
    @given(finite_arrays, finite_arrays)
    def test_addition_is_commutative(self, a, b):
        if a.shape != b.shape:
            return
        assert np.allclose((Tensor(a) + Tensor(b)).data, (Tensor(b) + Tensor(a)).data)

    @SETTINGS
    @given(hnp.arrays(dtype=np.float64, shape=st.integers(1, 8),
                      elements=st.floats(-20, 20, allow_nan=False)))
    def test_softmax_is_a_distribution(self, logits):
        probs = softmax(Tensor(logits)).data
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(probs >= 0)

    @SETTINGS
    @given(
        hnp.arrays(dtype=np.float64, shape=st.integers(2, 8),
                   elements=st.floats(-20, 20, allow_nan=False)),
        st.data(),
    )
    def test_masked_softmax_zeroes_masked_entries(self, logits, data):
        mask = np.array(
            data.draw(st.lists(st.booleans(), min_size=len(logits), max_size=len(logits)))
        )
        if not mask.any():
            mask[0] = True
        probs = masked_softmax(Tensor(logits), mask).data
        assert np.all(probs[~mask] < 1e-8)
        assert probs.sum() == pytest.approx(1.0, abs=1e-8)

    @SETTINGS
    @given(
        hnp.arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 10), st.integers(1, 4)),
                   elements=st.floats(-5, 5, allow_nan=False)),
        st.data(),
    )
    def test_segment_sum_conserves_total(self, matrix, data):
        num_segments = data.draw(st.integers(1, 4))
        ids = np.array(
            data.draw(
                st.lists(
                    st.integers(0, num_segments - 1),
                    min_size=matrix.shape[0],
                    max_size=matrix.shape[0],
                )
            )
        )
        out = segment_sum(Tensor(matrix), ids, num_segments).data
        assert np.allclose(out.sum(axis=0), matrix.sum(axis=0))


class TestDagProperties:
    @SETTINGS
    @given(st.integers(2, 12), st.integers(0, 10_000))
    def test_random_jobs_are_acyclic_and_connected_enough(self, num_nodes, seed):
        job = random_job(num_nodes, np.random.default_rng(seed))
        order = topological_order(job.nodes)
        assert len(order) == num_nodes
        positions = {id(node): i for i, node in enumerate(order)}
        for node in job.nodes:
            for child in node.children:
                assert positions[id(node)] < positions[id(child)]

    @SETTINGS
    @given(st.integers(2, 12), st.integers(0, 10_000))
    def test_critical_path_bounds(self, num_nodes, seed):
        job = random_job(num_nodes, np.random.default_rng(seed))
        cp = job.critical_path()
        max_single = max(node.total_work for node in job.nodes)
        assert cp >= max_single - 1e-9
        assert cp <= job.total_work + 1e-9

    @SETTINGS
    @given(st.integers(2, 10), st.integers(0, 10_000))
    def test_critical_path_decreases_down_the_dag(self, num_nodes, seed):
        job = random_job(num_nodes, np.random.default_rng(seed))
        cache = {}
        for node in job.nodes:
            for child in node.children:
                assert critical_path_value(node, cache) >= critical_path_value(child, cache)


class TestScalingProperties:
    @SETTINGS
    @given(
        st.floats(10, 10_000),
        st.floats(2, 80),
        st.floats(0.5, 0.99),
        st.floats(0.0, 1.0),
        st.integers(1, 200),
    )
    def test_runtime_is_positive_and_bounded_by_serial_time(
        self, work, sweet_spot, parallel_fraction, inflation, parallelism
    ):
        profile = ScalingProfile(sweet_spot, parallel_fraction, inflation)
        runtime = estimated_runtime(work, profile, parallelism)
        assert runtime > 0
        assert runtime <= work * profile.work_inflation(parallelism) + 1e-6

    @SETTINGS
    @given(st.floats(2, 80), st.floats(0.0, 1.0), st.integers(1, 400))
    def test_inflation_is_at_least_one_and_monotone(self, sweet_spot, rate, parallelism):
        profile = ScalingProfile(sweet_spot=sweet_spot, inflation_rate=rate)
        assert profile.work_inflation(parallelism) >= 1.0
        assert profile.work_inflation(parallelism + 5) >= profile.work_inflation(parallelism)


class TestSimulatorProperties:
    @SETTINGS
    @given(st.integers(2, 6), st.integers(1, 6), st.integers(0, 1000))
    def test_every_task_runs_exactly_once(self, num_nodes, num_executors, seed):
        rng = np.random.default_rng(seed)
        job = random_job(num_nodes, rng, max_tasks=5, max_duration=3.0)
        config = SimulatorConfig(
            num_executors=num_executors,
            duration=DurationModelConfig().simplified(),
            seed=seed,
        )
        env = SchedulingEnvironment(config)
        observation = env.reset([job])
        done = False
        while not done:
            node = observation.schedulable_nodes[0]
            observation, _, done = env.step(
                Action(node=node, parallelism_limit=num_executors)
            )
        result = env.result()
        assert result.all_finished
        assert len(result.timeline) == sum(node.num_tasks for node in job.nodes)
        # Stage dependencies are respected in the timeline.
        finish_by_stage = {}
        for record in result.timeline:
            finish_by_stage[record.node_id] = max(
                finish_by_stage.get(record.node_id, 0.0), record.finish_time
            )
        for node in job.nodes:
            for child in node.children:
                child_start = min(
                    record.start_time
                    for record in result.timeline
                    if record.node_id == child.node_id
                )
                assert child_start >= finish_by_stage[node.node_id] - 1e-9

    @SETTINGS
    @given(st.integers(2, 5), st.integers(0, 1000))
    def test_makespan_never_below_critical_path_time(self, num_nodes, seed):
        """With one task per wave per executor, the makespan is at least the
        longest chain of task durations (a lower bound on any schedule)."""
        rng = np.random.default_rng(seed)
        job = random_job(num_nodes, rng, max_tasks=3, max_duration=2.0)
        config = SimulatorConfig(
            num_executors=4, duration=DurationModelConfig().simplified(), seed=seed
        )
        env = SchedulingEnvironment(config)
        observation = env.reset([job])
        done = False
        while not done:
            node = observation.schedulable_nodes[0]
            observation, _, done = env.step(Action(node=node, parallelism_limit=4))
        result = env.result()

        def chain_duration(node):
            best_child = max((chain_duration(child) for child in node.children), default=0.0)
            return node.task_duration + best_child

        lower_bound = max(chain_duration(node) for node in job.nodes if not node.parents)
        assert result.makespan >= lower_bound - 1e-6
