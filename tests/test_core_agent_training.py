"""Unit and integration tests for the Decima agent, rollouts, REINFORCE and checkpoints."""

import numpy as np
import pytest

from repro.core import (
    DecimaAgent,
    DecimaConfig,
    FeatureConfig,
    ReinforceTrainer,
    TrainingConfig,
    collect_rollout,
    evaluate_agent,
    load_agent_weights,
    save_agent,
    time_aligned_baselines,
)
from repro.simulator import SchedulingEnvironment, SimulatorConfig, multi_resource_config
from repro.simulator.multi_resource import assign_memory_requests
from repro.workloads import batched_arrivals, sample_tpch_jobs
from repro.experiments.runner import run_scheduler_on_jobs
from repro.experiments.training import tpch_batch_factory, train_decima_agent


def small_env_and_jobs(num_jobs=3, num_executors=6, seed=0):
    rng = np.random.default_rng(seed)
    jobs = batched_arrivals(sample_tpch_jobs(num_jobs, rng, sizes=(2.0, 5.0)))
    config = SimulatorConfig(num_executors=num_executors, seed=seed)
    return SchedulingEnvironment(config), config, jobs


class TestDecimaAgent:
    def test_parameter_count_is_reported(self):
        agent = DecimaAgent(total_executors=10)
        # Same order of magnitude as the paper's 12,736 parameters.
        assert 5_000 < agent.num_parameters() < 20_000

    def test_invalid_executor_count(self):
        with pytest.raises(ValueError):
            DecimaAgent(total_executors=0)

    def test_act_returns_schedulable_node_and_valid_limit(self):
        env, _, jobs = small_env_and_jobs()
        agent = DecimaAgent(total_executors=6)
        observation = env.reset(jobs)
        action, info = agent.act(observation, rng=np.random.default_rng(0), training=True)
        assert action.node in observation.schedulable_nodes
        assert action.parallelism_limit > action.node.job.num_active_executors
        assert info is not None
        assert np.isfinite(info.log_prob.item())
        assert info.entropy.item() >= 0.0

    def test_act_without_schedulable_nodes(self):
        env, _, jobs = small_env_and_jobs()
        agent = DecimaAgent(total_executors=6)
        observation = env.reset(jobs)
        observation.schedulable_nodes = []
        action, info = agent.act(observation)
        assert action is None and info is None

    def test_greedy_schedule_is_deterministic(self):
        env, _, jobs = small_env_and_jobs()
        agent = DecimaAgent(total_executors=6, config=DecimaConfig(greedy_evaluation=True))
        observation = env.reset(jobs)
        first = agent.schedule(observation)
        second = agent.schedule(observation)
        assert first.node is second.node
        assert first.parallelism_limit == second.parallelism_limit

    def test_no_parallelism_control_uses_all_executors(self):
        env, _, jobs = small_env_and_jobs()
        agent = DecimaAgent(
            total_executors=6, config=DecimaConfig(use_parallelism_control=False)
        )
        observation = env.reset(jobs)
        action, _ = agent.act(observation, rng=np.random.default_rng(0))
        assert action.parallelism_limit == 6

    def test_limit_levels_cover_cluster(self):
        agent = DecimaAgent(total_executors=10)
        assert agent._limit_levels[0] == 1
        assert agent._limit_levels[-1] == 10

    def test_candidate_limits_exceed_current_allocation(self):
        env, _, jobs = small_env_and_jobs()
        agent = DecimaAgent(total_executors=6)
        observation = env.reset(jobs)
        job = observation.job_dags[0]
        limits = agent.candidate_limits(job)
        assert np.all(limits > job.num_active_executors)

    def test_one_hot_limit_encoding_runs(self):
        env, _, jobs = small_env_and_jobs()
        agent = DecimaAgent(total_executors=6, config=DecimaConfig(limit_value_input=False))
        observation = env.reset(jobs)
        action, info = agent.act(observation, rng=np.random.default_rng(0), training=True)
        assert action is not None and info is not None

    def test_one_hot_limit_level_index_precomputed(self):
        agent = DecimaAgent(total_executors=6, config=DecimaConfig(limit_value_input=False))
        assert agent._limit_level_index == {
            int(level): i for i, level in enumerate(agent._limit_levels)
        }
        one_hot = agent._limit_inputs(agent._limit_levels)
        assert np.array_equal(one_hot, np.eye(len(agent._limit_levels)))
        # Unknown limits fall into the last (largest) level's column.
        overflow = agent._limit_inputs(np.array([agent.total_executors + 5]))
        assert overflow[0, -1] == 1.0

    def test_interarrival_hint_requires_feature_flag(self):
        env, _, jobs = small_env_and_jobs()
        config = DecimaConfig(feature=FeatureConfig(include_interarrival_hint=True))
        agent = DecimaAgent(total_executors=6, config=config)
        agent.interarrival_hint = 45.0
        observation = env.reset(jobs)
        action, _ = agent.act(observation, rng=np.random.default_rng(0))
        assert action is not None

    def test_multi_resource_agent_picks_fitting_class(self):
        config = multi_resource_config(total_executors=8, seed=0)
        rng = np.random.default_rng(0)
        jobs = batched_arrivals(sample_tpch_jobs(2, rng, sizes=(2.0,)))
        assign_memory_requests(jobs, seed=0, low=0.3, high=0.9)
        env = SchedulingEnvironment(config)
        agent = DecimaAgent(total_executors=8, config=DecimaConfig(multi_resource=True))
        observation = env.reset(jobs)
        action, info = agent.act(observation, rng=np.random.default_rng(1), training=True)
        assert action.executor_class is not None
        assert action.executor_class.fits(action.node)

    def test_agent_completes_episode_as_scheduler(self):
        _, config, jobs = small_env_and_jobs()
        agent = DecimaAgent(total_executors=6)
        result = run_scheduler_on_jobs(agent, jobs, config=config, seed=0)
        assert result.all_finished


class TestRollout:
    def test_rollout_rewards_match_environment_total(self):
        env, _, jobs = small_env_and_jobs()
        agent = DecimaAgent(total_executors=6)
        trajectory = collect_rollout(env, agent, jobs, rng=np.random.default_rng(0), seed=1)
        assert trajectory.result is not None
        assert trajectory.total_reward == pytest.approx(trajectory.result.total_reward)
        assert trajectory.num_actions == trajectory.result.num_actions

    def test_rollout_wall_times_are_monotone(self):
        env, _, jobs = small_env_and_jobs()
        agent = DecimaAgent(total_executors=6)
        trajectory = collect_rollout(env, agent, jobs, rng=np.random.default_rng(0), seed=1)
        times = trajectory.wall_times()
        assert np.all(np.diff(times) >= 0)

    def test_max_actions_bound(self):
        env, _, jobs = small_env_and_jobs()
        agent = DecimaAgent(total_executors=6)
        trajectory = collect_rollout(
            env, agent, jobs, rng=np.random.default_rng(0), seed=1, max_actions=5
        )
        assert trajectory.num_actions <= 5


class TestTimeAlignedBaselines:
    def test_identical_episodes_yield_zero_advantage(self):
        times = [np.array([0.0, 1.0, 2.0]), np.array([0.0, 1.0, 2.0])]
        returns = [np.array([-3.0, -2.0, -1.0]), np.array([-3.0, -2.0, -1.0])]
        baselines = time_aligned_baselines(times, returns)
        for b, r in zip(baselines, returns):
            assert np.allclose(b, r)

    def test_baseline_interpolates_between_episodes(self):
        times = [np.array([0.0, 10.0]), np.array([5.0])]
        returns = [np.array([-10.0, 0.0]), np.array([-4.0])]
        baselines = time_aligned_baselines(times, returns)
        # Episode 1 at t=5 interpolates episode 0's return to -5; average with own -4 is -4.5.
        assert baselines[1][0] == pytest.approx((-5.0 + -4.0) / 2)

    def test_empty_episode_handled(self):
        baselines = time_aligned_baselines([np.array([]), np.array([1.0])], [np.array([]), np.array([-1.0])])
        assert baselines[0].size == 0
        assert baselines[1].size == 1


class TestReinforceTrainer:
    def make_trainer(self, **overrides):
        config = SimulatorConfig(num_executors=5, seed=0)
        agent = DecimaAgent(total_executors=5, config=DecimaConfig(seed=0))
        defaults = dict(
            num_iterations=2,
            episodes_per_iteration=2,
            initial_episode_time=500.0,
            max_actions_per_episode=150,
            seed=0,
        )
        defaults.update(overrides)
        trainer = ReinforceTrainer(
            agent,
            config,
            tpch_batch_factory(2, sizes=(2.0, 5.0)),
            TrainingConfig(**defaults),
        )
        return agent, trainer

    def test_training_updates_parameters(self):
        agent, trainer = self.make_trainer()
        before = [p.data.copy() for p in agent.parameters()]
        history = trainer.train()
        after = [p.data for p in agent.parameters()]
        assert len(history.iterations) == 2
        assert any(not np.allclose(b, a) for b, a in zip(before, after))

    def test_curriculum_grows_episode_time(self):
        _, trainer = self.make_trainer(
            num_iterations=1, initial_episode_time=10.0, episode_time_growth=100.0
        )
        draws_early = [trainer._episode_time(0) for _ in range(50)]
        draws_late = [trainer._episode_time(20) for _ in range(50)]
        assert np.mean(draws_late) > np.mean(draws_early)

    def test_episode_time_capped(self):
        _, trainer = self.make_trainer(
            num_iterations=1,
            initial_episode_time=10.0,
            episode_time_growth=1e9,
            max_episode_time=50.0,
        )
        draws = [trainer._episode_time(5) for _ in range(200)]
        assert np.mean(draws) < 200.0

    def test_differential_reward_toggle(self):
        agent, trainer = self.make_trainer(use_differential_reward=False)
        from repro.core.rollout import Trajectory, Transition
        from repro.core.parallel import outcome_from_trajectory
        from repro.autograd import Tensor

        episode = outcome_from_trajectory(
            Trajectory(
                transitions=[
                    Transition(Tensor(0.0), Tensor(0.0), reward=-1.0, wall_time=0.0),
                    Transition(Tensor(0.0), Tensor(0.0), reward=-2.0, wall_time=1.0),
                ]
            )
        )
        assert np.allclose(trainer._adjusted_rewards(episode), [-1.0, -2.0])
        trainer.config.use_differential_reward = True
        adjusted = trainer._adjusted_rewards(episode)
        assert adjusted[0] == pytest.approx(0.0)

    def test_history_statistics_shape(self):
        _, trainer = self.make_trainer()
        history = trainer.train()
        assert history.rewards().shape == (2,)
        stats = history.iterations[0]
        assert stats.mean_num_actions > 0
        assert stats.entropy_weight <= trainer.config.entropy_weight


class TestCheckpointsAndEvaluation:
    def test_save_and_load_roundtrip(self, tmp_path):
        agent = DecimaAgent(total_executors=6, config=DecimaConfig(seed=1))
        path = save_agent(agent, tmp_path / "model.npz")
        clone = DecimaAgent(total_executors=6, config=DecimaConfig(seed=99))
        load_agent_weights(clone, path)
        for p, q in zip(agent.parameters(), clone.parameters()):
            assert np.allclose(p.data, q.data)

    def test_load_mismatched_architecture_fails(self, tmp_path):
        agent = DecimaAgent(total_executors=6)
        path = save_agent(agent, tmp_path / "model.npz")
        other = DecimaAgent(total_executors=6, config=DecimaConfig(embedding_dim=4))
        with pytest.raises(ValueError):
            load_agent_weights(other, path)

    def test_evaluate_agent_summary(self):
        _, config, jobs = small_env_and_jobs()
        agent = DecimaAgent(total_executors=6)
        summary = evaluate_agent(agent, jobs, config, seed=0)
        assert summary["finished_jobs"] == len(jobs)
        assert summary["average_jct"] > 0

    def test_train_decima_agent_helper(self):
        config = SimulatorConfig(num_executors=5, seed=0)
        agent, history = train_decima_agent(
            config,
            tpch_batch_factory(2, sizes=(2.0,)),
            num_iterations=1,
            episodes_per_iteration=1,
            training_config=TrainingConfig(max_actions_per_episode=100, seed=0),
            seed=0,
        )
        assert agent.total_executors == 5
        assert len(history.iterations) == 1
