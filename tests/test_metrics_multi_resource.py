"""Unit tests for metrics containers and multi-resource helpers."""

import numpy as np
import pytest

from repro.simulator import (
    SimulatorConfig,
    TaskRecord,
    average_jct,
    executor_utilization,
    makespan,
    multi_resource_config,
)
from repro.simulator.multi_resource import assign_memory_requests, memory_fragmentation
from repro.schedulers import FairScheduler
from repro.workloads import batched_arrivals, chain_job, sample_tpch_jobs
from repro.experiments.runner import run_scheduler_on_jobs


def finished_job(name, arrival, completion):
    job = chain_job(1, name=name)
    job.arrival_time = arrival
    job.completion_time = completion
    return job


class TestMetrics:
    def test_average_jct(self):
        jobs = [finished_job("a", 0.0, 10.0), finished_job("b", 5.0, 10.0)]
        assert average_jct(jobs) == pytest.approx(7.5)

    def test_average_jct_requires_jobs(self):
        with pytest.raises(ValueError):
            average_jct([])

    def test_makespan(self):
        jobs = [finished_job("a", 2.0, 10.0), finished_job("b", 5.0, 30.0)]
        assert makespan(jobs) == pytest.approx(28.0)
        with pytest.raises(ValueError):
            makespan([])

    def test_executor_utilization(self):
        records = [
            TaskRecord(0, 0, "a", 0, 0.0, 5.0),
            TaskRecord(1, 0, "a", 0, 0.0, 10.0),
        ]
        assert executor_utilization(records, num_executors=2, horizon=10.0) == pytest.approx(0.75)
        assert executor_utilization([], num_executors=2) == 0.0

    def test_simulation_result_summary_and_work(self):
        rng = np.random.default_rng(0)
        jobs = batched_arrivals(sample_tpch_jobs(2, rng, sizes=(2.0,)))
        result = run_scheduler_on_jobs(
            FairScheduler(), jobs, config=SimulatorConfig(num_executors=4, seed=0), seed=0
        )
        summary = result.summary()
        assert summary["finished_jobs"] == 2
        assert summary["average_jct"] == pytest.approx(result.average_jct)
        work = result.per_job_work()
        assert set(work) == {job.name for job in result.finished_jobs}
        assert all(value > 0 for value in work.values())

    def test_job_completion_times_mapping(self):
        rng = np.random.default_rng(1)
        jobs = batched_arrivals(sample_tpch_jobs(2, rng, sizes=(2.0,)))
        result = run_scheduler_on_jobs(
            FairScheduler(), jobs, config=SimulatorConfig(num_executors=4, seed=0), seed=0
        )
        jcts = result.job_completion_times()
        assert len(jcts) == 2
        assert all(value > 0 for value in jcts.values())


class TestMultiResourceHelpers:
    def test_multi_resource_config_counts(self):
        config = multi_resource_config(total_executors=10)
        counts = [count for _, count in config.executor_classes]
        assert sum(counts) == 10
        # Four classes at 25% each, remainder on the largest class.
        assert counts == [2, 2, 2, 4]

    def test_assign_memory_requests_in_bounds(self):
        rng = np.random.default_rng(0)
        jobs = sample_tpch_jobs(3, rng, sizes=(2.0,))
        assign_memory_requests(jobs, seed=1, low=0.2, high=0.8)
        for job in jobs:
            for node in job.nodes:
                assert 0.2 <= node.mem_request <= 0.8

    def test_memory_fragmentation_bounds(self):
        config = multi_resource_config(total_executors=8, seed=0)
        rng = np.random.default_rng(2)
        jobs = batched_arrivals(sample_tpch_jobs(2, rng, sizes=(2.0,)))
        assign_memory_requests(jobs, seed=3)
        from repro.simulator import SchedulingEnvironment
        from repro.experiments.runner import run_episode, clone_jobs

        env = SchedulingEnvironment(config)
        result = run_episode(env, FairScheduler(), clone_jobs(jobs), seed=0)
        fragmentation = memory_fragmentation(result.timeline, env.executors)
        assert 0.0 <= fragmentation <= 1.0
