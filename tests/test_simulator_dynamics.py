"""Cluster-dynamics tests: executor churn events and straggler inflation.

Churn (timed ``executor_removed``/``executor_added`` events) and straggler
inflation flow through the same event heap / duration model every scheduler
uses, so these tests exercise them through full FIFO episodes as well as at
the unit level.
"""

import copy

import numpy as np
import pytest

from repro.experiments import run_episode
from repro.schedulers import FIFOScheduler
from repro.simulator import (
    DurationModelConfig,
    ExecutorChurnEvent,
    SchedulingEnvironment,
    SimulatorConfig,
    TaskDurationModel,
)
from repro.workloads import batched_arrivals, poisson_arrivals, sample_tpch_jobs


def _jobs(num_jobs=5, seed=0, sizes=(2.0, 5.0)):
    return batched_arrivals(sample_tpch_jobs(num_jobs, np.random.default_rng(seed), sizes=sizes))


class TestChurnEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ExecutorChurnEvent(time=1.0, kind="executor_exploded")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            ExecutorChurnEvent(time=-1.0, kind="executor_removed")

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            ExecutorChurnEvent(time=1.0, kind="executor_added", count=0)


class TestExecutorChurn:
    def test_removal_shrinks_active_fleet_and_jobs_still_finish(self):
        config = SimulatorConfig(
            num_executors=10,
            churn_events=(ExecutorChurnEvent(time=20.0, kind="executor_removed", count=4),),
        )
        env = SchedulingEnvironment(config)
        result = run_episode(env, FIFOScheduler(), _jobs(), seed=1)
        assert result.all_finished
        assert env.num_active_executors == 6
        # Removed executors hold no tasks and are not in the free pool.
        removed = [e for e in env.executors if e.removed]
        assert len(removed) == 4
        assert all(e.idle for e in removed)
        assert all(e.executor_id not in env.free_executor_ids for e in removed)

    def test_removal_is_graceful_no_task_is_interrupted(self):
        config = SimulatorConfig(
            num_executors=8,
            churn_events=(ExecutorChurnEvent(time=10.0, kind="executor_removed", count=7),),
        )
        env = SchedulingEnvironment(config)
        result = run_episode(env, FIFOScheduler(), _jobs(), seed=1)
        assert result.all_finished
        # Every recorded task ran to completion (positive duration), including
        # those in flight on decommissioned executors at t=10.
        assert all(record.finish_time > record.start_time for record in result.timeline)
        # Graceful drain: a removed executor may finish the one task it was
        # running when the event fired, but never picks up another — so at
        # most one of its tasks ends after the event.
        removed_ids = {e.executor_id for e in env.executors if e.removed}
        assert removed_ids
        for executor_id in removed_ids:
            post_event = [
                r
                for r in result.timeline
                if r.executor_id == executor_id and r.finish_time > 10.0
            ]
            assert len(post_event) <= 1

    def test_removal_clamps_to_keep_one_executor(self):
        config = SimulatorConfig(
            num_executors=4,
            churn_events=(ExecutorChurnEvent(time=1.0, kind="executor_removed", count=99),),
        )
        env = SchedulingEnvironment(config)
        result = run_episode(env, FIFOScheduler(), _jobs(num_jobs=3), seed=1)
        assert result.all_finished
        assert env.num_active_executors == 1

    def test_addition_grows_fleet_and_observation_reports_it(self):
        config = SimulatorConfig(
            num_executors=4,
            churn_events=(ExecutorChurnEvent(time=5.0, kind="executor_added", count=6),),
        )
        env = SchedulingEnvironment(config)
        result = run_episode(env, FIFOScheduler(), _jobs(), seed=1)
        assert result.all_finished
        assert env.num_active_executors == 10
        assert len(env.executors) == 10
        assert {e.executor_id for e in env.executors} == set(range(10))

    def test_added_executors_are_used_when_cluster_is_starved(self):
        # One executor cannot drain the batch quickly; the t=5 add event
        # brings nine more online and tasks must land on them.
        config = SimulatorConfig(
            num_executors=1,
            churn_events=(ExecutorChurnEvent(time=5.0, kind="executor_added", count=9),),
        )
        env = SchedulingEnvironment(config)
        result = run_episode(env, FIFOScheduler(), _jobs(), seed=1)
        assert result.all_finished
        used_executors = {record.executor_id for record in result.timeline}
        assert len(used_executors) > 1

    def test_fleet_restored_on_reset(self):
        config = SimulatorConfig(
            num_executors=6,
            churn_events=(ExecutorChurnEvent(time=10.0, kind="executor_removed", count=3),),
        )
        env = SchedulingEnvironment(config)
        run_episode(env, FIFOScheduler(), _jobs(), seed=1)
        assert env.num_active_executors == 3
        env.reset(_jobs(seed=2), seed=2)
        assert env.num_active_executors == 6
        assert all(not e.removed for e in env.executors)

    def test_churn_episode_is_deterministic(self):
        config = SimulatorConfig(
            num_executors=8,
            churn_events=(
                ExecutorChurnEvent(time=15.0, kind="executor_removed", count=3),
                ExecutorChurnEvent(time=60.0, kind="executor_added", count=3),
            ),
        )
        jobs = _jobs()
        first = run_episode(SchedulingEnvironment(config), FIFOScheduler(), copy.deepcopy(jobs), seed=3)
        second = run_episode(SchedulingEnvironment(config), FIFOScheduler(), copy.deepcopy(jobs), seed=3)
        assert first.job_completion_times() == second.job_completion_times()

    def test_pending_churn_events_do_not_stretch_the_episode(self):
        # The add-back at t=10_000 fires long after the last job completes;
        # the episode must end at the last completion, not the last event.
        config = SimulatorConfig(
            num_executors=10,
            churn_events=(ExecutorChurnEvent(time=10_000.0, kind="executor_added", count=5),),
        )
        baseline = SimulatorConfig(num_executors=10)
        jobs = _jobs()
        with_churn = run_episode(
            SchedulingEnvironment(config), FIFOScheduler(), copy.deepcopy(jobs), seed=1
        )
        without = run_episode(
            SchedulingEnvironment(baseline), FIFOScheduler(), copy.deepcopy(jobs), seed=1
        )
        assert with_churn.wall_time == without.wall_time

    def test_churn_under_continuous_arrivals(self):
        jobs = sample_tpch_jobs(6, np.random.default_rng(4), sizes=(2.0,))
        poisson_arrivals(jobs, 20.0, np.random.default_rng(5))
        config = SimulatorConfig(
            num_executors=6,
            churn_events=(
                ExecutorChurnEvent(time=30.0, kind="executor_removed", count=2),
                ExecutorChurnEvent(time=90.0, kind="executor_added", count=2),
            ),
        )
        result = run_episode(SchedulingEnvironment(config), FIFOScheduler(), jobs, seed=6)
        assert result.all_finished


class TestStragglerInflation:
    def test_disabled_stragglers_change_nothing(self):
        jobs = _jobs()
        base = run_episode(
            SchedulingEnvironment(SimulatorConfig(num_executors=8)),
            FIFOScheduler(),
            copy.deepcopy(jobs),
            seed=1,
        )
        explicit = run_episode(
            SchedulingEnvironment(
                SimulatorConfig(
                    num_executors=8,
                    duration=DurationModelConfig(straggler_probability=0.0),
                )
            ),
            FIFOScheduler(),
            copy.deepcopy(jobs),
            seed=1,
        )
        assert base.job_completion_times() == explicit.job_completion_times()

    def test_certain_stragglers_scale_every_duration(self):
        config = DurationModelConfig(
            enable_first_wave=False,
            enable_work_inflation=False,
            enable_noise=False,
            enable_moving_delay=False,
            straggler_probability=1.0,
            straggler_slowdown=3.0,
        )
        model = TaskDurationModel(config, seed=0)
        from repro.simulator import Node

        node = Node(0, num_tasks=4, task_duration=2.0)
        duration = model.sample_duration(node, first_wave=False, job_parallelism=1)
        assert duration == pytest.approx(6.0)

    def test_straggler_factor_bernoulli(self):
        config = DurationModelConfig(straggler_probability=0.5, straggler_slowdown=4.0)
        model = TaskDurationModel(config, seed=0)
        factors = {model.straggler_factor() for _ in range(200)}
        assert factors == {1.0, 4.0}

    def test_straggler_slowdown_below_one_is_clamped(self):
        config = DurationModelConfig(straggler_probability=1.0, straggler_slowdown=0.25)
        model = TaskDurationModel(config, seed=0)
        assert model.straggler_factor() == 1.0

    def test_custom_inflation_hook_takes_priority(self):
        config = DurationModelConfig(
            straggler_probability=1.0,
            straggler_slowdown=10.0,
            straggler_inflation=_constant_inflation,
        )
        model = TaskDurationModel(config, seed=0)
        assert model.straggler_factor() == 2.5

    def test_straggler_prone_cluster_has_larger_jct(self):
        jobs = _jobs(num_jobs=6)
        base = run_episode(
            SchedulingEnvironment(SimulatorConfig(num_executors=8)),
            FIFOScheduler(),
            copy.deepcopy(jobs),
            seed=1,
        )
        prone = run_episode(
            SchedulingEnvironment(
                SimulatorConfig(
                    num_executors=8,
                    duration=DurationModelConfig(
                        straggler_probability=0.15, straggler_slowdown=6.0
                    ),
                )
            ),
            FIFOScheduler(),
            copy.deepcopy(jobs),
            seed=1,
        )
        assert prone.average_jct > base.average_jct


def _constant_inflation(rng):
    return 2.5
