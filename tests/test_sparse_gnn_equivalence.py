"""Equivalence suite: sparse frontier message passing + GraphCache vs the dense oracle.

The sparse path and the incremental cache are pure performance work — they
must be numerically indistinguishable from the original formulation.  These
tests pin that down at three levels:

* :class:`GraphNeuralNetwork` forward values and parameter gradients match to
  1e-10 across single-job, multi-job, disconnected-DAG and single-level
  aggregation configurations;
* a :class:`GraphCache` driven through a live episode (arrivals, completions)
  always matches a from-scratch ``build_graph_features`` while rebuilding
  its structure only when the live-job set changes;
* fixed-seed rollouts and training produce identical actions and identical
  (rounded) parameter-hash fingerprints under both paths and both rollout
  backends.

The broad sparse-vs-dense / cached-vs-scratch episode coverage moved to the
differential runner (``tests/test_differential.py``, pairs
``sparse_vs_dense_gnn`` and ``cached_vs_scratch_features``);
``TestEndToEndEquivalence`` below keeps the harness-independent canaries
(sampled-rollout action identity and training-fingerprint parity).
"""

import copy

import numpy as np
import pytest

from _helpers import make_decima_agent, make_tpch_env
from repro.core import (
    DecimaAgent,
    GNNConfig,
    GraphCache,
    GraphNeuralNetwork,
    ParallelRolloutBackend,
    ReinforceTrainer,
    SerialRolloutBackend,
    TrainingConfig,
    build_graph_features,
    parameter_fingerprint,
)
from repro.core.rollout import collect_rollout
from repro.simulator import SchedulingEnvironment, SimulatorConfig
from repro.simulator.environment import Action
from repro.simulator.jobdag import JobDAG, Node
from repro.workloads import batched_arrivals, sample_tpch_jobs

# End-to-end equivalence (episodes under both backends, training-fingerprint
# parity) dominates the suite's runtime; tier-1 CI deselects it (-m "not
# slow") and the full-suite job on main pushes runs it.
pytestmark = pytest.mark.slow

TOL = 1e-10


def tpch_observation(num_jobs, num_executors=8, seed=0):
    return make_tpch_env(num_jobs=num_jobs, num_executors=num_executors, seed=seed)


def disconnected_observation():
    """A job whose DAG has two separate components plus an isolated node."""
    nodes = [Node(i, num_tasks=2 + i, task_duration=5.0 + i) for i in range(5)]
    job = JobDAG(nodes, edges=[(0, 1), (2, 3)], name="disconnected")
    env = SchedulingEnvironment(SimulatorConfig(num_executors=4, seed=0))
    return env, env.reset([job])


def paired_gnns(seed=0, **overrides):
    sparse = GraphNeuralNetwork(
        GNNConfig(sparse_message_passing=True, **overrides), np.random.default_rng(seed)
    )
    dense = GraphNeuralNetwork(
        GNNConfig(sparse_message_passing=False, **overrides), np.random.default_rng(seed)
    )
    return sparse, dense


def assert_embeddings_and_gradients_match(graph, sparse, dense):
    out_sparse = sparse(graph)
    out_dense = dense(graph)
    np.testing.assert_allclose(
        out_sparse.node_embeddings.data, out_dense.node_embeddings.data, atol=TOL, rtol=0
    )
    np.testing.assert_allclose(
        out_sparse.job_embeddings.data, out_dense.job_embeddings.data, atol=TOL, rtol=0
    )
    np.testing.assert_allclose(
        out_sparse.global_embedding.data, out_dense.global_embedding.data, atol=TOL, rtol=0
    )
    # A loss touching every output head, so gradients reach all parameters.
    weights = np.random.default_rng(7).normal(size=out_sparse.node_embeddings.shape)
    for model, out in ((sparse, out_sparse), (dense, out_dense)):
        model.zero_grad()
        loss = (out.node_embeddings * weights).sum() + out.global_embedding.sum()
        loss.backward()
    for p_sparse, p_dense in zip(sparse.parameters(), dense.parameters()):
        # Parameters unused under the current config (e.g. node_g with
        # single-level aggregation, node_f at depth 0) have no gradient in
        # either model; everything used must match.
        assert (p_sparse.grad is None) == (p_dense.grad is None)
        if p_sparse.grad is not None:
            np.testing.assert_allclose(p_sparse.grad, p_dense.grad, atol=TOL, rtol=0)


class TestSparseDenseEquivalence:
    def test_single_job(self):
        _, observation = tpch_observation(num_jobs=1)
        graph = build_graph_features(observation)
        assert_embeddings_and_gradients_match(graph, *paired_gnns())

    def test_multi_job(self):
        _, observation = tpch_observation(num_jobs=4)
        graph = build_graph_features(observation)
        assert_embeddings_and_gradients_match(graph, *paired_gnns())

    def test_disconnected_dag(self):
        _, observation = disconnected_observation()
        graph = build_graph_features(observation)
        assert_embeddings_and_gradients_match(graph, *paired_gnns())

    def test_single_level_aggregation(self):
        _, observation = tpch_observation(num_jobs=3)
        graph = build_graph_features(observation)
        assert_embeddings_and_gradients_match(
            graph, *paired_gnns(two_level_aggregation=False)
        )

    def test_depth_cap_respected(self):
        _, observation = tpch_observation(num_jobs=2)
        graph = build_graph_features(observation)
        for depth in (0, 1, 2):
            assert_embeddings_and_gradients_match(
                graph, *paired_gnns(max_message_passing_depth=depth)
            )

    def test_cached_graph_matches_scratch_graph_through_gnn(self):
        _, observation = tpch_observation(num_jobs=3)
        sparse, _ = paired_gnns()
        cached = GraphCache().features(observation)
        scratch = build_graph_features(observation)
        np.testing.assert_array_equal(cached.node_features, scratch.node_features)
        np.testing.assert_allclose(
            sparse(cached).node_embeddings.data,
            sparse(scratch).node_embeddings.data,
            atol=TOL,
            rtol=0,
        )


class TestGraphCacheProperty:
    def run_episode_comparing(self, env, observation, max_steps=200):
        """Drive an episode with a cheap deterministic policy, comparing the
        cache against a from-scratch build at every scheduling point."""
        cache = GraphCache()
        rng = np.random.default_rng(3)
        steps = 0
        transitions = 0
        previous_job_set = None
        while observation is not None and steps < max_steps:
            cached = cache.features(observation)
            scratch = build_graph_features(observation)
            np.testing.assert_array_equal(cached.node_features, scratch.node_features)
            np.testing.assert_array_equal(cached.schedulable_mask, scratch.schedulable_mask)
            np.testing.assert_array_equal(cached.node_heights, scratch.node_heights)
            np.testing.assert_array_equal(cached.job_ids, scratch.job_ids)
            np.testing.assert_array_equal(cached.adjacency, scratch.adjacency)
            assert len(cached.frontier_levels) == len(scratch.frontier_levels)
            for lhs, rhs in zip(cached.frontier_levels, scratch.frontier_levels):
                assert lhs.height == rhs.height
                np.testing.assert_array_equal(lhs.target_rows, rhs.target_rows)
                np.testing.assert_array_equal(lhs.child_rows, rhs.child_rows)
                np.testing.assert_array_equal(lhs.message_rows, rhs.message_rows)
                np.testing.assert_array_equal(lhs.target_segments, rhs.target_segments)
            job_set = tuple(id(job) for job in observation.job_dags)
            if job_set != previous_job_set:
                transitions += 1
                previous_job_set = job_set

            candidates = np.flatnonzero(cached.schedulable_mask)
            node = cached.nodes[int(rng.choice(candidates))]
            observation, _, done = env.step(Action(node=node, parallelism_limit=2))
            steps += 1
            if done:
                break
        return cache, steps, transitions

    def test_cache_matches_scratch_across_arrivals_and_completions(self):
        rng = np.random.default_rng(0)
        jobs = sample_tpch_jobs(5, rng, sizes=(2.0, 5.0))
        # Staggered arrivals so the live-job set changes mid-episode.
        for index, job in enumerate(jobs):
            job.arrival_time = float(index * 40.0)
        env = SchedulingEnvironment(SimulatorConfig(num_executors=3, seed=0))
        observation = env.reset(jobs)
        cache, steps, transitions = self.run_episode_comparing(env, observation)
        assert steps > 10
        # The episode really exercised arrivals/completions...
        assert transitions > 1
        # ...and the cache rebuilt once per live-job-set change, not per step.
        assert cache.num_rebuilds == transitions
        assert cache.num_rebuilds < steps

    def test_structure_reused_between_steps(self):
        env, observation = tpch_observation(num_jobs=2, num_executors=2)
        cache = GraphCache()
        first = cache.features(observation)
        second = cache.features(env.observe())
        assert first.structure is second.structure
        assert cache.num_rebuilds == 1
        # Dynamic arrays are fresh objects each step (autograd graphs keep
        # references to them, so they must never be refreshed in place).
        assert first.node_features is not second.node_features

    def test_reset_forces_rebuild(self):
        env, observation = tpch_observation(num_jobs=2)
        cache = GraphCache()
        cache.features(observation)
        cache.reset()
        cache.features(env.observe())
        assert cache.num_rebuilds == 2


def make_agent(sparse: bool, executors: int = 8, **overrides) -> DecimaAgent:
    return make_decima_agent(
        total_executors=executors, seed=0, sparse=sparse, **overrides
    )


class TestKernelBackendEquivalence:
    """The inference data path under every kernel backend vs the oracle.

    ``numpy`` is the reference data-path backend, ``numba`` the (optional)
    compiled one — silently the numpy kernels when numba is absent — and
    ``tensor`` routes ``act()`` through the full autograd forward.  All three
    must produce identical forwards and identical sampled episodes.
    """

    @pytest.mark.parametrize("kernel_backend", ["numpy", "numba"])
    def test_forward_data_matches_tensor_forward(self, kernel_backend):
        _, observation = tpch_observation(num_jobs=3)
        graph = build_graph_features(observation)
        gnn = GraphNeuralNetwork(
            GNNConfig(sparse_message_passing=True, kernel_backend=kernel_backend),
            np.random.default_rng(0),
        )
        nodes, jobs, global_emb = gnn.forward_data(graph)
        oracle = gnn(graph)
        np.testing.assert_allclose(
            nodes, oracle.node_embeddings.data, atol=TOL, rtol=0
        )
        np.testing.assert_allclose(
            jobs, oracle.job_embeddings.data, atol=TOL, rtol=0
        )
        np.testing.assert_allclose(
            global_emb, oracle.global_embedding.data, atol=TOL, rtol=0
        )

    @pytest.mark.parametrize("kernel_backend", ["numba", "tensor"])
    def test_sampled_rollout_identical_across_backends(self, kernel_backend):
        def episode(backend):
            rng = np.random.default_rng(0)
            jobs = batched_arrivals(sample_tpch_jobs(3, rng, sizes=(2.0, 5.0)))
            env = SchedulingEnvironment(SimulatorConfig(num_executors=8, seed=0))
            agent = make_agent(True, kernel_backend=backend)
            return collect_rollout(
                env, agent, copy.deepcopy(jobs), rng=np.random.default_rng(1),
                seed=5, max_actions=120,
            )

        baseline = episode("numpy")
        other = episode(kernel_backend)
        assert baseline.num_actions == other.num_actions
        np.testing.assert_array_equal(baseline.rewards(), other.rewards())
        np.testing.assert_array_equal(baseline.wall_times(), other.wall_times())


class TestEndToEndEquivalence:
    def rollout(self, sparse: bool):
        rng = np.random.default_rng(0)
        jobs = batched_arrivals(sample_tpch_jobs(3, rng, sizes=(2.0, 5.0)))
        env = SchedulingEnvironment(SimulatorConfig(num_executors=8, seed=0))
        agent = make_agent(sparse)
        return collect_rollout(
            env, agent, copy.deepcopy(jobs), rng=np.random.default_rng(1), seed=5,
            max_actions=120,
        )

    def test_sampled_rollout_actions_identical(self):
        sparse = self.rollout(sparse=True)
        dense = self.rollout(sparse=False)
        assert sparse.num_actions == dense.num_actions
        np.testing.assert_array_equal(sparse.rewards(), dense.rewards())
        np.testing.assert_array_equal(sparse.wall_times(), dense.wall_times())

    def train_fingerprint(self, sparse: bool, backend_factory):
        agent = make_agent(sparse, executors=6)
        trainer = ReinforceTrainer(
            agent,
            SimulatorConfig(num_executors=6, seed=0),
            lambda rng: batched_arrivals(sample_tpch_jobs(2, rng, sizes=(2.0, 5.0))),
            TrainingConfig(
                num_iterations=1,
                episodes_per_iteration=2,
                initial_episode_time=500.0,
                max_actions_per_episode=80,
                seed=0,
            ),
            backend=backend_factory(),
        )
        with trainer:
            trainer.train()
        return parameter_fingerprint(agent)

    def test_training_fingerprints_match_serial_backend(self):
        assert self.train_fingerprint(True, SerialRolloutBackend) == \
            self.train_fingerprint(False, SerialRolloutBackend)

    def test_training_fingerprints_match_parallel_backend(self):
        factory = lambda: ParallelRolloutBackend(num_workers=2, seed=0)  # noqa: E731
        assert self.train_fingerprint(True, factory) == \
            self.train_fingerprint(False, factory)

    # Greedy sparse-vs-dense evaluation equivalence is now covered (more
    # thoroughly, decision by decision) by the differential runner:
    # tests/test_differential.py::TestImplementationPairs.
