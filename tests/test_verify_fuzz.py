"""Hypothesis fuzz: random small scenarios through the differential runner.

Generates throwaway :class:`ScenarioSpec` values — random job counts, arrival
processes and executor fleets (with optional churn) — and asserts that the
fast/oracle pairs stay decision-identical on every one of them.  Exploration
makes this slow; the tier-1 CI matrix deselects it (``-m "not slow"``) and
the full-suite job on main pushes runs it.
"""

from functools import partial

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.scenarios import ScenarioSpec
from repro.simulator.environment import ExecutorChurnEvent, SimulatorConfig
from repro.verify import DifferentialTask, run_pair
from repro.workloads import (
    batched_arrivals,
    bursty_arrivals,
    poisson_arrivals,
    sample_tpch_jobs,
)

pytestmark = pytest.mark.slow

SETTINGS = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _fuzz_jobs(rng, num_jobs, arrival):
    jobs = sample_tpch_jobs(num_jobs, rng, sizes=(2.0,))
    if arrival == "poisson":
        return poisson_arrivals(jobs, 30.0, rng)
    if arrival == "bursty":
        return bursty_arrivals(jobs, 30.0, rng)
    return batched_arrivals(jobs)


def fuzz_spec(num_jobs, num_executors, arrival, churn):
    churn_events = ()
    if churn and num_executors > 1:
        churn_events = (
            ExecutorChurnEvent(time=20.0, kind="executor_removed",
                               count=max(1, num_executors // 2)),
            ExecutorChurnEvent(time=60.0, kind="executor_added", count=1),
        )
    return ScenarioSpec(
        name=f"fuzz-{num_jobs}j-{num_executors}e-{arrival}{'-churn' if churn else ''}",
        description="hypothesis-generated scenario",
        job_factory=partial(_fuzz_jobs, num_jobs=num_jobs, arrival=arrival),
        simulator=SimulatorConfig(
            num_executors=num_executors, max_time=5_000.0, churn_events=churn_events
        ),
        num_jobs=num_jobs,
        tags=("fuzz",),
    )


scenario_strategy = st.builds(
    fuzz_spec,
    num_jobs=st.integers(min_value=1, max_value=3),
    num_executors=st.integers(min_value=2, max_value=6),
    arrival=st.sampled_from(["batched", "poisson", "bursty"]),
    churn=st.booleans(),
)


class TestFuzzedDifferentials:
    @SETTINGS
    @given(spec=scenario_strategy, seed=st.integers(min_value=0, max_value=2**20))
    def test_sparse_vs_dense_gnn(self, spec, seed):
        task = DifferentialTask(scenario=spec, seed=seed, max_decisions=40)
        report = run_pair("sparse_vs_dense_gnn", task)
        assert report.ok, report.describe()

    @SETTINGS
    @given(spec=scenario_strategy, seed=st.integers(min_value=0, max_value=2**20))
    def test_cached_vs_scratch_features(self, spec, seed):
        task = DifferentialTask(scenario=spec, seed=seed, max_decisions=40)
        report = run_pair("cached_vs_scratch_features", task)
        assert report.ok, report.describe()

    @SETTINGS
    @given(spec=scenario_strategy, seed=st.integers(min_value=0, max_value=2**20))
    def test_fast_vs_full_reference(self, spec, seed):
        task = DifferentialTask(scenario=spec, seed=seed, max_decisions=40)
        report = run_pair("fast_vs_reference", task)
        assert report.ok, report.describe()

    @SETTINGS
    @given(spec=scenario_strategy, seed=st.integers(min_value=0, max_value=2**16))
    def test_record_replay_round_trip(self, spec, seed):
        """Any fuzzed scenario records and replays (apply mode) cleanly."""
        from repro.verify import ReplayEngine, record_scenario_trace

        trace = record_scenario_trace(spec, scheduler="fifo", seed=seed,
                                      max_decisions=40)
        report = ReplayEngine("apply").replay(trace, spec=spec)
        assert report.ok, report.describe()
