"""Tests for the experiment harness (runners, reporting, cheap figure functions)."""

import numpy as np
import pytest

from repro.core import CriticalPathDataset, CriticalPathRegressor, train_critical_path_regressor
from repro.core.supervised import graph_features_from_job
from repro.experiments import (
    compare_schedulers,
    concurrency_series,
    figure2_parallelism_curves,
    figure7_arrival_variance,
    figure16_appendix_example,
    format_cdf_summary,
    format_scalar_table,
    format_series,
    improvement_over,
    run_scheduler_on_jobs,
    toy_join_dag,
    tune_weighted_fair,
)
from repro.schedulers import FairScheduler, FIFOScheduler
from repro.simulator import SimulatorConfig
from repro.workloads import batched_arrivals, make_tpch_job, sample_tpch_jobs


class TestRunnerHelpers:
    def test_compare_schedulers_runs_on_identical_jobs(self):
        rng = np.random.default_rng(0)
        jobs = batched_arrivals(sample_tpch_jobs(3, rng, sizes=(2.0,)))
        config = SimulatorConfig(num_executors=6, seed=0)
        results = compare_schedulers(
            {"fifo": FIFOScheduler(), "fair": FairScheduler()}, jobs, config, seed=0
        )
        assert set(results) == {"fifo", "fair"}
        for result in results.values():
            assert result.all_finished
        # The original jobs must not be mutated by either run.
        assert all(job.completion_time == -1.0 for job in jobs)

    def test_tune_weighted_fair_requires_a_feasible_alpha(self):
        rng = np.random.default_rng(1)
        jobs = batched_arrivals(sample_tpch_jobs(3, rng, sizes=(2.0,)))
        scheduler, jct, table = tune_weighted_fair(
            jobs, config=SimulatorConfig(num_executors=6, seed=0), alphas=(0.0, -1.0)
        )
        assert scheduler.alpha in table
        assert jct == pytest.approx(min(table.values()))

    def test_concurrency_series_counts_jobs_in_system(self):
        rng = np.random.default_rng(2)
        jobs = batched_arrivals(sample_tpch_jobs(3, rng, sizes=(2.0,)))
        result = run_scheduler_on_jobs(
            FairScheduler(), jobs, config=SimulatorConfig(num_executors=6, seed=0)
        )
        series = concurrency_series(result, step=1.0)
        counts = [count for _, count in series]
        assert max(counts) == 3
        assert counts[-1] == 0


class TestCheapFigures:
    def test_figure2_curves_have_expected_shapes(self):
        curves = figure2_parallelism_curves(max_parallelism=50)
        assert len(curves) == 3
        for series in curves.values():
            runtimes = [runtime for _, runtime in series]
            assert runtimes[0] > runtimes[-1]  # parallelism helps overall
            assert len(series) == 50

    def test_figure2_small_input_needs_less_parallelism(self):
        curves = figure2_parallelism_curves(
            configurations=((9, 100.0), (9, 2.0)), max_parallelism=80
        )
        def near_optimal_parallelism(series):
            best = min(runtime for _, runtime in series)
            return next(p for p, runtime in series if runtime <= 1.05 * best)

        large = near_optimal_parallelism(curves["Q9, 100 GB"])
        small = near_optimal_parallelism(curves["Q9, 2 GB"])
        assert small < large

    def test_figure7_sequences_differ(self):
        series = figure7_arrival_variance(num_jobs=10, num_executors=20, seed=3)
        assert len(series) == 2
        first, second = series.values()
        assert first != second

    def test_figure16_matches_appendix_numbers(self):
        outputs = figure16_appendix_example(epsilon=0.05)
        assert outputs["critical_path"] == pytest.approx(
            outputs["theoretical_critical_path"], rel=0.05
        )
        assert outputs["optimal_plan"] == pytest.approx(
            outputs["theoretical_optimal"], rel=0.05
        )
        assert outputs["optimal_plan"] < outputs["critical_path"]

    def test_toy_join_dag_structure(self):
        job = toy_join_dag()
        join = job.nodes[-1]
        assert len(join.parents) == 2
        assert job.num_nodes == 6


class TestSupervisedStudy:
    def test_dataset_generation(self):
        dataset = CriticalPathDataset.generate(5, np.random.default_rng(0))
        assert len(dataset) == 5
        for graph, target in zip(dataset.graphs, dataset.targets):
            assert len(target) == graph.num_nodes
            assert np.all(target > 0)

    def test_graph_features_from_job(self):
        job = make_tpch_job(3, 10.0)
        graph = graph_features_from_job(job)
        assert graph.num_nodes == job.num_nodes
        assert graph.num_jobs == 1

    def test_regressor_trains_and_reports_accuracy(self):
        rng = np.random.default_rng(0)
        train_set = CriticalPathDataset.generate(6, rng, min_nodes=4, max_nodes=6)
        test_set = CriticalPathDataset.generate(4, rng, min_nodes=4, max_nodes=6)
        model = CriticalPathRegressor(two_level_aggregation=True, seed=0)
        result = train_critical_path_regressor(
            model, train_set, test_set, num_iterations=10, eval_every=5
        )
        assert 0.0 <= result.final_accuracy <= 1.0
        assert len(result.losses) == 10


class TestReporting:
    def test_format_scalar_table(self):
        text = format_scalar_table("JCT", {"fifo": 100.0, "decima": 60.0})
        assert "fifo" in text and "decima" in text and "60.00" in text

    def test_format_series(self):
        text = format_series("curves", {"a": [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)], "b": []})
        assert "3 points" in text and "(empty)" in text

    def test_format_cdf_summary(self):
        text = format_cdf_summary("cdf", {"fifo": [1.0, 2.0, 3.0], "empty": []})
        assert "p95" in text and "(no samples)" in text

    def test_improvement_over(self):
        results = {"decima": 60.0, "fair": 80.0}
        assert improvement_over(results, "decima", "fair") == pytest.approx(0.25)
        with pytest.raises(KeyError):
            improvement_over(results, "decima", "missing")
