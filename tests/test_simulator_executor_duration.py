"""Unit tests for executors, executor classes and the task-duration model."""

import numpy as np
import pytest

from repro.simulator import (
    DurationModelConfig,
    Executor,
    ExecutorClass,
    TaskDurationModel,
    default_executor_class,
    multi_resource_classes,
)
from repro.simulator.jobdag import JobDAG, Node
from repro.workloads import ScalingProfile, chain_job


class TestExecutorClass:
    def test_default_class(self):
        cls = default_executor_class()
        assert cls.cpu == 1.0 and cls.memory == 1.0

    def test_multi_resource_classes(self):
        classes = multi_resource_classes()
        assert len(classes) == 4
        assert [cls.memory for cls in classes] == [0.25, 0.5, 0.75, 1.0]
        assert all(cls.cpu == 1.0 for cls in classes)

    def test_fits_by_memory(self):
        small = ExecutorClass("small", cpu=1.0, memory=0.25)
        node = Node(0, 1, 1.0, mem_request=0.5)
        assert not small.fits(node)
        assert default_executor_class().fits(node)

    def test_fits_by_cpu(self):
        cls = ExecutorClass("c", cpu=1.0, memory=1.0)
        node = Node(0, 1, 1.0, cpu_request=2.0)
        assert not cls.fits(node)


class TestExecutor:
    def test_bind_and_rebind_job(self):
        executor = Executor(0, default_executor_class())
        job_a, job_b = chain_job(2, name="a"), chain_job(2, name="b")
        executor.bind_job(job_a)
        assert 0 in job_a.executor_ids
        executor.bind_job(job_b)
        assert 0 not in job_a.executor_ids
        assert 0 in job_b.executor_ids

    def test_task_lifecycle(self):
        executor = Executor(1, default_executor_class())
        job = chain_job(1, num_tasks=1)
        node = job.nodes[0]
        task = node.dispatch_task()
        executor.start_task(node, task)
        assert not executor.idle
        with pytest.raises(RuntimeError):
            executor.start_task(node, task)
        finished = executor.finish_task()
        assert finished is task
        assert executor.idle
        with pytest.raises(RuntimeError):
            executor.finish_task()

    def test_reset_detaches_job(self):
        executor = Executor(2, default_executor_class())
        job = chain_job(1)
        executor.bind_job(job)
        executor.reset()
        assert executor.job is None
        assert 2 not in job.executor_ids


class TestDurationModel:
    def make_node(self):
        job = chain_job(1, num_tasks=4, task_duration=10.0)
        return job.nodes[0]

    def test_no_noise_is_deterministic(self):
        model = TaskDurationModel(DurationModelConfig(enable_noise=False), seed=0)
        node = self.make_node()
        first = model.sample_duration(node, first_wave=False, job_parallelism=1)
        second = model.sample_duration(node, first_wave=False, job_parallelism=1)
        assert first == second == pytest.approx(10.0)

    def test_first_wave_slowdown(self):
        config = DurationModelConfig(enable_noise=False, first_wave_slowdown=1.5)
        model = TaskDurationModel(config)
        node = self.make_node()
        slow = model.sample_duration(node, first_wave=True, job_parallelism=1)
        fast = model.sample_duration(node, first_wave=False, job_parallelism=1)
        assert slow == pytest.approx(1.5 * fast)

    def test_first_wave_switch_off(self):
        config = DurationModelConfig(enable_noise=False, enable_first_wave=False)
        model = TaskDurationModel(config)
        node = self.make_node()
        assert model.sample_duration(node, True, 1) == pytest.approx(10.0)

    def test_moving_delay(self):
        config = DurationModelConfig(moving_delay=3.0)
        model = TaskDurationModel(config)
        assert model.moving_delay(same_job=True) == 0.0
        assert model.moving_delay(same_job=False) == 3.0
        disabled = TaskDurationModel(DurationModelConfig(enable_moving_delay=False))
        assert disabled.moving_delay(same_job=False) == 0.0

    def test_work_inflation_uses_job_curve(self):
        profile = ScalingProfile(sweet_spot=4.0, inflation_rate=0.5)
        nodes = [Node(0, 4, 10.0)]
        job = JobDAG(nodes=nodes, edges=[], work_inflation=profile.work_inflation)
        config = DurationModelConfig(enable_noise=False, enable_first_wave=False)
        model = TaskDurationModel(config)
        at_sweet = model.sample_duration(job.nodes[0], False, 4)
        beyond = model.sample_duration(job.nodes[0], False, 8)
        assert at_sweet == pytest.approx(10.0)
        assert beyond > at_sweet

    def test_inflation_disabled(self):
        profile = ScalingProfile(sweet_spot=2.0, inflation_rate=1.0)
        job = JobDAG(nodes=[Node(0, 2, 5.0)], edges=[], work_inflation=profile.work_inflation)
        config = DurationModelConfig(
            enable_noise=False, enable_first_wave=False, enable_work_inflation=False
        )
        model = TaskDurationModel(config)
        assert model.sample_duration(job.nodes[0], False, 50) == pytest.approx(5.0)

    def test_noise_is_multiplicative_and_positive(self):
        model = TaskDurationModel(DurationModelConfig(noise_sigma=0.3), seed=1)
        node = self.make_node()
        samples = [model.sample_duration(node, False, 1) for _ in range(50)]
        assert all(s > 0 for s in samples)
        assert np.std(samples) > 0

    def test_simplified_config(self):
        simplified = DurationModelConfig().simplified()
        assert not simplified.enable_first_wave
        assert not simplified.enable_work_inflation
        assert not simplified.enable_noise
        assert not simplified.enable_moving_delay
        assert simplified.moving_delay == 0.0

    def test_reseed_reproducibility(self):
        model = TaskDurationModel(DurationModelConfig(noise_sigma=0.2), seed=3)
        node = self.make_node()
        first = [model.sample_duration(node, False, 1) for _ in range(5)]
        model.reseed(3)
        second = [model.sample_duration(node, False, 1) for _ in range(5)]
        assert first == second
