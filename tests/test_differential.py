"""Differential-runner tests: one harness for every fast/oracle pair.

This module is where the repo's equivalence guarantees now live — the
bespoke sparse-vs-dense and batched-vs-serial suites were ported here (one
harness-independent canary per pair stays behind in
``test_sparse_gnn_equivalence.py`` / ``test_service.py``).
"""

import pytest

from repro.experiments.scenarios import scenario_names
from repro.schedulers import scheduler_names
from repro.verify import (
    IMPLEMENTATION_PAIRS,
    DifferentialTask,
    register_variant,
    resolve_variant,
    run_differential,
    run_pair,
    variant_names,
)

SMALL = dict(num_jobs=3, num_executors=8, max_decisions=40)


class TestRegistry:
    def test_builtin_variants_registered(self):
        names = variant_names()
        for name in ("decima:default", "decima:dense_gnn", "decima:kernel_gnn",
                     "decima:tensor_forward", "rollout:serial",
                     "rollout:parallel", "service:batched", "service:serial",
                     "service:online"):
            assert name in names
        # Every registered scheduler is reachable as a variant.
        for scheduler in scheduler_names():
            assert f"scheduler:{scheduler}" in names

    def test_at_least_four_pairs_covered(self):
        """Acceptance: the runner covers >= 4 implementation pairs."""
        assert len(IMPLEMENTATION_PAIRS) >= 4

    def test_unknown_variant_rejected(self):
        with pytest.raises(KeyError, match="unknown variant"):
            resolve_variant("nope")
        with pytest.raises(KeyError, match="unknown variant"):
            resolve_variant("scheduler:not_registered")

    def test_unknown_pair_rejected(self):
        with pytest.raises(KeyError, match="unknown implementation pair"):
            run_pair("nope", DifferentialTask(scenario="tpch_batched"))

    def test_register_duplicate_variant_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_variant("decima:default", lambda task: None)


class TestImplementationPairs:
    """The four load-bearing fast/oracle equivalences, through one harness."""

    @pytest.mark.parametrize("pair", sorted(IMPLEMENTATION_PAIRS))
    def test_pair_is_equivalent_on_batched_tpch(self, pair):
        report = run_pair(pair, DifferentialTask(scenario="tpch_batched", seed=0, **SMALL))
        assert report.ok, report.describe()
        assert min(report.num_decisions) > 5

    @pytest.mark.parametrize("pair", ["sparse_vs_dense_gnn", "cached_vs_scratch_features"])
    def test_gnn_pairs_hold_under_continuous_arrivals(self, pair):
        """Ported from test_sparse_gnn_equivalence: arrivals/completions churn
        the GraphCache mid-episode and the streams must stay identical."""
        report = run_pair(pair, DifferentialTask(scenario="tpch_poisson", seed=3, **SMALL))
        assert report.ok, report.describe()

    def test_gnn_pair_holds_on_multi_resource_cluster(self):
        report = run_pair(
            "sparse_vs_dense_gnn",
            DifferentialTask(scenario="hetero_executors", seed=1, **SMALL),
        )
        assert report.ok, report.describe()
        classes = [d.executor_class for d in report.traces[0].decisions
                   if d.executor_class is not None]
        assert classes  # the class head actually ran

    def test_service_pair_with_more_sessions(self):
        """Ported from test_service: batch composition must not change any
        session's stream."""
        task = DifferentialTask(scenario="tpch_poisson", seed=0, num_sessions=5, **SMALL)
        report = run_pair("batched_vs_serial_service", task)
        assert report.ok, report.describe()
        sessions = {d.session for d in report.traces[0].decisions}
        assert len(sessions) == 5

    @pytest.mark.parametrize("scenario", sorted(scenario_names()))
    def test_sharded_dispatch_matches_serial_on_every_scenario(self, scenario):
        """Acceptance (issue 6): router→shard dispatch is bit-identical to
        single-server serial dispatch on all registry scenarios at fixed
        seeds — sharding only partitions *which broker* answers a session,
        never the answers themselves."""
        task = DifferentialTask(scenario=scenario, seed=11, num_sessions=5, **SMALL)
        report = run_pair("sharded_vs_serial_service", task)
        assert report.ok, report.describe()
        assert min(report.num_decisions) > 5

    @pytest.mark.parametrize("scenario", sorted(scenario_names()))
    def test_kernel_backend_matches_numpy_on_every_scenario(self, scenario):
        """Acceptance (issue 7): the compiled-kernel backend (or its numpy
        fallback when numba is absent) produces the exact same decision
        stream as the numpy reference on all registry scenarios — the
        optional dependency may only change speed, never behaviour."""
        task = DifferentialTask(scenario=scenario, seed=7, **SMALL)
        report = run_pair("kernel_vs_numpy_gnn", task)
        assert report.ok, report.describe()
        assert min(report.num_decisions) > 5

    @pytest.mark.parametrize("scenario", sorted(scenario_names()))
    def test_online_lr0_matches_frozen_on_every_scenario(self, scenario):
        """Acceptance (issue 8): serving with the full online-learning loop
        running at lr=0 — experience collection, background REINFORCE
        updates, checkpoint saves and broker hot-swaps all live — produces
        the exact same decision stream as frozen serving on all registry
        scenarios.  The learning machinery may only change weights through
        a nonzero learning rate, never through its own plumbing."""
        task = DifferentialTask(scenario=scenario, seed=11, num_sessions=5, **SMALL)
        report = run_pair("frozen_vs_online", task)
        assert report.ok, report.describe()
        assert min(report.num_decisions) > 5
        # The pair only proves something if the online side actually
        # trained and hot-swapped mid-stream.
        assert report.traces[1].summary["num_updates_applied"] >= 1
        assert report.traces[1].summary["policy_version"] > 1

    def test_sharded_variant_actually_spreads_sessions(self):
        """With 5 sessions over 2 shards, both shards must answer traffic
        (otherwise the sharded variant degenerates into the batched one)."""
        from repro.service import shard_for_session

        shards = {shard_for_session(f"s{i}", 2) for i in range(5)}
        assert shards == {0, 1}

    def test_rollout_pair_reward_streams_match(self):
        report = run_pair(
            "serial_vs_parallel_rollout",
            DifferentialTask(scenario="tpch_batched", seed=2, **SMALL),
        )
        assert report.ok, report.describe()
        rewards = [d.reward for d in report.traces[0].decisions]
        assert any(r != 0.0 for r in rewards)


class TestSchedulerDeterminism:
    @pytest.mark.parametrize("scheduler", ["fifo", "sjf_cp", "weighted_fair", "decima"])
    def test_any_registered_scheduler_is_self_consistent(self, scheduler):
        """Any registered scheduler run twice on the same task produces the
        same stream (the record/replay determinism contract)."""
        task = DifferentialTask(scenario="tpch_batched", seed=0, **SMALL)
        variant = f"scheduler:{scheduler}"
        report = run_differential(variant, variant, task)
        assert report.ok, report.describe()
        assert report.traces[0].digest == report.traces[1].digest


class TestInjectedMismatch:
    def test_divergent_schedulers_report_first_divergence_with_context(self):
        """Acceptance: an injected mismatch reports step index and
        observation fingerprint."""
        task = DifferentialTask(scenario="tpch_batched", seed=0, **SMALL)
        report = run_differential("scheduler:fifo", "scheduler:sjf_cp", task)
        assert not report.ok
        divergence = report.divergence
        assert divergence.kind == "decision"
        assert divergence.step >= 0
        assert divergence.expected_fingerprint and divergence.actual_fingerprint
        assert divergence.expected is not None and divergence.actual is not None
        text = report.describe()
        assert "DIVERGED" in text and "fingerprint" in text

    def test_ablated_agent_diverges_from_default(self):
        """A *real* behaviour change (no parallelism control) is caught, not
        just scheduler swaps."""
        from repro.verify.differential import _build_decima, _record

        def ablated(task):
            spec = task.resolve_spec()
            config = spec.build_config(seed=task.seed)
            agent = _build_decima(config, sparse=True, cache=True)
            agent.config.use_parallelism_control = False
            return _record(task, agent, "decima:ablated")

        task = DifferentialTask(scenario="tpch_batched", seed=0, **SMALL)
        report = run_differential("decima:default", ablated, task)
        assert not report.ok
        assert report.divergence.field in ("limit", "job", "node", "wall_time",
                                           "reward", "obs_fingerprint")
