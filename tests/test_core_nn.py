"""Unit tests for the dense / MLP / Adam building blocks."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.nn import MLP, Adam, Dense, Module, Parameter, glorot_init


class TestDense:
    def test_output_shape(self):
        layer = Dense(4, 3, np.random.default_rng(0))
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_parameters_found(self):
        layer = Dense(4, 3, np.random.default_rng(0))
        params = layer.parameters()
        assert len(params) == 2
        assert layer.num_parameters() == 4 * 3 + 3

    def test_glorot_bounds(self):
        weights = glorot_init(np.random.default_rng(0), 10, 20)
        limit = np.sqrt(6.0 / 30)
        assert np.all(np.abs(weights) <= limit)
        assert weights.shape == (10, 20)


class TestMLP:
    def test_default_hidden_sizes_match_paper(self):
        mlp = MLP(5, 1, np.random.default_rng(0))
        sizes = [layer.weight.shape for layer in mlp.layers]
        assert sizes == [(5, 32), (32, 16), (16, 1)]

    def test_forward_shape(self):
        mlp = MLP(6, 8, np.random.default_rng(0), hidden_sizes=(4,))
        out = mlp(Tensor(np.ones((3, 6))))
        assert out.shape == (3, 8)

    def test_output_activations(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3)))
        tanh_out = MLP(3, 2, rng, output_activation="tanh")(x)
        assert np.all(np.abs(tanh_out.data) <= 1.0)
        sigmoid_out = MLP(3, 2, rng, output_activation="sigmoid")(x)
        assert np.all((sigmoid_out.data >= 0) & (sigmoid_out.data <= 1))

    def test_unknown_activation_raises(self):
        mlp = MLP(3, 2, np.random.default_rng(0), output_activation="bogus")
        with pytest.raises(ValueError):
            mlp(Tensor(np.ones((1, 3))))

    def test_gradients_reach_all_layers(self):
        mlp = MLP(3, 1, np.random.default_rng(0))
        out = mlp(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        assert all(p.grad is not None for p in mlp.parameters())


class TestModule:
    def test_nested_parameter_collection(self):
        class Outer(Module):
            def __init__(self):
                rng = np.random.default_rng(0)
                self.a = Dense(2, 2, rng)
                self.items = [Dense(2, 2, rng), Dense(2, 2, rng)]
                self.mapping = {"x": Dense(2, 2, rng)}

        outer = Outer()
        assert len(outer.parameters()) == 8

    def test_state_dict_roundtrip(self):
        mlp = MLP(3, 2, np.random.default_rng(0))
        other = MLP(3, 2, np.random.default_rng(99))
        other.load_state_dict(mlp.state_dict())
        for p, q in zip(mlp.parameters(), other.parameters()):
            assert np.allclose(p.data, q.data)

    def test_state_dict_mismatch_raises(self):
        mlp = MLP(3, 2, np.random.default_rng(0))
        small = MLP(3, 2, np.random.default_rng(0), hidden_sizes=(4,))
        with pytest.raises(ValueError):
            small.load_state_dict(mlp.state_dict())

    def test_zero_grad(self):
        mlp = MLP(2, 1, np.random.default_rng(0))
        mlp(Tensor(np.ones((1, 2)))).sum().backward()
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())


class TestAdam:
    def test_minimises_quadratic(self):
        target = np.array([3.0, -2.0])
        param = Parameter(np.zeros(2))
        optimizer = Adam([param], learning_rate=0.1)
        for _ in range(300):
            param.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            optimizer.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_skips_parameters_without_gradient(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param])
        optimizer.step()
        assert np.allclose(param.data, [1.0])

    def test_apply_gradients_validates_length(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param])
        with pytest.raises(ValueError):
            optimizer.apply_gradients([np.array([1.0]), np.array([2.0])])

    def test_apply_gradients_moves_parameters(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param], learning_rate=0.5)
        optimizer.apply_gradients([np.array([1.0])])
        assert param.data[0] < 1.0
