"""Shared fixtures for the test suite.

The fixed-seed factories themselves live in ``tests/_helpers.py`` (module-
level test helpers import them directly with ``from _helpers import ...``);
this conftest exposes them as factory fixtures for tests that prefer
injection, plus the serving-layer lifecycle fixtures (``free_port``,
``server_factory``) that replace ad-hoc port binding and guarantee servers
are stopped even when a test fails mid-body.
"""

import socket

import pytest

from _helpers import make_decima_agent, make_tpch_env, make_training_setup


@pytest.fixture
def tpch_env_factory():
    return make_tpch_env


@pytest.fixture
def decima_agent_factory():
    return make_decima_agent


@pytest.fixture
def training_setup_factory():
    return make_training_setup


# ------------------------------------------------------- serving-layer fixtures
@pytest.fixture
def free_port():
    """A loopback TCP port the OS just handed out.

    For tests that must name an explicit port up front (everything else
    should bind ``port=0`` and read the server's ``address`` back, which can
    never race).
    """
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture(params=["threaded", "asyncio"])
def server_factory(request):
    """Start a policy server on either transport; always stopped at teardown.

    Parametrised over both transports so every socket-level test exercises
    the threaded :class:`PolicyServer` *and* the asyncio
    :class:`AsyncPolicyServer` — they share one :class:`ServerCore`, and this
    fixture is what pins their wire behaviour to each other.  The factory
    binds ``port=0`` (the OS picks a free port; read ``server.address``) and
    registers the server for teardown even if the test body raises.

    Servers are built through the declarative :class:`ServingConfig` /
    :func:`build_server` path — the same construction story the examples and
    CI smoke scripts use — so kwargs are config fields, not raw server
    kwargs.  ``factory.server_class`` stays available for tests that need
    direct construction (e.g. to assert constructor-time validation).
    """
    from repro.service import AsyncPolicyServer, PolicyServer, ServingConfig, build_server

    server_class = PolicyServer if request.param == "threaded" else AsyncPolicyServer
    started = []

    def factory(agent, **kwargs):
        config = ServingConfig(transport=request.param, **kwargs)
        server = build_server(config, agent=agent)
        server.start()
        started.append(server)
        return server

    factory.transport = request.param
    factory.server_class = server_class
    yield factory
    for server in reversed(started):
        server.stop()
