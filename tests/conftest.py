"""Shared fixtures for the test suite.

The fixed-seed factories themselves live in ``tests/_helpers.py`` (module-
level test helpers import them directly with ``from _helpers import ...``);
this conftest exposes them as factory fixtures for tests that prefer
injection.
"""

import pytest

from _helpers import make_decima_agent, make_tpch_env, make_training_setup


@pytest.fixture
def tpch_env_factory():
    return make_tpch_env


@pytest.fixture
def decima_agent_factory():
    return make_decima_agent


@pytest.fixture
def training_setup_factory():
    return make_training_setup
