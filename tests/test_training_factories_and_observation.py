"""Tests for training factories, observation helpers and agent/environment edge cases."""

import numpy as np
import pytest

from repro.core import DecimaAgent, DecimaConfig
from repro.experiments.training import tpch_batch_factory, tpch_poisson_factory
from repro.simulator import (
    SchedulingEnvironment,
    SimulatorConfig,
    default_executor_class,
    multi_resource_config,
)
from repro.simulator.environment import Action
from repro.workloads import batched_arrivals, sample_tpch_jobs


class TestTrainingFactories:
    def test_batch_factory_produces_batched_jobs(self):
        factory = tpch_batch_factory(4, sizes=(2.0, 5.0))
        jobs = factory(np.random.default_rng(0))
        assert len(jobs) == 4
        assert all(job.arrival_time == 0.0 for job in jobs)
        assert all(node.mem_request == 0.0 for job in jobs for node in job.nodes)

    def test_batch_factory_with_memory(self):
        factory = tpch_batch_factory(3, sizes=(2.0,), with_memory=True)
        jobs = factory(np.random.default_rng(1))
        assert any(node.mem_request > 0 for job in jobs for node in job.nodes)

    def test_poisson_factory_assigns_increasing_arrivals(self):
        factory = tpch_poisson_factory(5, mean_interarrival=10.0, sizes=(2.0,))
        jobs = factory(np.random.default_rng(2))
        arrivals = [job.arrival_time for job in jobs]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0.0

    def test_factories_vary_with_generator_state(self):
        factory = tpch_batch_factory(3)
        rng = np.random.default_rng(3)
        first = {job.name for job in factory(rng)}
        second = {job.name for job in factory(rng)}
        assert first != second


class TestObservationHelpers:
    def make_observation(self, config=None):
        config = config or SimulatorConfig(num_executors=6, seed=0)
        rng = np.random.default_rng(0)
        jobs = batched_arrivals(sample_tpch_jobs(2, rng, sizes=(2.0, 5.0)))
        env = SchedulingEnvironment(config)
        return env, env.reset(jobs)

    def test_free_executors_for_single_class(self):
        _, observation = self.make_observation()
        node = observation.schedulable_nodes[0]
        assert observation.free_executors_for(node) == observation.num_free_executors

    def test_free_executors_for_respects_memory(self):
        config = multi_resource_config(total_executors=8, seed=0)
        env, observation = self.make_observation(config)
        node = observation.schedulable_nodes[0]
        node.mem_request = 0.9
        fitting = observation.free_executors_for(node)
        assert fitting < observation.num_free_executors
        assert fitting > 0

    def test_executors_of_job_tracks_bindings(self):
        env, observation = self.make_observation()
        node = observation.schedulable_nodes[0]
        expected = min(2, node.remaining_tasks)
        env.step(Action(node=node, parallelism_limit=2))
        # The executors dispatched by the action are now bound to the node's job.
        assert node.job.num_executors >= expected

    def test_executor_classes_sorted_by_memory(self):
        config = multi_resource_config(total_executors=8, seed=0)
        _, observation = self.make_observation(config)
        memories = [cls.memory for cls in observation.executor_classes]
        assert memories == sorted(memories)


class TestAgentEdgeCases:
    def test_agent_state_dict_has_all_parameters(self):
        agent = DecimaAgent(total_executors=6)
        state = agent.state_dict()
        assert len(state) == len(agent.parameters())

    def test_limit_levels_capped_for_large_clusters(self):
        agent = DecimaAgent(total_executors=500)
        assert len(agent._limit_levels) <= 64
        assert agent._limit_levels[-1] == 500

    def test_explicit_limit_level_count(self):
        agent = DecimaAgent(total_executors=100, config=DecimaConfig(num_limit_levels=10))
        assert len(agent._limit_levels) == 10

    def test_one_hot_limit_inputs_have_policy_width(self):
        agent = DecimaAgent(total_executors=8, config=DecimaConfig(limit_value_input=False))
        inputs = agent._limit_inputs(np.array([1, 4, 8]))
        assert inputs.shape == (3, len(agent._limit_levels))
        assert np.allclose(inputs.sum(axis=1), 1.0)

    def test_scalar_limit_inputs_are_fractions(self):
        agent = DecimaAgent(total_executors=8)
        inputs = agent._limit_inputs(np.array([2, 8]))
        assert inputs.shape == (2, 1)
        assert np.allclose(inputs.ravel(), [0.25, 1.0])

    def test_default_executor_class_fits_everything_by_default(self):
        from repro.simulator.jobdag import Node

        node = Node(0, 1, 1.0)
        assert default_executor_class().fits(node)
