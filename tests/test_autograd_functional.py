"""Unit tests for softmax helpers used by the policy network."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    entropy_from_log_probs,
    log_softmax,
    masked_log_softmax,
    masked_softmax,
    softmax,
)


class TestSoftmax:
    def test_sums_to_one(self):
        logits = Tensor([1.0, 2.0, 3.0])
        probs = softmax(logits)
        assert probs.data.sum() == pytest.approx(1.0)

    def test_matches_reference(self):
        logits = np.array([0.5, -1.0, 2.0])
        expected = np.exp(logits) / np.exp(logits).sum()
        assert np.allclose(softmax(Tensor(logits)).data, expected)

    def test_large_logits_are_stable(self):
        probs = softmax(Tensor([1000.0, 1001.0]))
        assert np.all(np.isfinite(probs.data))
        assert probs.data.sum() == pytest.approx(1.0)

    def test_log_softmax_consistency(self):
        logits = Tensor(np.array([0.3, -0.7, 1.9]))
        assert np.allclose(log_softmax(logits).data, np.log(softmax(logits).data))

    def test_gradient_of_selected_log_prob(self):
        logits = Tensor(np.array([0.1, 0.2, 0.3]), requires_grad=True)
        log_probs = log_softmax(logits)
        log_probs[1].backward()
        probs = softmax(Tensor([0.1, 0.2, 0.3])).data
        expected = -probs
        expected[1] += 1.0
        assert np.allclose(logits.grad, expected, atol=1e-8)

    def test_2d_softmax_axis(self):
        logits = Tensor(np.array([[1.0, 2.0], [3.0, 0.0]]))
        probs = softmax(logits, axis=1)
        assert np.allclose(probs.data.sum(axis=1), [1.0, 1.0])


class TestMaskedSoftmax:
    def test_masked_entries_near_zero(self):
        logits = Tensor([5.0, 1.0, 1.0])
        mask = np.array([False, True, True])
        probs = masked_softmax(logits, mask)
        assert probs.data[0] == pytest.approx(0.0, abs=1e-12)
        assert probs.data[1:].sum() == pytest.approx(1.0)

    def test_single_valid_entry(self):
        probs = masked_softmax(Tensor([1.0, 2.0, 3.0]), np.array([False, False, True]))
        assert probs.data[2] == pytest.approx(1.0)

    def test_all_masked_raises(self):
        with pytest.raises(ValueError):
            masked_softmax(Tensor([1.0, 2.0]), np.array([False, False]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            masked_softmax(Tensor([1.0, 2.0]), np.array([True]))

    def test_masked_log_softmax_matches_restricted_softmax(self):
        logits = np.array([0.4, 1.2, -0.3, 2.0])
        mask = np.array([True, False, True, True])
        log_probs = masked_log_softmax(Tensor(logits), mask)
        restricted = logits[mask]
        expected = restricted - np.log(np.exp(restricted - restricted.max()).sum()) - restricted.max()
        assert np.allclose(log_probs.data[mask], expected, atol=1e-6)


class TestEntropy:
    def test_uniform_distribution_entropy(self):
        log_probs = log_softmax(Tensor(np.zeros(4)))
        entropy = entropy_from_log_probs(log_probs)
        assert entropy.item() == pytest.approx(np.log(4), abs=1e-6)

    def test_deterministic_distribution_entropy_is_zero(self):
        log_probs = masked_log_softmax(Tensor([10.0, 0.0]), np.array([True, False]))
        entropy = entropy_from_log_probs(log_probs, np.array([True, False]))
        assert entropy.item() == pytest.approx(0.0, abs=1e-3)

    def test_entropy_is_differentiable(self):
        logits = Tensor(np.array([0.5, -0.5]), requires_grad=True)
        entropy_from_log_probs(log_softmax(logits)).backward()
        assert logits.grad is not None
        assert np.all(np.isfinite(logits.grad))
