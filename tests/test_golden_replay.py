"""Golden-trace replay tier: every checked-in trace must replay bit-identical.

These tests are the repo's drift backstop: any change to the simulator, the
workload generators or a scheduler that moves even one decision of a registry
scenario fails here with the first-divergence context.  Regenerate the
goldens with ``examples/record_golden_traces.py`` ONLY for intentional
behaviour changes (see ``docs/TESTING.md``).

Also pins the acceptance criteria: recording is bit-identical across two
independent runs and across sweep worker counts (1 vs 4).
"""

from pathlib import Path

import pytest

from repro.experiments.scenarios import scenario_names
from repro.experiments.sweep import SweepCell, SweepWorkerPool
from repro.verify import ReplayEngine, read_trace, record_scenario_trace

GOLDEN_DIR = Path(__file__).parent / "golden"


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.trace.jsonl"


class TestGoldenCoverage:
    def test_every_registry_scenario_has_a_golden_trace(self):
        missing = [n for n in scenario_names() if not golden_path(n).exists()]
        assert not missing, (
            f"no golden trace for: {missing} — run "
            "examples/record_golden_traces.py"
        )

    def test_no_stale_golden_traces(self):
        known = {f"{name}.trace.jsonl" for name in scenario_names()}
        stale = [p.name for p in GOLDEN_DIR.glob("*.trace.jsonl")
                 if p.name not in known]
        assert not stale, f"golden traces for unregistered scenarios: {stale}"


@pytest.mark.parametrize("name", scenario_names())
class TestGoldenReplay:
    def test_replays_bit_identical(self, name):
        trace = read_trace(golden_path(name))  # digest-validated read
        report = ReplayEngine("rerun").replay(trace)
        assert report.ok, report.describe()
        assert report.num_decisions == trace.summary["num_decisions"]

    def test_recorded_decisions_apply_cleanly(self, name):
        trace = read_trace(golden_path(name))
        report = ReplayEngine("apply").replay(trace)
        assert report.ok, report.describe()


class TestRecordingDeterminism:
    def test_two_independent_recordings_are_bit_identical(self):
        """Acceptance: re-recording any scenario twice in one process yields
        byte-identical traces (content digests included)."""
        for name in scenario_names():
            first = record_scenario_trace(name, scheduler="fifo", seed=0,
                                          num_jobs=3, num_executors=8)
            second = record_scenario_trace(name, scheduler="fifo", seed=0,
                                           num_jobs=3, num_executors=8)
            assert first.to_lines() == second.to_lines(), name

    def test_trace_digests_invariant_to_sweep_worker_count(self):
        """Acceptance: recording through the sweep pool with 1 worker and with
        4 workers yields identical digests — and both match in-process
        recording."""
        cells = [
            SweepCell(scenario=name, scheduler="fifo", seed=0)
            for name in scenario_names()
        ]
        local = [
            record_scenario_trace(
                cell.scenario, scheduler=cell.scheduler, seed=cell.seed,
                num_jobs=3, num_executors=8,
            ).digest
            for cell in cells
        ]
        digests = {}
        for workers in (1, 4):
            with SweepWorkerPool(
                num_workers=workers, num_jobs=3, num_executors=8
            ) as pool:
                digests[workers] = pool.record_trace_digests(cells)
        assert digests[1] == digests[4] == local
