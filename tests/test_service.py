"""Tests for the policy-serving subsystem and its satellite helpers.

The load-bearing guarantees:

* cross-session batched inference is *decision-identical* to per-session
  serial inference at fixed seeds (any batch composition, sampled or greedy);
* the SLO circuit-breaker keeps sessions deciding (via the registered
  fallback heuristic) when the policy path is slow, dropping nothing;
* a checkpoint round-trips through the service: actions served from a saved
  + re-loaded agent match in-process ``agent.act`` on the same cluster.

The broad batched-vs-serial equivalence coverage moved to the differential
runner (``tests/test_differential.py``, pair ``batched_vs_serial_service``);
``TestBatchedSerialEquivalence`` below stays as the harness-independent
canary for that pair.
"""

import threading

import numpy as np
import pytest

from _helpers import make_tpch_env as make_env

from repro.core import (
    DecimaAgent,
    DecimaConfig,
    FeatureConfig,
    GraphBatch,
    GraphCache,
    MergedStructureCache,
    build_graph_features,
    load_agent,
    load_latest,
    merge_structures,
    parameter_fingerprint,
    save_agent,
)
from repro.core.features import GraphStructure
from repro.schedulers import (
    FIFOScheduler,
    Scheduler,
    make_scheduler,
    register_scheduler,
    scheduler_names,
)
from repro.service import (
    CircuitBreaker,
    DecisionRequest,
    PolicyClient,
    PolicyServer,
    ProtocolError,
    RequestBroker,
    SessionState,
    drive_episode,
    encode_observation,
    run_load,
)
from repro.simulator import SchedulingEnvironment, SimulatorConfig, latency_histogram
from repro.simulator.environment import Action
from repro.workloads import batched_arrivals, sample_tpch_jobs

# --------------------------------------------------------------------- helpers
class TestLatencyHistogram:
    def test_empty_sample(self):
        histogram = latency_histogram([])
        assert histogram["count"] == 0
        assert histogram["p99"] is None

    def test_single_value(self):
        histogram = latency_histogram([2.5])
        assert histogram == {
            "count": 1, "mean": 2.5, "p50": 2.5, "p95": 2.5, "p99": 2.5, "max": 2.5,
        }

    def test_percentiles(self):
        histogram = latency_histogram(range(1, 101))
        assert histogram["count"] == 100
        assert histogram["p50"] == pytest.approx(50.5)
        assert histogram["p95"] == pytest.approx(95.05)
        assert histogram["max"] == 100.0


class TestSchedulerRegistry:
    def test_builtins_registered(self):
        names = scheduler_names()
        assert "fifo" in names and "decima" in names and "weighted_fair" in names

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            make_scheduler("nope", SimulatorConfig(num_executors=4))

    def test_register_duplicate_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler("fifo", lambda config: FIFOScheduler())

    def test_register_custom_and_overwrite(self):
        class AlwaysFirst(Scheduler):
            name = "always_first"

            def schedule(self, observation):
                node = observation.schedulable_nodes[0]
                return Action(node=node, parallelism_limit=1)

        register_scheduler("always_first_test", lambda config: AlwaysFirst(),
                          overwrite=True)
        built = make_scheduler("always_first_test", SimulatorConfig(num_executors=2))
        assert isinstance(built, AlwaysFirst)


class TestCheckpointLatest:
    def agent(self):
        return DecimaAgent(
            total_executors=6,
            config=DecimaConfig(
                seed=3,
                hidden_sizes=(16, 8),
                embedding_dim=4,
                feature=FeatureConfig(include_interarrival_hint=True),
            ),
        )

    def test_save_writes_latest_pointer(self, tmp_path):
        agent = self.agent()
        save_agent(agent, tmp_path / "iter_0007.npz")
        assert (tmp_path / "latest.json").exists()
        loaded = load_latest(tmp_path)
        assert parameter_fingerprint(loaded) == parameter_fingerprint(agent)

    def test_latest_tracks_newest_save(self, tmp_path):
        first = self.agent()
        save_agent(first, tmp_path / "iter_1.npz")
        second = self.agent()
        for parameter in second.parameters():
            parameter.data += 0.25
        save_agent(second, tmp_path / "iter_2.npz")
        loaded = load_latest(tmp_path)
        assert parameter_fingerprint(loaded) == parameter_fingerprint(second)
        assert parameter_fingerprint(loaded) != parameter_fingerprint(first)

    def test_load_agent_rebuilds_architecture(self, tmp_path):
        agent = self.agent()
        path = save_agent(agent, tmp_path / "model.npz")
        loaded = load_agent(path)
        assert loaded.total_executors == 6
        assert loaded.config.hidden_sizes == (16, 8)
        assert loaded.config.embedding_dim == 4
        assert loaded.config.feature.include_interarrival_hint is True
        assert parameter_fingerprint(loaded) == parameter_fingerprint(agent)

    def test_missing_pointer_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="latest.json"):
            load_latest(tmp_path)

    def test_save_without_npz_suffix_normalises_path(self, tmp_path):
        agent = self.agent()
        path = save_agent(agent, tmp_path / "model")  # np.savez appends .npz
        assert path.name == "model.npz"
        assert path.exists()
        loaded = load_latest(tmp_path)  # pointer must name the real file
        assert parameter_fingerprint(loaded) == parameter_fingerprint(agent)


# --------------------------------------------------------------- graph merging
class TestGraphMerging:
    def components(self):
        graphs = []
        for seed, num_jobs in ((0, 1), (1, 3), (2, 2)):
            _, observation = make_env(num_jobs=num_jobs, seed=seed)
            graphs.append(build_graph_features(observation))
        return graphs

    def test_merged_structure_matches_scratch_union(self):
        graphs = self.components()
        merged = merge_structures([graph.structure for graph in graphs])
        scratch = GraphStructure([job for graph in graphs for job in graph.jobs])
        np.testing.assert_array_equal(merged.edge_parent_rows, scratch.edge_parent_rows)
        np.testing.assert_array_equal(merged.edge_child_rows, scratch.edge_child_rows)
        np.testing.assert_array_equal(merged.node_heights, scratch.node_heights)
        np.testing.assert_array_equal(merged.job_ids, scratch.job_ids)
        np.testing.assert_array_equal(merged.num_tasks, scratch.num_tasks)
        assert len(merged.frontier_levels) == len(scratch.frontier_levels)
        for mine, reference in zip(merged.frontier_levels, scratch.frontier_levels):
            assert mine.height == reference.height
            np.testing.assert_array_equal(mine.target_rows, reference.target_rows)
            np.testing.assert_array_equal(mine.child_rows, reference.child_rows)
            np.testing.assert_array_equal(mine.message_rows, reference.message_rows)
            np.testing.assert_array_equal(mine.target_segments, reference.target_segments)

    def test_graph_ids_segment_jobs_by_component(self):
        graphs = self.components()
        merged = merge_structures([graph.structure for graph in graphs])
        assert merged.num_graphs == 3
        expected = np.concatenate(
            [np.full(graph.num_jobs, k) for k, graph in enumerate(graphs)]
        )
        np.testing.assert_array_equal(merged.job_graph_ids, expected)

    def test_single_component_passes_through(self):
        graph = self.components()[0]
        batch = GraphBatch.merge([graph])
        assert batch.features is graph
        assert batch.node_slices == [slice(0, graph.num_nodes)]

    def test_feature_width_mismatch_raises(self):
        _, obs_a = make_env(seed=0)
        _, obs_b = make_env(seed=1)
        narrow = build_graph_features(obs_a, FeatureConfig())
        wide = build_graph_features(
            obs_b, FeatureConfig(include_interarrival_hint=True)
        )
        with pytest.raises(ValueError, match="feature widths"):
            GraphBatch.merge([narrow, wide])

    def test_merged_structure_cache_reuses_stable_components(self):
        graphs = self.components()
        structures = [graph.structure for graph in graphs]
        cache = MergedStructureCache()
        first = cache.merged_structure(structures)
        second = cache.merged_structure(structures)
        assert first is second
        assert cache.num_rebuilds == 1
        cache.merged_structure(structures[:2])
        assert cache.num_rebuilds == 2


# -------------------------------------------------- batched/serial equivalence
def drive_sessions(batched: bool, num_sessions: int = 4, max_rounds: int = 60,
                   greedy: bool = False):
    """Drive ``num_sessions`` concurrent simulated clusters through a broker.

    Observations travel through the real wire encoding and shadow-DAG
    reconciliation; actions are applied to each session's own environment.
    Returns the per-session decision traces.
    """
    agent = DecimaAgent(total_executors=8, config=DecimaConfig(seed=0))
    broker = RequestBroker(agent, batched=batched, greedy=greedy)
    environments, observations, sessions = [], [], []
    for index in range(num_sessions):
        env, observation = make_env(
            num_jobs=2 + (index % 3), seed=10 + index, staggered=index % 2 == 0
        )
        environments.append(env)
        observations.append(observation)
        sessions.append(
            SessionState(f"s{index}", num_executors=8, seed=100 + index)
        )
    traces = [[] for _ in range(num_sessions)]
    for _ in range(max_rounds):
        pending = [
            (index, observation)
            for index, observation in enumerate(observations)
            if observation is not None
        ]
        if not pending:
            break
        requests = [
            DecisionRequest(
                session=sessions[index],
                observation=sessions[index].observation_from_snapshot(
                    encode_observation(observation)
                ),
            )
            for index, observation in pending
        ]
        results = broker.decide(requests)
        for (index, observation), request, result in zip(pending, requests, results):
            encoded = request.session.encode_action(result.action)
            if encoded["noop"]:
                action = None
                traces[index].append(("noop", None, None, result.source))
            else:
                job = next(
                    job for job in observation.job_dags
                    if job.job_id == encoded["job_id"]
                )
                node = next(
                    node for node in job.nodes if node.node_id == encoded["node_id"]
                )
                action = Action(
                    node=node, parallelism_limit=encoded["parallelism_limit"]
                )
                # Trace by the (seed-deterministic) job *name*, not the global
                # JobDAG id counter, so two independent runs are comparable.
                traces[index].append(
                    (job.name, encoded["node_id"],
                     encoded["parallelism_limit"], result.source)
                )
            next_observation, _, done = environments[index].step(action)
            observations[index] = None if done else next_observation
    return traces


class TestBatchedSerialEquivalence:
    @pytest.mark.parametrize("greedy", [False, True])
    def test_batched_decisions_identical_to_serial(self, greedy):
        """Acceptance: cross-session batching is bit-identical to per-session
        serial dispatch at fixed seeds (sampled and greedy)."""
        serial = drive_sessions(batched=False, greedy=greedy)
        batched = drive_sessions(batched=True, greedy=greedy)
        assert serial == batched
        assert all(len(trace) > 5 for trace in serial)
        assert all(source == "policy" for trace in serial for (_, _, _, source) in trace)

    def test_batch_composition_does_not_change_a_session(self):
        """A session's stream is invariant to *which* sessions share its batches."""
        alone = drive_sessions(batched=True, num_sessions=1)
        crowd = drive_sessions(batched=True, num_sessions=4)
        assert crowd[0] == alone[0]

    def test_act_batch_matches_act_on_live_observations(self):
        agent = DecimaAgent(total_executors=8, config=DecimaConfig(seed=0))
        observations = [make_env(num_jobs=n, seed=s)[1] for n, s in ((1, 4), (3, 5))]
        serial_caches = [GraphCache() for _ in observations]
        batch_caches = [GraphCache() for _ in observations]
        for step in range(3):
            serial = [
                agent.act(
                    observation,
                    rng=np.random.default_rng([step, index]),
                    graph_cache=serial_caches[index],
                )[0]
                for index, observation in enumerate(observations)
            ]
            batched = [
                result[0]
                for result in agent.act_batch(
                    observations,
                    rngs=[np.random.default_rng([step, index])
                          for index in range(len(observations))],
                    graph_caches=batch_caches,
                )
            ]
            for expected, got in zip(serial, batched):
                assert expected.node is got.node
                assert expected.parallelism_limit == got.parallelism_limit


# ------------------------------------------------------- session reconciliation
class TestSessionReconciliation:
    def test_shadow_jobs_preserve_identity_between_requests(self):
        env, observation = make_env(num_jobs=2, seed=0)
        session = SessionState("s", num_executors=8)
        first = session.observation_from_snapshot(encode_observation(observation))
        second = session.observation_from_snapshot(encode_observation(env.observe()))
        assert [id(job) for job in first.job_dags] == [id(job) for job in second.job_dags]
        features = session.graph_cache.features(first)
        session.graph_cache.features(second)
        assert session.graph_cache.num_rebuilds == 1
        assert features.num_jobs == 2

    def test_counters_refresh_in_place(self):
        env, observation = make_env(num_jobs=1, seed=0)
        session = SessionState("s", num_executors=8)
        shadow_first = session.observation_from_snapshot(encode_observation(observation))
        node = observation.schedulable_nodes[0]
        observation, _, _ = env.step(Action(node=node, parallelism_limit=4))
        shadow_second = session.observation_from_snapshot(
            encode_observation(env.observe())
        )
        real = {n.node_id: n for job in env.active_jobs for n in job.nodes}
        for shadow_job in shadow_second.job_dags:
            for shadow_node in shadow_job.nodes:
                assert shadow_node.num_running_tasks == real[shadow_node.node_id].num_running_tasks
                assert shadow_node.num_finished_tasks == real[shadow_node.node_id].num_finished_tasks
        assert shadow_first.job_dags[0] is shadow_second.job_dags[0]

    def test_completed_jobs_dropped_and_arrivals_added(self):
        session = SessionState("s", num_executors=8)
        env, observation = make_env(num_jobs=3, seed=2)
        session.observation_from_snapshot(encode_observation(observation))
        assert session.num_jobs == 3
        payload = encode_observation(observation)
        payload["jobs"] = payload["jobs"][:1]
        payload["schedulable"] = [
            entry for entry in payload["schedulable"]
            if entry[0] == payload["jobs"][0]["job_id"]
        ]
        reduced = session.observation_from_snapshot(payload)
        assert session.num_jobs == 1
        assert len(reduced.job_dags) == 1

    def test_recycled_job_id_with_different_structure_rebuilds_shadow(self):
        """A client that reuses a job id for a structurally different job
        (e.g. per-episode numbering) must not be scheduled against the stale
        shadow DAG."""
        session = SessionState("s", num_executors=8)
        payload = {
            "wall_time": 0.0, "num_free_executors": 4, "total_executors": 8,
            "num_jobs_in_system": 1, "source_job": None,
            "jobs": [{
                "job_id": 7, "name": "a", "arrival_time": 0.0,
                "edges": [[0, 1]],
                "nodes": [
                    {"node_id": 0, "num_tasks": 2, "task_duration": 10.0,
                     "num_finished_tasks": 0, "num_running_tasks": 0,
                     "next_task_index": 0},
                    {"node_id": 1, "num_tasks": 3, "task_duration": 5.0,
                     "num_finished_tasks": 0, "num_running_tasks": 0,
                     "next_task_index": 0},
                ],
            }],
            "schedulable": [[7, 0]],
        }
        first = session.observation_from_snapshot(payload)
        recycled = {
            **payload,
            "jobs": [{
                "job_id": 7, "name": "b", "arrival_time": 50.0,
                "edges": [],
                "nodes": [{"node_id": 0, "num_tasks": 8, "task_duration": 99.0,
                           "num_finished_tasks": 0, "num_running_tasks": 0,
                           "next_task_index": 0}],
            }],
            "schedulable": [[7, 0]],
        }
        second = session.observation_from_snapshot(recycled)
        assert second.job_dags[0] is not first.job_dags[0]
        assert len(second.job_dags[0].nodes) == 1
        assert second.job_dags[0].nodes[0].num_tasks == 8
        assert second.job_dags[0].nodes[0].task_duration == 99.0
        # An identical snapshot afterwards reuses the rebuilt shadow.
        third = session.observation_from_snapshot(recycled)
        assert third.job_dags[0] is second.job_dags[0]

    def test_unknown_schedulable_node_raises(self):
        env, observation = make_env(num_jobs=1, seed=0)
        session = SessionState("s", num_executors=8)
        payload = encode_observation(observation)
        payload["schedulable"] = [[999, 0]]
        with pytest.raises(ProtocolError, match="unknown job"):
            session.observation_from_snapshot(payload)

    def test_encode_action_round_trip(self):
        env, observation = make_env(num_jobs=2, seed=1)
        session = SessionState("s", num_executors=8)
        shadow = session.observation_from_snapshot(encode_observation(observation))
        action = Action(node=shadow.schedulable_nodes[0], parallelism_limit=3)
        encoded = session.encode_action(action)
        assert encoded["noop"] is False
        assert encoded["parallelism_limit"] == 3
        client_jobs = {job.job_id for job in observation.job_dags}
        assert encoded["job_id"] in client_jobs
        assert session.encode_action(None) == {"noop": True}


# ------------------------------------------------------------- circuit breaker
class TestCircuitBreaker:
    def test_opens_after_consecutive_breaches(self):
        breaker = CircuitBreaker(slo_seconds=0.01, breach_threshold=3,
                                 cooldown_decisions=5)
        breaker.record_policy(0.02)
        breaker.record_policy(0.02)
        assert breaker.state == "closed"
        breaker.record_policy(0.02)
        assert breaker.state == "open"
        assert not breaker.allow_policy()

    def test_fast_decision_resets_breach_count(self):
        breaker = CircuitBreaker(slo_seconds=0.01, breach_threshold=2,
                                 cooldown_decisions=5)
        breaker.record_policy(0.02)
        breaker.record_policy(0.001)
        breaker.record_policy(0.02)
        assert breaker.state == "closed"

    def test_half_open_trial_closes_on_success(self):
        breaker = CircuitBreaker(slo_seconds=0.01, breach_threshold=1,
                                 cooldown_decisions=2)
        breaker.record_policy(0.02)
        assert breaker.state == "open"
        breaker.record_fallback()
        assert not breaker.allow_policy()
        breaker.record_fallback()
        assert breaker.allow_policy()  # half-open trial
        breaker.record_policy(0.001)
        assert breaker.state == "closed"

    def test_half_open_trial_reopens_on_breach(self):
        breaker = CircuitBreaker(slo_seconds=0.01, breach_threshold=1,
                                 cooldown_decisions=1)
        breaker.record_policy(0.02)
        breaker.record_fallback()
        assert breaker.allow_policy()
        breaker.record_policy(0.02)
        assert breaker.state == "open"
        assert breaker.num_opens == 2


class TestSLOFallback:
    def test_slow_policy_trips_breaker_and_sessions_keep_deciding(self, monkeypatch):
        """Acceptance: an artificially slowed policy path triggers the
        circuit-breaker; decisions keep flowing (from the fallback heuristic)
        and no request is dropped."""
        agent = DecimaAgent(total_executors=8, config=DecimaConfig(seed=0))
        slow = {"enabled": True}
        original = DecimaAgent.act_batch

        def slowed(self, *args, **kwargs):
            if slow["enabled"]:
                import time
                time.sleep(0.02)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(DecimaAgent, "act_batch", slowed)
        breaker = CircuitBreaker(slo_seconds=0.005, breach_threshold=2,
                                 cooldown_decisions=4)
        broker = RequestBroker(agent, batched=True, greedy=True, breaker=breaker)
        env, observation = make_env(num_jobs=3, seed=0)
        session = SessionState(
            "slo", num_executors=8,
            fallback=make_scheduler("fifo", SimulatorConfig(num_executors=8)),
        )
        sources = []
        for _ in range(40):
            if observation is None:
                break
            request = DecisionRequest(
                session=session,
                observation=session.observation_from_snapshot(
                    encode_observation(observation)
                ),
            )
            (result,) = broker.decide([request])
            assert result is not None  # nothing dropped
            sources.append(result.source)
            encoded = session.encode_action(result.action)
            if encoded["noop"]:
                action = None
            else:
                job = next(j for j in observation.job_dags
                           if j.job_id == encoded["job_id"])
                node = next(n for n in job.nodes
                            if n.node_id == encoded["node_id"])
                action = Action(node=node,
                                parallelism_limit=encoded["parallelism_limit"])
            observation, _, done = env.step(action)
            if done:
                break
        assert breaker.num_opens >= 1
        assert "fallback" in sources
        # The first breach_threshold decisions went through the (slow) policy.
        assert sources[:2] == ["policy", "policy"]
        assert session.num_fallback_decisions > 0
        assert session.num_decisions == len(sources)

    def test_open_breaker_with_mixed_fallback_batch(self):
        """A batch mixing sessions with and without a fallback must split:
        no-fallback sessions stay on the policy path, the rest fall back."""
        agent = DecimaAgent(total_executors=8, config=DecimaConfig(seed=0))
        breaker = CircuitBreaker(slo_seconds=60.0, breach_threshold=1,
                                 cooldown_decisions=10)
        breaker.record_policy(120.0)  # force open
        broker = RequestBroker(agent, batched=True, greedy=True, breaker=breaker)
        with_fallback = SessionState(
            "wf", num_executors=8,
            fallback=make_scheduler("fifo", SimulatorConfig(num_executors=8)),
        )
        without_fallback = SessionState("nf", num_executors=8, fallback=None)
        requests = []
        for session, seed in ((with_fallback, 0), (without_fallback, 1)):
            _, observation = make_env(num_jobs=2, seed=seed)
            requests.append(
                DecisionRequest(
                    session=session,
                    observation=session.observation_from_snapshot(
                        encode_observation(observation)
                    ),
                )
            )
        cooldown_before = breaker._cooldown_remaining
        results = broker.decide(requests)
        assert results[0].source == "fallback"
        assert results[1].source == "policy"
        assert results[0].action is not None and results[1].action is not None
        # The forced (no-fallback) policy pass must not be mistaken for the
        # half-open trial: the breaker stays open and only the fallback
        # decision consumed cooldown.
        assert breaker.state == "open"
        assert breaker._cooldown_remaining == cooldown_before - 1
        assert breaker.num_opens == 1

    def test_breaker_recovers_when_policy_is_fast_again(self):
        agent = DecimaAgent(total_executors=8, config=DecimaConfig(seed=0))
        breaker = CircuitBreaker(slo_seconds=60.0, breach_threshold=1,
                                 cooldown_decisions=1)
        broker = RequestBroker(agent, batched=True, greedy=True, breaker=breaker)
        breaker.record_policy(120.0)  # simulate a past breach
        assert breaker.state == "open"
        env, observation = make_env(num_jobs=2, seed=3)
        session = SessionState(
            "rec", num_executors=8,
            fallback=make_scheduler("fifo", SimulatorConfig(num_executors=8)),
        )
        results = []
        for _ in range(3):
            request = DecisionRequest(
                session=session,
                observation=session.observation_from_snapshot(
                    encode_observation(observation)
                ),
            )
            (result,) = broker.decide([request])
            results.append(result.source)
        # fallback burns the cooldown, then the half-open trial succeeds.
        assert results[0] == "fallback"
        assert "policy" in results[1:]
        assert breaker.state == "closed"


# ------------------------------------------------------------ socket transport
class TestPolicyServerEndToEnd:
    """Socket-level behaviour, parametrised over BOTH transports.

    ``server_factory`` (tests/conftest.py) runs every test here against the
    threaded :class:`PolicyServer` and the asyncio
    :class:`AsyncPolicyServer`; the two share one :class:`ServerCore`, and
    these tests pin their wire behaviour to each other.
    """

    def test_two_concurrent_sessions_full_episodes(self, server_factory):
        agent = DecimaAgent(total_executors=8, config=DecimaConfig(seed=0))
        server = server_factory(agent)
        host, port = server.address
        summaries = [None, None]

        def run(index):
            rng = np.random.default_rng(index)
            jobs = batched_arrivals(sample_tpch_jobs(2, rng, sizes=(2.0, 5.0)))
            env = SchedulingEnvironment(
                SimulatorConfig(num_executors=8, seed=index)
            )
            with PolicyClient(host, port) as client:
                client.hello(session_id=f"e2e-{index}", num_executors=8,
                             seed=index)
                summaries[index] = drive_episode(client, env, jobs, seed=index)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for summary in summaries:
            assert summary is not None
            assert summary["decisions"] > 0
            assert summary["unfinished_jobs"] == 0
            assert set(summary["sources"]) == {"policy"}

    def test_explicit_port_binding(self, server_factory, free_port):
        """Servers honour an explicit port (the ``free_port`` fixture replaces
        the old racy bind-then-hope pattern for tests that must name one)."""
        agent = DecimaAgent(total_executors=6, config=DecimaConfig(seed=0))
        server = server_factory(agent, port=free_port)
        assert server.address[1] == free_port
        with PolicyClient(*server.address) as client:
            assert client.hello(num_executors=6)["type"] == "welcome"

    def test_served_actions_match_in_process_agent_after_checkpoint(self, tmp_path):
        """Acceptance satellite: train 2 tiny iterations, save, serve, and the
        served greedy action stream equals in-process ``agent.act`` at the
        same seed."""
        from repro.core import TrainingConfig
        from repro.experiments import train_decima_agent, tpch_batch_factory

        trained, _ = train_decima_agent(
            SimulatorConfig(num_executors=6, seed=0),
            tpch_batch_factory(2, sizes=(2.0, 5.0)),
            num_iterations=2,
            episodes_per_iteration=1,
            training_config=TrainingConfig(
                seed=0, initial_episode_time=400.0, max_actions_per_episode=50
            ),
            seed=0,
        )
        save_agent(trained, tmp_path / "trained.npz")

        def job_set():
            rng = np.random.default_rng(42)
            return batched_arrivals(sample_tpch_jobs(3, rng, sizes=(2.0, 5.0)))

        # In-process reference: greedy decisions straight from the agent.
        reference_agent = load_latest(tmp_path)
        reference_agent.reset()
        env = SchedulingEnvironment(SimulatorConfig(num_executors=6, seed=0))
        observation = env.reset(job_set(), seed=0)
        reference = []
        done = False
        while not done:
            action, _ = reference_agent.act(observation, greedy=True)
            reference.append(
                (action.node.job.name, action.node.node_id, action.parallelism_limit)
            )
            observation, _, done = env.step(action)

        served_agent = load_latest(tmp_path)
        assert parameter_fingerprint(served_agent) == parameter_fingerprint(trained)
        with PolicyServer(served_agent) as server:
            host, port = server.address
            env = SchedulingEnvironment(SimulatorConfig(num_executors=6, seed=0))
            observation = env.reset(job_set(), seed=0)
            served = []
            with PolicyClient(host, port) as client:
                client.hello(num_executors=6, seed=0)
                done = False
                while not done:
                    reply = client.decide(observation)
                    assert reply["source"] == "policy"
                    job = next(j for j in observation.job_dags
                               if j.job_id == reply["job_id"])
                    node = next(n for n in job.nodes
                                if n.node_id == reply["node_id"])
                    served.append((job.name, node.node_id,
                                   reply["parallelism_limit"]))
                    observation, _, done = env.step(
                        Action(node=node,
                               parallelism_limit=reply["parallelism_limit"])
                    )
        assert served == reference

    def test_run_load_reports_throughput(self, server_factory):
        agent = DecimaAgent(total_executors=6, config=DecimaConfig(seed=0))
        server = server_factory(agent)
        host, port = server.address
        summary = run_load(host, port, num_sessions=2, num_jobs=2,
                           num_executors=6, min_total_decisions=30)
        assert summary["decisions"] >= 30
        assert summary["latency_ms"]["count"] == summary["decisions"]
        assert summary["sources"].get("policy", 0) == summary["decisions"]
        assert summary["decisions_per_sec"] > 0

    def test_error_replies_keep_connection_usable(self, server_factory):
        agent = DecimaAgent(total_executors=6, config=DecimaConfig(seed=0))
        server = server_factory(agent)
        host, port = server.address
        with PolicyClient(host, port) as client:
            env, observation = make_env(num_jobs=1, seed=0, num_executors=6)
            with pytest.raises(ProtocolError, match="before hello"):
                client.decide(observation)
            client.hello(num_executors=6)
            reply = client.decide(observation)
            assert reply["type"] == "action"

    def test_malformed_decide_payload_keeps_connection_usable(self, server_factory):
        agent = DecimaAgent(total_executors=6, config=DecimaConfig(seed=0))
        server = server_factory(agent)
        host, port = server.address
        with PolicyClient(host, port) as client:
            client.hello(num_executors=6)
            with pytest.raises(ProtocolError, match="malformed"):
                client.request({"type": "decide"})  # no observation at all
            with pytest.raises(ProtocolError, match="malformed"):
                client.request(
                    {"type": "decide", "observation": {"jobs": "nonsense"}}
                )
            env, observation = make_env(num_jobs=1, seed=0, num_executors=6)
            assert client.decide(observation)["type"] == "action"

    def test_second_hello_on_connection_rejected_without_leaking(self, server_factory):
        agent = DecimaAgent(total_executors=6, config=DecimaConfig(seed=0))
        server = server_factory(agent)
        host, port = server.address
        with PolicyClient(host, port) as client:
            client.hello(session_id="first", num_executors=6)
            with pytest.raises(ProtocolError, match="already open"):
                client.hello(session_id="second", num_executors=6)
        # The connection closed: "first" must be reclaimed, and "second"
        # must never have been registered.
        for _ in range(50):
            if not server.sessions:
                break
            import time
            time.sleep(0.02)
        assert "first" not in server.sessions
        assert "second" not in server.sessions
        with PolicyClient(host, port) as client:
            client.hello(session_id="first", num_executors=6)

    def test_sampled_act_batch_requires_per_observation_rngs(self):
        agent = DecimaAgent(total_executors=8, config=DecimaConfig(seed=0))
        _, observation = make_env(num_jobs=1, seed=0)
        with pytest.raises(ValueError, match="one rng per observation"):
            agent.act_batch([observation], greedy=False)
        # Greedy draws nothing, so no rngs are required.
        (action, _), = agent.act_batch([observation], greedy=True)
        assert action is not None

    def test_unknown_fallback_rejected(self, server_factory):
        agent = DecimaAgent(total_executors=6, config=DecimaConfig(seed=0))
        with pytest.raises(KeyError, match="unknown fallback"):
            server_factory.server_class(agent, fallback="not_a_scheduler")
        server = server_factory(agent)
        host, port = server.address
        with PolicyClient(host, port) as client:
            with pytest.raises(ProtocolError, match="unknown fallback"):
                client.hello(fallback="not_a_scheduler")
