"""Unit tests for the zero-dependency telemetry package (:mod:`repro.obs`).

The observability layer's own guarantees, independent of the serving stack:

* **registry** — counters/gauges/histograms share one snapshot schema,
  collector callbacks merge hot-path state in at scrape time only, and the
  snapshot renders to valid Prometheus text exposition;
* **tracing** — spans reconstruct a parent chain across processes from
  nothing but random hex ids, and the store is bounded (LRU traces, capped
  spans per trace) so a long-lived server can't grow without bound;
* **flight recorder** — a bounded ring whose ``dump()`` never raises and
  persists a post-mortem JSON artifact when given a directory;
* **logging** — structured events are dark until :func:`configure_logging`
  and single-line JSON after;
* **stage clock** — the shared ``act``/``act_batch`` timing helper feeds
  :class:`StageTimings` exactly like the old inline ``perf_counter`` blocks
  and emits per-stage child spans only when a trace is active.
"""

import io
import json
import logging as stdlib_logging

import pytest

from repro.core.agent import StageTimings
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    FlightRecorder,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    SpanStore,
    configure_logging,
    get_logger,
    log_event,
    new_span_id,
    new_trace_id,
    render_prometheus,
    summarize_snapshot,
)
from repro.obs.registry import histogram_family_from_stats


# -------------------------------------------------------------- instruments
class TestInstruments:
    def test_counter_counts_and_rejects_negative(self):
        counter = Counter("events_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_labelled_counter_keeps_series_separate(self):
        counter = Counter("by_kind_total", label_names=("kind",))
        counter.inc(kind="a")
        counter.inc(3, kind="b")
        assert counter.value(kind="a") == 1
        assert counter.value(kind="b") == 3
        with pytest.raises(ValueError, match="expected labels"):
            counter.inc()  # missing the declared label

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("sessions_open")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 3

    def test_histogram_buckets_are_cumulative_with_inf(self):
        histogram = Histogram("latency_ms", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            histogram.observe(value)
        (sample,) = histogram.describe()["samples"]
        assert sample["buckets"] == [[1.0, 2], [10.0, 3], ["+Inf", 4]]
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(106.2)

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("empty", buckets=())

    def test_default_latency_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(
            DEFAULT_LATENCY_BUCKETS_MS
        )


# ----------------------------------------------------------------- registry
class TestMetricsRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("decisions_total")
        second = registry.counter("decisions_total")
        assert first is second

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_collector_merges_at_snapshot_time(self):
        registry = MetricsRegistry()
        registry.counter("own_total", help="owned").inc(2)
        calls = {"count": 0}

        def collector():
            calls["count"] += 1
            return {
                "legacy_total": {
                    "type": "counter",
                    "help": "from a bare attribute",
                    "samples": [{"labels": {}, "value": 7.0}],
                }
            }

        registry.register_collector(collector)
        assert calls["count"] == 0  # zero cost until scraped
        snapshot = registry.snapshot()
        assert calls["count"] == 1
        assert snapshot["own_total"]["samples"][0]["value"] == 2
        assert snapshot["legacy_total"]["samples"][0]["value"] == 7.0

    def test_collector_samples_append_to_existing_family(self):
        registry = MetricsRegistry()
        registry.gauge("mixed", labels=("source",)).set(1.0, source="own")
        registry.register_collector(
            lambda: {
                "mixed": {
                    "type": "gauge",
                    "help": "",
                    "samples": [{"labels": {"source": "legacy"}, "value": 2.0}],
                }
            }
        )
        samples = registry.snapshot()["mixed"]["samples"]
        assert {s["labels"]["source"] for s in samples} == {"own", "legacy"}

    def test_prometheus_rendering(self):
        registry = MetricsRegistry(namespace="decima")
        registry.counter("decisions_total", help="Decisions served.").inc(5)
        registry.histogram("latency_ms", buckets=(1.0,)).observe(0.4)
        body = registry.prometheus()
        assert "# HELP decima_decisions_total Decisions served." in body
        assert "# TYPE decima_decisions_total counter" in body
        assert "decima_decisions_total 5.0" in body
        assert 'decima_latency_ms_bucket{le="1.0"} 1' in body
        assert 'decima_latency_ms_bucket{le="+Inf"} 1' in body
        assert "decima_latency_ms_count 1" in body

    def test_prometheus_extra_labels_tag_every_sample(self):
        registry = MetricsRegistry()
        registry.counter("decisions_total").inc()
        body = render_prometheus(
            registry.snapshot(), extra_labels={"shard": "3"}
        )
        assert 'decima_decisions_total{shard="3"} 1.0' in body

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", labels=("name",)).inc(
            name='with "quotes"\nand newline'
        )
        body = registry.prometheus()
        assert '\\"quotes\\"' in body
        assert "\\nand" in body

    def test_summarize_degrades_on_empty_snapshot(self):
        line = summarize_snapshot({})
        assert "v-" in line
        assert "decisions=-" in line

    def test_summarize_reads_core_series(self):
        registry = MetricsRegistry()
        registry.gauge("policy_version").set(4)
        registry.counter("decisions_total").inc(12)
        line = summarize_snapshot(registry.snapshot())
        assert "v4" in line
        assert "decisions=12" in line

    def test_histogram_family_from_stats_bridges_quantiles(self):
        family = histogram_family_from_stats(
            {"p50": 1.0, "p95": 2.0, "p99": 3.0, "count": 9}
        )
        quantiles = {s["labels"]["quantile"] for s in family["samples"]}
        assert quantiles == {"p50", "p95", "p99"}


# ------------------------------------------------------------------ tracing
class TestTracing:
    def test_ids_are_random_hex(self):
        assert new_trace_id() != new_trace_id()
        assert len(new_trace_id()) == 16
        assert len(new_span_id()) == 8

    def test_child_chains_trace_and_parent(self):
        root = Span("client.decide", service="client")
        child = root.child("router.forward")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_finish_files_into_store_once(self):
        store = SpanStore()
        span = Span("op", store=store)
        span.finish(duration_ms=5.0)
        span.finish(duration_ms=99.0)  # idempotent
        (stored,) = store.get(span.trace_id)
        assert stored["duration_ms"] == 5.0
        assert stored["name"] == "op"

    def test_store_span_returns_none_for_untraced_context(self):
        store = SpanStore()
        assert store.span("server.decide", None) is None
        assert store.span("server.decide", {}) is None
        assert store.span("server.decide", {"span_id": "xx"}) is None

    def test_store_span_continues_wire_context(self):
        store = SpanStore()
        context = {"trace_id": "t" * 16, "span_id": "p" * 8}
        span = store.span("server.decide", context, service="server")
        span.finish()
        (stored,) = store.get("t" * 16)
        assert stored["parent_id"] == "p" * 8
        assert stored["service"] == "server"

    def test_store_evicts_oldest_trace(self):
        store = SpanStore(max_traces=2)
        for index in range(3):
            store.add({"trace_id": f"trace-{index}", "name": "op"})
        assert store.trace_ids() == ["trace-1", "trace-2"]
        assert store.num_evicted_traces == 1
        assert store.get("trace-0") == []

    def test_store_caps_spans_per_trace(self):
        store = SpanStore(max_spans_per_trace=2)
        for index in range(5):
            store.add({"trace_id": "t", "name": f"op{index}"})
        assert len(store.get("t")) == 2


# ------------------------------------------------------------------- flight
class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=3, service="s")
        for index in range(5):
            recorder.record("decision", index=index)
        events = recorder.events()
        assert [event["index"] for event in events] == [2, 3, 4]
        assert recorder.num_events == 5

    def test_dump_payload_and_stats(self):
        recorder = FlightRecorder(capacity=8, service="shard-0")
        recorder.record("breaker_open")
        payload = recorder.dump("slo_breaker_open")
        assert payload["service"] == "shard-0"
        assert payload["reason"] == "slo_breaker_open"
        assert payload["events"][0]["kind"] == "breaker_open"
        stats = recorder.stats()
        assert stats["num_dumps"] == 1
        assert stats["last_dump_reason"] == "slo_breaker_open"

    def test_dump_writes_artifact_when_dir_configured(self, tmp_path):
        recorder = FlightRecorder(service="shard-1", dump_dir=str(tmp_path))
        recorder.record("policy_swap", from_version=1, to_version=2)
        payload = recorder.dump("shard_death")
        assert payload["path"].endswith("flight-shard-1-1.json")
        on_disk = json.loads((tmp_path / "flight-shard-1-1.json").read_text())
        assert on_disk["reason"] == "shard_death"
        assert on_disk["events"][0]["kind"] == "policy_swap"

    def test_dump_never_raises_on_bad_dir(self):
        recorder = FlightRecorder(
            service="s", dump_dir="/proc/definitely-not-writable/x"
        )
        recorder.record("decision")
        payload = recorder.dump("on_demand")
        assert "path" not in payload
        assert payload["events"]


# ------------------------------------------------------------------ logging
class TestStructuredLogging:
    def test_events_are_single_line_json(self):
        stream = io.StringIO()
        logger = configure_logging(stream=stream, logger_name="repro.test_json")
        log_event(logger, "session_open", session_id="s1", num_executors=4)
        (line,) = stream.getvalue().strip().splitlines()
        record = json.loads(line)
        assert record["event"] == "session_open"
        assert record["session_id"] == "s1"
        assert record["level"] == "info"

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        first = configure_logging(stream=stream, logger_name="repro.test_idem")
        second = configure_logging(stream=stream, logger_name="repro.test_idem")
        assert first is second
        assert len(first.handlers) == 1

    def test_unconfigured_logger_stays_dark(self):
        logger = get_logger("test_dark_namespace")
        logger.setLevel(stdlib_logging.ERROR)
        # No handler, level above INFO: log_event must be a cheap no-op.
        log_event(logger, "ignored", detail="x")


# -------------------------------------------------------------- stage clock
class TestStageClock:
    def mark_all(self, clock):
        clock.mark()
        clock.mark()
        clock.mark()
        return clock.finish()

    def test_untraced_clock_accumulates_timings_only(self):
        timings = StageTimings()
        durations = self.mark_all(timings.clock())
        assert len(durations) == len(StageTimings.STAGES)
        assert timings.num_steps == 1
        snapshot = timings.snapshot()
        assert set(snapshot["stages"]) == set(StageTimings.STAGES)

    def test_traced_clock_emits_one_child_span_per_stage(self):
        store = SpanStore()
        parent = Span("broker.decide", service="server", store=store)
        timings = StageTimings()
        durations = self.mark_all(timings.clock(parent_spans=(parent,)))
        parent.finish()
        spans = store.get(parent.trace_id)
        stage_spans = [s for s in spans if s["name"].startswith("stage.")]
        assert [s["name"] for s in stage_spans] == [
            "stage." + stage for stage in StageTimings.STAGES
        ]
        for span, duration in zip(stage_spans, durations):
            assert span["parent_id"] == parent.span_id
            assert span["duration_ms"] == pytest.approx(duration * 1e3)
        # Stage children tile the parent window: consecutive start times.
        starts = [s["start_time"] for s in stage_spans]
        assert starts == sorted(starts)

    def test_none_parents_are_filtered(self):
        timings = StageTimings()
        clock = timings.clock(parent_spans=(None, None))
        self.mark_all(clock)
        assert timings.num_steps == 1

    def test_wrong_mark_count_raises(self):
        timings = StageTimings()
        clock = timings.clock()
        clock.mark()
        with pytest.raises(RuntimeError, match="expected 4"):
            clock.finish()
