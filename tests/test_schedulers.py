"""Unit tests for the baseline scheduling heuristics (§7.1)."""

import numpy as np
import pytest

from repro.schedulers import (
    ALPHA_SWEEP,
    FairScheduler,
    FIFOScheduler,
    GrapheneScheduler,
    NaiveWeightedFairScheduler,
    RandomScheduler,
    SJFCPScheduler,
    StaticOrderScheduler,
    TetrisScheduler,
    WeightedFairScheduler,
    critical_path_node,
    exhaustive_search,
)
from repro.simulator import (
    DurationModelConfig,
    SchedulingEnvironment,
    SimulatorConfig,
    multi_resource_config,
)
from repro.simulator.multi_resource import assign_memory_requests
from repro.workloads import batched_arrivals, chain_job, sample_tpch_jobs
from repro.experiments.runner import run_scheduler_on_jobs, tune_weighted_fair


def make_observation(num_jobs=3, num_executors=10, seed=0):
    """Build a live observation from a freshly reset environment."""
    rng = np.random.default_rng(seed)
    jobs = batched_arrivals(sample_tpch_jobs(num_jobs, rng, sizes=(2.0, 5.0)))
    env = SchedulingEnvironment(SimulatorConfig(num_executors=num_executors, seed=seed))
    observation = env.reset(jobs)
    return env, observation


ALL_SCHEDULERS = [
    FIFOScheduler,
    SJFCPScheduler,
    FairScheduler,
    NaiveWeightedFairScheduler,
    lambda: WeightedFairScheduler(alpha=-1.0),
    GrapheneScheduler,
    TetrisScheduler,
    RandomScheduler,
]


class TestSchedulerContract:
    @pytest.mark.parametrize("factory", ALL_SCHEDULERS)
    def test_returns_valid_action_on_live_observation(self, factory):
        _, observation = make_observation()
        scheduler = factory()
        scheduler.reset()
        action = scheduler.schedule(observation)
        assert action is not None
        assert action.node in observation.schedulable_nodes
        assert action.parallelism_limit >= 1

    @pytest.mark.parametrize("factory", ALL_SCHEDULERS)
    def test_completes_a_batch(self, factory):
        rng = np.random.default_rng(3)
        jobs = batched_arrivals(sample_tpch_jobs(3, rng, sizes=(2.0, 5.0)))
        result = run_scheduler_on_jobs(
            factory(), jobs, config=SimulatorConfig(num_executors=6, seed=0), seed=1
        )
        assert result.all_finished


class TestFIFO:
    def test_prefers_earliest_arrival(self):
        env, observation = make_observation(num_jobs=3)
        # Shift arrival times so ordering is unambiguous.
        for offset, job in enumerate(observation.job_dags):
            job.arrival_time = float(offset)
        action = FIFOScheduler().schedule(observation)
        assert action.node.job is observation.job_dags[0]

    def test_executor_cap_limits_parallelism(self):
        _, observation = make_observation(num_jobs=1, num_executors=10)
        action = FIFOScheduler(executor_cap=3).schedule(observation)
        assert action.parallelism_limit <= max(3, 1)

    def test_returns_none_without_schedulable_nodes(self):
        _, observation = make_observation()
        observation.schedulable_nodes = []
        assert FIFOScheduler().schedule(observation) is None


class TestSJFCP:
    def test_prefers_smallest_remaining_work(self):
        _, observation = make_observation(num_jobs=3)
        smallest = min(observation.job_dags, key=lambda j: j.remaining_work)
        action = SJFCPScheduler().schedule(observation)
        assert action.node.job is smallest

    def test_follows_critical_path_within_job(self):
        _, observation = make_observation(num_jobs=1)
        action = SJFCPScheduler().schedule(observation)
        job_nodes = [n for n in observation.schedulable_nodes if n.job is action.node.job]
        assert action.node is critical_path_node(job_nodes)


class TestFairFamily:
    def test_alpha_sweep_contains_paper_range(self):
        assert min(ALPHA_SWEEP) == pytest.approx(-2.0)
        assert max(ALPHA_SWEEP) == pytest.approx(2.0)
        assert len(ALPHA_SWEEP) == 41

    def test_simple_fair_is_alpha_zero(self):
        assert FairScheduler().alpha == 0.0
        assert NaiveWeightedFairScheduler().alpha == 1.0

    def test_fair_spreads_executors_across_jobs(self):
        rng = np.random.default_rng(5)
        jobs = batched_arrivals(sample_tpch_jobs(4, rng, sizes=(10.0,)))
        result = run_scheduler_on_jobs(
            FairScheduler(), jobs, config=SimulatorConfig(num_executors=8, seed=0), seed=0
        )
        # Every job must have run at least one task before the last job finishes
        # its first task (i.e. fair sharing rather than strict sequencing).
        first_starts = {}
        for record in result.timeline:
            first_starts.setdefault(record.job_name, record.start_time)
        assert len(first_starts) == 4
        assert max(first_starts.values()) < result.makespan / 2

    def test_weighted_fair_shares_proportional_to_weight(self):
        from repro.workloads import make_tpch_job

        jobs = batched_arrivals(
            [make_tpch_job(9, 100.0, name="big"), make_tpch_job(9, 2.0, name="small")]
        )
        env = SchedulingEnvironment(SimulatorConfig(num_executors=10, seed=0))
        observation = env.reset(jobs)
        scheduler = WeightedFairScheduler(alpha=1.0)
        shares = scheduler._shares(observation)
        by_name = {job.name: shares[job] for job in observation.job_dags}
        assert by_name["big"] > by_name["small"]
        assert sum(shares.values()) == pytest.approx(10.0)

    def test_tune_weighted_fair_picks_best_alpha(self):
        rng = np.random.default_rng(7)
        jobs = batched_arrivals(sample_tpch_jobs(5, rng, sizes=(2.0, 20.0)))
        config = SimulatorConfig(num_executors=10, seed=0)
        best, best_jct, by_alpha = tune_weighted_fair(
            jobs, config=config, alphas=(-1.0, 0.0, 1.0)
        )
        assert best_jct == pytest.approx(min(by_alpha.values()))
        assert by_alpha[best.alpha] == pytest.approx(best_jct)


class TestTetrisAndGraphene:
    def test_tetris_picks_schedulable_node(self):
        config = multi_resource_config(total_executors=8, seed=0)
        rng = np.random.default_rng(0)
        jobs = batched_arrivals(sample_tpch_jobs(3, rng, sizes=(2.0, 5.0)))
        assign_memory_requests(jobs, seed=0)
        env = SchedulingEnvironment(config)
        observation = env.reset(jobs)
        action = TetrisScheduler().schedule(observation)
        assert action.node in observation.schedulable_nodes
        assert action.executor_class is None or action.executor_class.fits(action.node)

    def test_graphene_troublesome_detection(self):
        rng = np.random.default_rng(1)
        jobs = sample_tpch_jobs(1, rng, sizes=(100.0,))
        scheduler = GrapheneScheduler(troublesome_threshold=0.5)
        troublesome = scheduler._troublesome_nodes(jobs[0])
        assert troublesome  # the biggest stage always has score 1.0 >= threshold
        all_ids = {node.node_id for node in jobs[0].nodes}
        assert troublesome <= all_ids

    def test_graphene_threshold_validation(self):
        with pytest.raises(ValueError):
            GrapheneScheduler(troublesome_threshold=1.5)

    def test_graphene_completes_multi_resource_batch(self):
        config = multi_resource_config(total_executors=8, seed=0)
        rng = np.random.default_rng(2)
        jobs = batched_arrivals(sample_tpch_jobs(3, rng, sizes=(2.0, 5.0)))
        assign_memory_requests(jobs, seed=1)
        result = run_scheduler_on_jobs(GrapheneScheduler(), jobs, config=config, seed=0)
        assert result.all_finished


class TestStaticOrderAndExhaustive:
    def test_static_order_respects_given_order(self):
        jobs = [
            chain_job(1, num_tasks=4, task_duration=1.0, name="late"),
            chain_job(1, num_tasks=4, task_duration=1.0, name="early"),
        ]
        jobs = batched_arrivals(jobs)
        config = SimulatorConfig(
            num_executors=2, duration=DurationModelConfig().simplified(), seed=0
        )
        result = run_scheduler_on_jobs(StaticOrderScheduler(["early", "late"]), jobs, config=config)
        first_start = {}
        for record in result.timeline:
            first_start.setdefault(record.job_name, record.start_time)
        assert first_start["early"] < first_start["late"]

    def test_exhaustive_search_finds_sjf_order(self):
        durations = {"a": 1.0, "b": 5.0, "c": 3.0}

        def evaluate(order):
            # Average completion time of sequential jobs with the given durations.
            completion, total = 0.0, 0.0
            for name in order:
                completion += durations[name]
                total += completion
            return total / len(order)

        best_order, best_score, scores = exhaustive_search(durations, evaluate)
        assert best_order == ("a", "c", "b")
        assert len(scores) == 6
        assert best_score == pytest.approx(min(scores.values()))

    def test_exhaustive_search_respects_cap(self):
        _, _, scores = exhaustive_search("abc", lambda order: 1.0, max_permutations=2)
        assert len(scores) == 2

    def test_exhaustive_search_requires_jobs(self):
        with pytest.raises(ValueError):
            exhaustive_search([], lambda order: 0.0)


class TestRandomScheduler:
    def test_reset_restores_seed(self):
        env, observation = make_observation()
        scheduler = RandomScheduler(seed=5)
        first = scheduler.schedule(observation)
        scheduler.reset()
        second = scheduler.schedule(observation)
        assert first.node is second.node
        assert first.parallelism_limit == second.parallelism_limit
