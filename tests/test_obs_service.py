"""Integration tests for telemetry threaded through the serving stack.

What the observability layer guarantees *in situ* (issue 9):

* **metrics scrape** — one data-plane ``metrics`` request returns every core
  series (decision counts, policy version, feature-refresh mix, per-stage
  timings, the decision-latency histogram) as JSON and as Prometheus text,
  on both transports, and the fleet control plane merges router + per-shard
  registries with ``shard="N"`` labels;
* **trace propagation** — a single traced decision reconstructs end-to-end
  from one trace id: ``client.decide → server.decide → broker.decide →
  stage.*`` against a single server, plus the ``router.forward`` hop (with
  correct parentage across three processes) against a 2-shard fleet;
* **flight recorder** — an injected shard kill auto-dumps the router's ring
  (reason ``shard_death``) and an SLO-guard rollback auto-dumps the server's
  (reason ``slo_guard_rollback``), both as JSON artifacts on disk;
* **schema unification** — the session stats carry the canonical
  ``latency_ms`` histogram next to the deprecated seconds-based ``latency``.
"""

import json

import pytest

from test_online_learning import make_clusters, run_rounds

from repro.core import CheckpointStore, DecimaAgent, DecimaConfig, FeatureConfig
from repro.learning import (
    OnlineLearningConfig,
    OnlineLearningManager,
    OnlineTrainerConfig,
)
from repro.service import (
    ControlClient,
    PolicyClient,
    PolicyServer,
    ServingFleet,
    drive_episode,
)
from repro.simulator import SchedulingEnvironment, SimulatorConfig
from repro.workloads import batched_arrivals, sample_tpch_jobs

import numpy as np


def tiny_agent(seed=0):
    return DecimaAgent(
        total_executors=6,
        config=DecimaConfig(
            seed=seed, hidden_sizes=(16, 8), embedding_dim=4,
            feature=FeatureConfig(),
        ),
    )


def tiny_jobs(seed: int):
    rng = np.random.default_rng(seed)
    return batched_arrivals(sample_tpch_jobs(2, rng, sizes=(2.0,)))


def serve_episode(address, seed=0, trace_every=None, max_decisions=None):
    env = SchedulingEnvironment(SimulatorConfig(num_executors=6, seed=seed))
    with PolicyClient(*address) as client:
        client.hello(num_executors=6, seed=seed)
        summary = drive_episode(
            client, env, tiny_jobs(seed), seed=seed,
            max_decisions=max_decisions, trace_every=trace_every,
        )
    return summary


def sample_value(snapshot, name, labels=None):
    for sample in (snapshot.get(name) or {}).get("samples", []):
        if labels is None or all(
            sample.get("labels", {}).get(k) == v for k, v in labels.items()
        ):
            return sample.get("value", sample.get("count"))
    return None


# ------------------------------------------------------------ metrics scrape
class TestMetricsEndpoint:
    def test_json_scrape_carries_core_series(self, server_factory):
        server = server_factory(tiny_agent())
        summary = serve_episode(server.address, seed=0)
        with PolicyClient(*server.address) as client:
            client.hello(num_executors=6)
            reply = client.metrics()
        assert reply["format"] == "json"
        snapshot = reply["metrics"]
        assert sample_value(snapshot, "decisions_total") == summary["decisions"]
        assert sample_value(snapshot, "policy_version") == 1
        assert sample_value(snapshot, "fallback_decisions_total") == 0
        # Feature-refresh mix and stage timings made it out of the hot path.
        assert sample_value(snapshot, "graph_delta_refreshes_total") > 0
        for stage in ("features", "propagation", "policy", "sampling"):
            assert sample_value(
                snapshot, "stage_mean_ms", {"stage": stage}
            ) is not None
        # The latency histogram observed every decision.
        (latency,) = snapshot["decision_latency_ms"]["samples"]
        assert latency["count"] == summary["decisions"]

    def test_prometheus_scrape_is_text_exposition(self, server_factory):
        server = server_factory(tiny_agent())
        serve_episode(server.address, seed=0, max_decisions=5)
        with PolicyClient(*server.address) as client:
            client.hello(num_executors=6)
            reply = client.metrics(format="prometheus")
        body = reply["body"]
        assert "# TYPE decima_decisions_total counter" in body
        assert "decima_decisions_total 5.0" in body
        assert 'decima_stage_mean_ms{stage="features"}' in body
        assert 'decima_decision_latency_ms_bucket{le="+Inf"} 5' in body

    def test_scrape_does_not_change_decisions(self, server_factory):
        """Telemetry is read-only: scraping mid-session leaves the decision
        stream identical to an unscraped run (the golden-trace guarantee,
        socket edition)."""
        baseline_server = server_factory(tiny_agent())
        baseline = serve_episode(baseline_server.address, seed=3)
        server = server_factory(tiny_agent())
        env = SchedulingEnvironment(SimulatorConfig(num_executors=6, seed=3))
        with PolicyClient(*server.address) as client:
            client.hello(num_executors=6, seed=3)
            client.metrics()
            client.metrics(format="prometheus")
            summary = drive_episode(client, env, tiny_jobs(3), seed=3)
            client.metrics()
        assert summary["decisions"] == baseline["decisions"]
        assert summary["sources"] == baseline["sources"]

    def test_session_stats_carry_canonical_latency_ms(self, server_factory):
        server = server_factory(tiny_agent())
        with PolicyClient(*server.address) as client:
            client.hello(num_executors=6, seed=0)
            env = SchedulingEnvironment(SimulatorConfig(num_executors=6, seed=0))
            drive_episode(client, env, tiny_jobs(0), seed=0, max_decisions=4)
            stats = client.stats()
        session = stats["session"]
        assert session["latency_ms"]["count"] == 4
        # Deprecated seconds-based key still present for old dashboards.
        assert session["latency"]["count"] == 4
        assert session["latency"]["p50"] == pytest.approx(
            session["latency_ms"]["p50"] / 1000.0
        )


# ---------------------------------------------------------- trace propagation
class TestTracePropagation:
    def test_single_server_chain(self, server_factory):
        server = server_factory(tiny_agent())
        env = SchedulingEnvironment(SimulatorConfig(num_executors=6, seed=0))
        with PolicyClient(*server.address) as client:
            client.hello(num_executors=6, seed=0)
            observation = env.reset(tiny_jobs(0), seed=0)
            reply = client.decide(observation, trace=True)
            assert "trace_id" in reply
            trace = client.trace(reply["trace_id"])
        spans = {span["name"]: span for span in trace["spans"]}
        assert set(spans) == {
            "client.decide", "server.decide", "broker.decide",
            "stage.features", "stage.propagation", "stage.policy",
            "stage.sampling",
        }
        # Parentage: client -> server -> broker -> stages.
        assert spans["client.decide"]["parent_id"] is None
        assert spans["server.decide"]["parent_id"] == spans["client.decide"]["span_id"]
        assert spans["broker.decide"]["parent_id"] == spans["server.decide"]["span_id"]
        for stage in ("features", "propagation", "policy", "sampling"):
            assert spans[f"stage.{stage}"]["parent_id"] == spans["broker.decide"]["span_id"]
        # Every span finished with a measured duration and the right service.
        for span in trace["spans"]:
            assert span["duration_ms"] >= 0.0
        assert spans["client.decide"]["service"] == "client"
        assert spans["broker.decide"]["tags"]["source"] == "policy"

    def test_untraced_decides_store_nothing(self, server_factory):
        server = server_factory(tiny_agent())
        serve_episode(server.address, seed=0, max_decisions=3)
        with PolicyClient(*server.address) as client:
            client.hello(num_executors=6)
            snapshot = client.metrics()["metrics"]
        assert sample_value(snapshot, "trace_spans_total") == 0

    def test_two_shard_fleet_chain(self, tmp_path):
        """The acceptance criterion: one loadgen decision against a 2-shard
        fleet reconstructs end-to-end (client → router → shard → broker →
        stages) from a single control-plane query of its trace id."""
        with ServingFleet(tiny_agent(), num_shards=2) as fleet:
            summary = serve_episode(
                fleet.address, seed=0, trace_every=2, max_decisions=4
            )
            assert len(summary["trace_ids"]) == 2
            with ControlClient(*fleet.control_address) as control:
                trace = control.trace(summary["trace_ids"][0])
        spans = {span["name"]: span for span in trace["spans"]}
        assert set(spans) == {
            "client.decide", "router.forward", "server.decide",
            "broker.decide", "stage.features", "stage.propagation",
            "stage.policy", "stage.sampling",
        }
        # The chain crosses three processes; parent ids must still line up.
        assert spans["client.decide"]["parent_id"] is None
        assert spans["router.forward"]["parent_id"] == spans["client.decide"]["span_id"]
        assert spans["server.decide"]["parent_id"] == spans["router.forward"]["span_id"]
        assert spans["broker.decide"]["parent_id"] == spans["server.decide"]["span_id"]
        assert spans["stage.policy"]["parent_id"] == spans["broker.decide"]["span_id"]
        assert spans["router.forward"]["service"] == "router"
        assert spans["server.decide"]["service"].startswith("shard-")
        # Spans come back merged and sorted by start time.
        starts = [span["start_time"] for span in trace["spans"]]
        assert starts == sorted(starts)

    def test_fleet_control_plane_metrics_merge_shards(self):
        with ServingFleet(tiny_agent(), num_shards=2) as fleet:
            serve_episode(fleet.address, seed=1, max_decisions=4)
            with ControlClient(*fleet.control_address) as control:
                merged = control.metrics()
                prometheus = control.metrics(format="prometheus")
        assert {shard["index"] for shard in merged["shards"]} == {0, 1}
        total = sum(
            sample_value(shard["metrics"], "decisions_total")
            for shard in merged["shards"]
        )
        assert total == 4
        assert sample_value(merged["router"], "router_healthy_shards") == 2
        body = prometheus["body"]
        assert 'decima_decisions_total{shard="0"}' in body
        assert 'decima_decisions_total{shard="1"}' in body
        assert 'decima_router_healthy_shards{service="router"} 2.0' in body


# -------------------------------------------------------------- flight dumps
class TestFlightRecorderDumps:
    def test_shard_kill_dumps_router_ring(self, tmp_path):
        flight_dir = tmp_path / "flight"
        with ServingFleet(
            tiny_agent(), num_shards=2, flight_dir=str(flight_dir)
        ) as fleet:
            env = SchedulingEnvironment(SimulatorConfig(num_executors=6, seed=0))
            with PolicyClient(*fleet.address) as client:
                client.hello(num_executors=6, seed=0)
                observation = env.reset(tiny_jobs(0), seed=0)
                client.decide(observation)
                victim_shard = None
                with ControlClient(*fleet.control_address) as control:
                    for shard in control.health()["shards"]:
                        if shard["active_sessions"]:
                            victim_shard = shard["index"]
                fleet.kill_shard(victim_shard)
                # The next decide detects the death and must auto-dump.
                with pytest.raises(Exception):
                    client.decide(observation)
            dumps = sorted(flight_dir.glob("flight-router-*.json"))
            assert dumps, "shard death did not dump the router flight ring"
            payload = json.loads(dumps[0].read_text())
            assert payload["reason"] == "shard_death"
            kinds = [event["kind"] for event in payload["events"]]
            assert "shard_failed" in kinds
            # The on-demand control-plane dump still works afterwards.
            with ControlClient(*fleet.control_address) as control:
                on_demand = control.flight(reason="post_mortem")
            assert on_demand["router"]["reason"] == "post_mortem"
            live = [s for s in on_demand["shards"] if s["recorder"] is not None]
            assert len(live) == 1  # the surviving shard answered

    def test_slo_guard_rollback_dumps_server_ring(self, tmp_path):
        flight_dir = tmp_path / "flight"
        server = PolicyServer(
            tiny_agent(seed=0), slo_ms=10_000.0, flight_dir=str(flight_dir)
        )
        manager = OnlineLearningManager(
            server,
            CheckpointStore(tmp_path / "store"),
            OnlineLearningConfig(
                episodes_per_update=4,
                segment_steps=4,
                guard_min_decisions=4,
                trainer_process=False,
                trainer=OnlineTrainerConfig(learning_rate=0.05),
            ),
        )
        clusters = make_clusters(3)
        with manager:
            run_rounds(server.broker, clusters, max_rounds=10)
            status = manager.maybe_update()
            assert status["action"] == "update"
            # The fresh version "regresses": a breaker open during probation.
            run_rounds(server.broker, clusters, max_rounds=1)
            server.broker.breaker.num_opens += 1
            run_rounds(server.broker, clusters, max_rounds=2)
            status = manager.maybe_update()
            assert status["action"] == "rollback"
        dumps = sorted(flight_dir.glob("flight-server-*.json"))
        assert dumps, "rollback did not dump the server flight ring"
        payload = json.loads(dumps[-1].read_text())
        assert payload["reason"] == "slo_guard_rollback"
        kinds = [event["kind"] for event in payload["events"]]
        assert "policy_rollback" in kinds
        assert "checkpoint_installed" in kinds
        # The learning collector surfaced the rollback on the server registry.
        snapshot = server.metrics.snapshot()
        assert sample_value(snapshot, "learning_rollbacks_total") == 1
        assert sample_value(snapshot, "learning_updates_total") == 1
