"""Shared fixed-seed factories for the test suite.

Consolidates the environment/agent/training factories that used to be
duplicated across ``test_sparse_gnn_equivalence.py``,
``test_parallel_rollout.py`` and ``test_service.py``.  They live in this
uniquely named module (not ``conftest.py`` itself — ``benchmarks/`` has its
own conftest and both directories share ``sys.path``) and are imported with
``from _helpers import ...``; ``tests/conftest.py`` additionally exposes
them as factory fixtures for tests that prefer injection.
"""

import numpy as np

from repro.core import DecimaAgent, DecimaConfig
from repro.experiments.training import tpch_batch_factory
from repro.simulator import SchedulingEnvironment, SimulatorConfig
from repro.workloads import batched_arrivals, poisson_arrivals, sample_tpch_jobs


def make_tpch_env(
    num_jobs=3, num_executors=8, seed=0, staggered=False, sizes=(2.0, 5.0)
):
    """A seeded TPC-H episode, already reset: returns ``(env, observation)``.

    ``staggered`` switches from batched (all at t=0) to Poisson arrivals so
    the live-job set changes mid-episode.
    """
    rng = np.random.default_rng(seed)
    jobs = sample_tpch_jobs(num_jobs, rng, sizes=sizes)
    if staggered:
        jobs = poisson_arrivals(jobs, 60.0, rng)
    else:
        jobs = batched_arrivals(jobs)
    env = SchedulingEnvironment(SimulatorConfig(num_executors=num_executors, seed=seed))
    return env, env.reset(jobs)


def make_decima_agent(
    total_executors=8, seed=0, sparse=True, use_graph_cache=None, **overrides
):
    """A fixed-seed Decima agent; ``use_graph_cache`` follows ``sparse`` by
    default (the fast path pairs both switches, the oracle disables both)."""
    if use_graph_cache is None:
        use_graph_cache = sparse
    return DecimaAgent(
        total_executors=total_executors,
        config=DecimaConfig(
            seed=seed,
            sparse_message_passing=sparse,
            use_graph_cache=use_graph_cache,
            **overrides,
        ),
    )


def make_training_setup(seed=0, num_executors=5, num_jobs=2, sizes=(2.0,)):
    """The tiny fixed-seed training triple ``(config, agent, job_factory)``."""
    config = SimulatorConfig(num_executors=num_executors, seed=0)
    agent = make_decima_agent(total_executors=num_executors, seed=seed)
    factory = tpch_batch_factory(num_jobs, sizes=sizes)
    return config, agent, factory
