"""Error-path coverage for checkpoint loading, plus executor-churn edge cases
at episode boundaries."""

import json

import numpy as np
import pytest

from _helpers import make_decima_agent
from repro.core import (
    load_agent,
    load_latest,
    parameter_fingerprint,
    save_agent,
)
from repro.simulator import SchedulingEnvironment, SimulatorConfig
from repro.simulator.environment import Action, ExecutorChurnEvent
from repro.workloads import batched_arrivals, sample_tpch_jobs


# ------------------------------------------------------------ checkpoint errors
class TestCheckpointErrorPaths:
    def agent(self):
        return make_decima_agent(total_executors=4, seed=1, embedding_dim=4,
                                 hidden_sizes=(8,))

    def test_load_latest_missing_pointer(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="latest.json"):
            load_latest(tmp_path)

    def test_load_latest_corrupt_pointer_json(self, tmp_path):
        save_agent(self.agent(), tmp_path / "model.npz")
        (tmp_path / "latest.json").write_text("{not json")
        with pytest.raises(ValueError, match="corrupt"):
            load_latest(tmp_path)

    def test_load_latest_pointer_missing_checkpoint_entry(self, tmp_path):
        save_agent(self.agent(), tmp_path / "model.npz")
        (tmp_path / "latest.json").write_text(json.dumps({"something": "else"}))
        with pytest.raises(ValueError, match="missing the 'checkpoint' entry"):
            load_latest(tmp_path)

    def test_load_latest_pointer_to_missing_file(self, tmp_path):
        save_agent(self.agent(), tmp_path / "model.npz")
        pointer = json.loads((tmp_path / "latest.json").read_text())
        pointer["checkpoint"] = "gone.npz"
        (tmp_path / "latest.json").write_text(json.dumps(pointer))
        with pytest.raises(FileNotFoundError):
            load_latest(tmp_path)

    def test_load_latest_fingerprint_mismatch(self, tmp_path):
        """A checkpoint swapped behind the pointer's back fails loudly."""
        agent = self.agent()
        save_agent(agent, tmp_path / "model.npz")
        other = self.agent()
        for parameter in other.parameters():
            parameter.data += 1.0
        # Overwrite the checkpoint without refreshing the pointer.
        save_agent(other, tmp_path / "model.npz", update_latest=False)
        with pytest.raises(ValueError, match="fingerprint"):
            load_latest(tmp_path)

    def test_load_latest_without_fingerprint_entry_still_loads(self, tmp_path):
        """Old pointers (no fingerprint) keep working — the check is opt-in
        by data, not a format break."""
        agent = self.agent()
        save_agent(agent, tmp_path / "model.npz")
        pointer = json.loads((tmp_path / "latest.json").read_text())
        del pointer["fingerprint"]
        (tmp_path / "latest.json").write_text(json.dumps(pointer))
        loaded = load_latest(tmp_path)
        assert parameter_fingerprint(loaded) == parameter_fingerprint(agent)

    def test_load_agent_rejects_archive_without_meta(self, tmp_path):
        path = tmp_path / "bare.npz"
        np.savez(path, weights=np.zeros(3))
        with pytest.raises(ValueError, match="__meta__"):
            load_agent(path)

    def test_load_agent_rejects_corrupt_meta_json(self, tmp_path):
        path = tmp_path / "corrupt.npz"
        np.savez(path, __meta__="{definitely not json", weights=np.zeros(3))
        with pytest.raises(ValueError, match="metadata is corrupt"):
            load_agent(path)

    def test_load_agent_rejects_meta_without_total_executors(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, __meta__=json.dumps({"config": {}}), weights=np.zeros(3))
        with pytest.raises(ValueError, match="total_executors"):
            load_agent(path)


# ------------------------------------------------------------ churn edge cases
def tpch_jobs(num_jobs=2, seed=0, sizes=(2.0,)):
    return batched_arrivals(
        sample_tpch_jobs(num_jobs, np.random.default_rng(seed), sizes=sizes)
    )


def run_fifo_episode(env, jobs, seed=None):
    from repro.schedulers import FIFOScheduler

    scheduler = FIFOScheduler()
    observation = env.reset(jobs, seed=seed)
    done = False
    while not done:
        observation, _, done = env.step(scheduler.schedule(observation))
    return env.result()


class TestChurnAtEpisodeBoundaries:
    def test_removal_at_time_zero_applies_before_first_decision(self):
        """A t=0 removal is visible in the very first observation."""
        config = SimulatorConfig(
            num_executors=4,
            seed=0,
            churn_events=(
                ExecutorChurnEvent(time=0.0, kind="executor_removed", count=2),
            ),
        )
        env = SchedulingEnvironment(config)
        observation = env.reset(tpch_jobs())
        assert observation.total_executors == 2
        assert observation.num_free_executors == 2

    def test_removal_at_time_zero_clamps_to_one_executor(self):
        config = SimulatorConfig(
            num_executors=3,
            seed=0,
            churn_events=(
                ExecutorChurnEvent(time=0.0, kind="executor_removed", count=99),
            ),
        )
        env = SchedulingEnvironment(config)
        observation = env.reset(tpch_jobs())
        assert observation.total_executors == 1
        result = run_fifo_episode(env, tpch_jobs())
        assert not result.unfinished_jobs

    def test_churn_after_last_completion_never_stretches_wall_time(self):
        """Events far past the workload are dropped at the episode boundary."""
        late = (
            ExecutorChurnEvent(time=1e7, kind="executor_added", count=5),
            ExecutorChurnEvent(time=2e7, kind="executor_removed", count=1),
        )
        base = SimulatorConfig(num_executors=4, seed=0)
        env_plain = SchedulingEnvironment(base)
        plain = run_fifo_episode(env_plain, tpch_jobs())
        churned = SchedulingEnvironment(
            SimulatorConfig(num_executors=4, seed=0, churn_events=late)
        )
        with_churn = run_fifo_episode(churned, tpch_jobs())
        assert with_churn.wall_time == plain.wall_time
        assert len(with_churn.finished_jobs) == len(plain.finished_jobs)

    def test_churn_exactly_at_max_time_is_not_processed(self):
        config = SimulatorConfig(
            num_executors=2,
            seed=0,
            max_time=50.0,
            churn_events=(
                ExecutorChurnEvent(time=50.0, kind="executor_added", count=3),
            ),
        )
        env = SchedulingEnvironment(config)
        run_fifo_episode(env, tpch_jobs(num_jobs=3, sizes=(10.0,)))
        assert env.wall_time == 50.0
        assert env.num_active_executors == 2  # the add never fired

    def test_second_episode_replays_churn_identically(self):
        """reset() rebuilds the fleet AND re-queues churn: two consecutive
        episodes on one environment match a fresh environment bit-for-bit."""
        config = SimulatorConfig(
            num_executors=4,
            seed=0,
            churn_events=(
                ExecutorChurnEvent(time=5.0, kind="executor_removed", count=2),
                ExecutorChurnEvent(time=30.0, kind="executor_added", count=1),
            ),
        )
        reused = SchedulingEnvironment(config)
        run_fifo_episode(reused, tpch_jobs(), seed=7)
        second = run_fifo_episode(reused, tpch_jobs(), seed=7)
        fresh = run_fifo_episode(SchedulingEnvironment(config), tpch_jobs(), seed=7)
        assert second.wall_time == fresh.wall_time
        assert second.total_reward == fresh.total_reward
        assert [r.finish_time for r in second.timeline] == [
            r.finish_time for r in fresh.timeline
        ]

    def test_drained_executor_leaves_at_episode_end_without_rejoining(self):
        """An executor removed while busy drains its task and never returns,
        even when the episode ends right after."""
        config = SimulatorConfig(
            num_executors=2,
            seed=0,
            churn_events=(
                ExecutorChurnEvent(time=1.0, kind="executor_removed", count=1),
            ),
        )
        env = SchedulingEnvironment(config)
        observation = env.reset(tpch_jobs(num_jobs=1))
        node = observation.schedulable_nodes[0]
        # Saturate both executors before the removal fires.
        observation, _, done = env.step(Action(node=node, parallelism_limit=2))
        while not done:
            action = (
                Action(node=observation.schedulable_nodes[0], parallelism_limit=2)
                if observation.schedulable_nodes
                else None
            )
            observation, _, done = env.step(action)
        assert env.num_active_executors == 1
        removed = [e for e in env.executors if e.removed]
        assert removed and all(e.idle for e in removed)
        result = env.result()
        assert not result.unfinished_jobs
