"""Integration-level tests of the event-driven scheduling environment."""

import numpy as np
import pytest

from repro.schedulers import FairScheduler, FIFOScheduler, SJFCPScheduler
from repro.simulator import (
    Action,
    DurationModelConfig,
    SchedulingEnvironment,
    SimulatorConfig,
    default_executor_class,
    multi_resource_classes,
)
from repro.simulator.jobdag import JobDAG, Node
from repro.workloads import batched_arrivals, chain_job, fork_join_job, sample_tpch_jobs
from repro.experiments.runner import run_episode, run_scheduler_on_jobs


def simple_config(num_executors=4, **kwargs):
    return SimulatorConfig(
        num_executors=num_executors,
        duration=DurationModelConfig().simplified(),
        **kwargs,
    )


def greedy_first_node_policy(observation):
    """Always schedule the first schedulable node with maximum parallelism."""
    if not observation.schedulable_nodes:
        return None
    node = observation.schedulable_nodes[0]
    return Action(node=node, parallelism_limit=observation.total_executors)


def run_to_completion(environment, jobs, policy=greedy_first_node_policy, seed=0):
    observation = environment.reset(jobs, seed=seed)
    done = False
    while not done:
        action = policy(observation)
        observation, _, done = environment.step(action)
    return environment.result()


class TestBasicExecution:
    def test_single_chain_job_completes(self):
        env = SchedulingEnvironment(simple_config(num_executors=2))
        job = chain_job(3, num_tasks=2, task_duration=1.0)
        result = run_to_completion(env, [job])
        assert result.all_finished
        # 3 stages of 2 tasks on 2 executors, 1s each: 3 seconds end to end.
        assert result.makespan == pytest.approx(3.0)

    def test_task_conservation(self):
        env = SchedulingEnvironment(simple_config(num_executors=3))
        job = fork_join_job(3, tasks_per_branch=4)
        total_tasks = sum(node.num_tasks for node in job.nodes)
        result = run_to_completion(env, [job])
        assert len(result.timeline) == total_tasks

    def test_reset_requires_jobs(self):
        env = SchedulingEnvironment(simple_config())
        with pytest.raises(ValueError):
            env.reset([])

    def test_step_after_done_raises(self):
        env = SchedulingEnvironment(simple_config())
        run_to_completion(env, [chain_job(1)])
        with pytest.raises(RuntimeError):
            env.step(None)

    def test_invalid_reward_mode(self):
        with pytest.raises(ValueError):
            SchedulingEnvironment(SimulatorConfig(reward_mode="bogus"))

    def test_timeline_has_no_executor_overlap(self):
        env = SchedulingEnvironment(simple_config(num_executors=2))
        jobs = batched_arrivals(sample_tpch_jobs(3, np.random.default_rng(0), sizes=(2.0, 5.0)))
        result = run_to_completion(env, jobs)
        by_executor = {}
        for record in result.timeline:
            by_executor.setdefault(record.executor_id, []).append(record)
        for records in by_executor.values():
            records.sort(key=lambda r: r.start_time)
            for earlier, later in zip(records, records[1:]):
                assert later.start_time >= earlier.finish_time - 1e-9

    def test_dependencies_respected_in_timeline(self):
        env = SchedulingEnvironment(simple_config(num_executors=4))
        job = chain_job(3, num_tasks=2, task_duration=1.0)
        result = run_to_completion(env, [job])
        stage_start = {}
        stage_finish = {}
        for record in result.timeline:
            stage_start.setdefault(record.node_id, record.start_time)
            stage_start[record.node_id] = min(stage_start[record.node_id], record.start_time)
            stage_finish[record.node_id] = max(
                stage_finish.get(record.node_id, 0.0), record.finish_time
            )
        assert stage_start[1] >= stage_finish[0] - 1e-9
        assert stage_start[2] >= stage_finish[1] - 1e-9


class TestRewardsAndObjectives:
    def test_rewards_are_non_positive_for_jct(self):
        env = SchedulingEnvironment(simple_config(num_executors=2, reward_scale=1.0))
        job = chain_job(2, num_tasks=2, task_duration=1.0)
        observation = env.reset([job])
        rewards = []
        done = False
        while not done:
            observation, reward, done = env.step(greedy_first_node_policy(observation))
            rewards.append(reward)
        assert all(r <= 0 for r in rewards)
        # Total penalty equals the time-integral of jobs in system = JCT of the single job.
        assert sum(rewards) == pytest.approx(-env.result().finished_jobs[0].completion_duration())

    def test_makespan_reward_integrates_to_makespan(self):
        config = simple_config(num_executors=2, reward_scale=1.0, reward_mode="makespan")
        env = SchedulingEnvironment(config)
        jobs = [chain_job(2, num_tasks=2, task_duration=1.0), chain_job(1, num_tasks=2)]
        jobs = batched_arrivals(jobs)
        result = run_to_completion(env, jobs)
        assert -result.total_reward == pytest.approx(result.makespan)

    def test_reward_scale(self):
        config = simple_config(num_executors=2, reward_scale=0.001)
        env = SchedulingEnvironment(config)
        job = chain_job(1, num_tasks=1, task_duration=10.0)
        result = run_to_completion(env, [job])
        assert result.total_reward == pytest.approx(-0.01)


class TestSchedulingSemantics:
    def test_parallelism_limit_caps_assignment(self):
        env = SchedulingEnvironment(simple_config(num_executors=4))
        job = chain_job(1, num_tasks=8, task_duration=1.0)
        observation = env.reset([job])
        node = observation.schedulable_nodes[0]
        env.step(Action(node=node, parallelism_limit=2))
        assert job.num_executors == 2

    def test_limit_below_current_assigns_nothing_and_advances(self):
        env = SchedulingEnvironment(simple_config(num_executors=4))
        job = chain_job(1, num_tasks=8, task_duration=1.0)
        observation = env.reset([job])
        node = observation.schedulable_nodes[0]
        env.step(Action(node=node, parallelism_limit=2))
        before = env.wall_time
        env.step(Action(node=node, parallelism_limit=1))
        assert env.wall_time > before

    def test_executor_sticks_to_stage_until_exhausted(self):
        env = SchedulingEnvironment(simple_config(num_executors=1))
        job = chain_job(1, num_tasks=5, task_duration=1.0)
        result = run_to_completion(env, [job])
        # A single executor runs all 5 tasks back to back without agent help.
        assert result.num_actions < 5
        assert result.makespan == pytest.approx(5.0)

    def test_moving_delay_applied_across_jobs(self):
        config = SimulatorConfig(
            num_executors=1,
            duration=DurationModelConfig(
                enable_noise=False,
                enable_first_wave=False,
                enable_work_inflation=False,
                moving_delay=2.0,
            ),
        )
        env = SchedulingEnvironment(config)
        jobs = batched_arrivals([chain_job(1, num_tasks=1, task_duration=1.0, name="a"),
                                 chain_job(1, num_tasks=1, task_duration=1.0, name="b")])
        result = run_to_completion(env, jobs)
        # First job: 2s JVM start + 1s task; second job: another 2s move + 1s task.
        assert result.makespan == pytest.approx(6.0)

    def test_source_job_reported_for_locality(self):
        env = SchedulingEnvironment(simple_config(num_executors=1))
        job = fork_join_job(2, tasks_per_branch=1, task_duration=1.0)
        observation = env.reset([job])
        node = observation.schedulable_nodes[0]
        observation, _, _ = env.step(Action(node=node, parallelism_limit=1))
        assert observation.source_job is job

    def test_max_time_truncates_episode(self):
        config = simple_config(num_executors=1, max_time=2.5)
        env = SchedulingEnvironment(config)
        job = chain_job(1, num_tasks=10, task_duration=1.0)
        result = run_to_completion(env, [job])
        assert not result.all_finished
        assert env.wall_time == pytest.approx(2.5)

    def test_job_arrival_midway(self):
        config = simple_config(num_executors=2)
        env = SchedulingEnvironment(config)
        early = chain_job(1, num_tasks=4, task_duration=1.0, name="early")
        late = chain_job(1, num_tasks=2, task_duration=1.0, name="late")
        late.arrival_time = 1.5
        result = run_to_completion(env, [early, late])
        assert result.all_finished
        late_job = [j for j in result.finished_jobs if j.name == "late"][0]
        assert late_job.completion_time > 1.5

    def test_decline_with_pending_events_is_allowed(self):
        env = SchedulingEnvironment(simple_config(num_executors=2))
        job = chain_job(2, num_tasks=2, task_duration=1.0)
        observation = env.reset([job])
        node = observation.schedulable_nodes[0]
        observation, _, _ = env.step(Action(node=node, parallelism_limit=1))
        # Decline to schedule the second executor; time must advance, not deadlock.
        before = env.wall_time
        observation, _, done = env.step(None)
        assert done or env.wall_time >= before

    def test_forced_assignment_guarantees_liveness(self):
        env = SchedulingEnvironment(simple_config(num_executors=2))
        job = chain_job(1, num_tasks=2, task_duration=1.0)
        env.reset([job])
        # Decline forever: the environment force-assigns instead of deadlocking.
        done = False
        steps = 0
        while not done and steps < 50:
            _, _, done = env.step(None)
            steps += 1
        assert done
        assert env.forced_assignments > 0


class TestMultiResourceEnvironment:
    def multi_config(self):
        classes = multi_resource_classes()
        return SimulatorConfig(
            num_executors=4,
            executor_classes=[(cls, 1) for cls in classes],
            duration=DurationModelConfig().simplified(),
        )

    def test_tasks_only_run_on_fitting_executors(self):
        env = SchedulingEnvironment(self.multi_config())
        node = Node(0, num_tasks=4, task_duration=1.0, mem_request=0.8)
        job = JobDAG(nodes=[node], edges=[], name="memory-hungry")
        result = run_to_completion(env, [job])
        memories = {e.executor_id: e.executor_class.memory for e in env.executors}
        assert result.all_finished
        for record in result.timeline:
            assert memories[record.executor_id] >= 0.8

    def test_pinned_executor_class_respected(self):
        env = SchedulingEnvironment(self.multi_config())
        node = Node(0, num_tasks=1, task_duration=1.0, mem_request=0.2)
        job = JobDAG(nodes=[node], edges=[], name="pin")
        observation = env.reset([job])
        largest = max(observation.executor_classes, key=lambda c: c.memory)
        env.step(Action(node=node, parallelism_limit=1, executor_class=largest))
        # Run to completion and check which executor actually ran the task.
        while not env.done:
            env.step(None)
        memories = {e.executor_id: e.executor_class for e in env.executors}
        result = env.result()
        assert len(result.timeline) == 1
        assert memories[result.timeline[0].executor_id] == largest

    def test_unschedulable_node_deadlock_detected(self):
        env = SchedulingEnvironment(self.multi_config())
        node = Node(0, num_tasks=1, task_duration=1.0, mem_request=5.0)
        job = JobDAG(nodes=[node], edges=[], name="impossible")
        with pytest.raises(RuntimeError):
            run_to_completion(env, [job])


class TestWithHeuristics:
    @pytest.mark.parametrize("scheduler_cls", [FIFOScheduler, SJFCPScheduler, FairScheduler])
    def test_heuristics_complete_tpch_batch(self, scheduler_cls):
        jobs = batched_arrivals(sample_tpch_jobs(4, np.random.default_rng(1), sizes=(2.0, 5.0)))
        result = run_scheduler_on_jobs(
            scheduler_cls(), jobs, config=SimulatorConfig(num_executors=8, seed=0), seed=0
        )
        assert result.all_finished
        assert result.average_jct > 0

    def test_run_episode_records_delays(self):
        jobs = batched_arrivals(sample_tpch_jobs(2, np.random.default_rng(2), sizes=(2.0,)))
        env = SchedulingEnvironment(SimulatorConfig(num_executors=4, seed=0))
        result = run_episode(env, FIFOScheduler(), jobs, record_delays=True)
        assert len(result.scheduling_delays) == result.num_actions
