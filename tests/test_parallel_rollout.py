"""Tests for the rollout-backend seam: serial/parallel equivalence, the
worker pool's lifecycle, and regression guards on the trainer's defaults."""

import copy

import numpy as np
import pytest

from _helpers import make_training_setup
from repro.core import (
    DecimaAgent,
    DecimaConfig,
    EpisodeSpec,
    ParallelRolloutBackend,
    ReinforceTrainer,
    RolloutWorkerPool,
    SerialRolloutBackend,
    TrainingConfig,
    agent_spec,
    build_agent,
)
from repro.core.parallel import outcome_from_trajectory, run_episode
from repro.experiments.training import tpch_batch_factory, train_decima_agent
from repro.simulator import SimulatorConfig
from repro.workloads import batched_arrivals, sample_tpch_jobs


def small_setup(seed=0):
    return make_training_setup(seed=seed, num_executors=5)


def train_params(backend=None, **overrides):
    config, agent, factory = small_setup()
    defaults = dict(
        num_iterations=2,
        episodes_per_iteration=2,
        initial_episode_time=400.0,
        max_actions_per_episode=60,
        seed=0,
    )
    defaults.update(overrides)
    trainer = ReinforceTrainer(
        agent, config, factory, TrainingConfig(**defaults), backend=backend
    )
    with trainer:
        history = trainer.train()
    return [p.data.copy() for p in agent.parameters()], history


class TestAgentSpec:
    def test_build_agent_matches_architecture(self):
        _, agent, _ = small_setup(seed=3)
        clone = build_agent(agent_spec(agent), state=agent.state_dict())
        assert clone.num_parameters() == agent.num_parameters()
        for p, q in zip(agent.parameters(), clone.parameters()):
            assert np.array_equal(p.data, q.data)

    def test_spec_is_decoupled_from_source_agent(self):
        _, agent, _ = small_setup()
        spec = agent_spec(agent)
        agent.config.embedding_dim = 999
        assert spec.config.embedding_dim != 999


class TestSerialBackend:
    def test_default_backend_is_serial(self):
        config, agent, factory = small_setup()
        trainer = ReinforceTrainer(agent, config, factory)
        assert isinstance(trainer.backend, SerialRolloutBackend)

    def test_explicit_serial_backend_matches_default(self):
        params_default, history_default = train_params(backend=None)
        params_serial, history_serial = train_params(backend=SerialRolloutBackend())
        for p, q in zip(params_default, params_serial):
            assert np.array_equal(p, q)
        assert np.array_equal(history_default.rewards(), history_serial.rewards())

    def test_fixed_seed_training_is_deterministic(self):
        params_a, _ = train_params()
        params_b, _ = train_params()
        for p, q in zip(params_a, params_b):
            assert np.array_equal(p, q)


class TestPooledEpisodeEquivalence:
    def test_pooled_episode_matches_in_process_run(self):
        """An episode collected through the worker pool is bit-identical to the
        same EpisodeSpec run in-process: pooled collection only moves work, it
        never changes results."""
        config, agent, _ = small_setup()
        rng = np.random.default_rng(7)
        jobs = batched_arrivals(sample_tpch_jobs(2, rng, sizes=(2.0,)))
        spec = EpisodeSpec(
            jobs=copy.deepcopy(jobs),
            episode_time=400.0,
            env_seed=11,
            action_seed=13,
            max_actions=60,
        )
        local = outcome_from_trajectory(
            run_episode(agent, config, copy.deepcopy(spec))
        )
        with RolloutWorkerPool(config, agent_spec(agent), num_workers=1) as pool:
            payload = (agent.state_dict(), None, [spec])
            (outcomes,) = pool.run("collect", [payload])
        pooled = outcomes[0]
        assert np.array_equal(local.rewards, pooled.rewards)
        assert np.array_equal(local.wall_times, pooled.wall_times)
        assert local.num_finished_jobs == pooled.num_finished_jobs

    def test_parallel_training_invariant_to_worker_count(self):
        params_one, history_one = train_params(
            backend=ParallelRolloutBackend(num_workers=1, seed=0)
        )
        params_three, history_three = train_params(
            backend=ParallelRolloutBackend(num_workers=3, seed=0)
        )
        for p, q in zip(params_one, params_three):
            assert np.array_equal(p, q)
        assert np.array_equal(history_one.rewards(), history_three.rewards())

    def test_parallel_history_matches_serial_shape_and_semantics(self):
        params_serial, serial = train_params(backend=SerialRolloutBackend())
        params_parallel, parallel = train_params(
            backend=ParallelRolloutBackend(num_workers=2, seed=0)
        )
        assert len(parallel.iterations) == len(serial.iterations)
        assert parallel.rewards().shape == serial.rewards().shape
        for stats in parallel.iterations:
            assert np.isfinite(stats.mean_total_reward)
            assert stats.mean_num_actions > 0
            assert stats.mean_finished_jobs >= 0
            assert stats.episode_time > 0
        # The parallel stream differs from serial (episode seeds are drawn up
        # front), but learning still happens: parameters moved from init.
        init = DecimaAgent(total_executors=5, config=DecimaConfig(seed=0))
        assert any(
            not np.allclose(p, q)
            for p, q in zip(params_parallel, [x.data for x in init.parameters()])
        )


class TestWorkerPoolLifecycle:
    def test_pool_persists_across_iterations(self):
        config, agent, factory = small_setup()
        backend = ParallelRolloutBackend(num_workers=2, seed=0)
        trainer = ReinforceTrainer(
            agent,
            config,
            factory,
            TrainingConfig(
                num_iterations=2,
                episodes_per_iteration=2,
                initial_episode_time=300.0,
                max_actions_per_episode=40,
                seed=0,
            ),
            backend=backend,
        )
        with trainer:
            trainer.train_iteration(0)
            pool_after_first = backend.pool
            assert pool_after_first is not None and pool_after_first.is_alive
            trainer.train_iteration(1)
            assert backend.pool is pool_after_first
        assert backend.pool is None
        assert not pool_after_first.is_alive

    def test_close_is_idempotent_and_collect_restarts_pool(self):
        config, agent, _ = small_setup()
        backend = ParallelRolloutBackend(num_workers=2, seed=0)
        trainer = ReinforceTrainer(
            agent,
            config,
            tpch_batch_factory(2, sizes=(2.0,)),
            TrainingConfig(
                num_iterations=1,
                episodes_per_iteration=2,
                initial_episode_time=300.0,
                max_actions_per_episode=40,
                seed=0,
            ),
            backend=backend,
        )
        trainer.train_iteration(0)
        backend.close()
        backend.close()
        # A new iteration transparently restarts the pool.
        stats = trainer.train_iteration(1)
        assert backend.pool is not None and backend.pool.is_alive
        assert stats.mean_num_actions > 0
        backend.close()

    def test_worker_error_propagates(self):
        config, agent, _ = small_setup()
        with RolloutWorkerPool(config, agent_spec(agent), num_workers=1) as pool:
            with pytest.raises(RuntimeError, match="rollout worker 0 failed"):
                pool.run("collect", [({"param_0": np.zeros(1)}, None, [])])

    def test_closed_pool_rejects_work(self):
        config, agent, _ = small_setup()
        pool = RolloutWorkerPool(config, agent_spec(agent), num_workers=1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.run("collect", [(agent.state_dict(), None, [])])

    def test_invalid_worker_count_rejected(self):
        config, agent, _ = small_setup()
        with pytest.raises(ValueError):
            RolloutWorkerPool(config, agent_spec(agent), num_workers=0)
        with pytest.raises(ValueError):
            ParallelRolloutBackend(num_workers=0)


class TestTrainDecimaAgentWorkers:
    def test_num_workers_flows_through_helper(self):
        config = SimulatorConfig(num_executors=5, seed=0)
        agent, history = train_decima_agent(
            config,
            tpch_batch_factory(2, sizes=(2.0,)),
            num_iterations=1,
            episodes_per_iteration=2,
            training_config=TrainingConfig(
                max_actions_per_episode=40, initial_episode_time=300.0, seed=0
            ),
            seed=0,
            num_workers=2,
        )
        assert len(history.iterations) == 1
        assert history.iterations[0].mean_num_actions > 0

    def test_non_positive_worker_count_rejected(self):
        config = SimulatorConfig(num_executors=5, seed=0)
        with pytest.raises(ValueError, match="num_workers"):
            train_decima_agent(
                config,
                tpch_batch_factory(2, sizes=(2.0,)),
                num_iterations=1,
                episodes_per_iteration=1,
                num_workers=0,
            )


class TestTrainingConfigDefaults:
    def test_defaults_are_unchanged(self):
        """Regression guard: the backend refactor must not move hyper-parameters."""
        config = TrainingConfig()
        assert config.num_iterations == 50
        assert config.episodes_per_iteration == 4
        assert config.learning_rate == 1e-3
        assert config.entropy_weight == 0.01
        assert config.entropy_decay == 0.95
        assert config.normalize_advantages is True
        assert config.initial_episode_time == 200.0
        assert config.episode_time_growth == 20.0
        assert config.max_episode_time == 5_000.0
        assert config.use_input_dependent_baseline is True
        assert config.fix_job_sequence_per_iteration is True
        assert config.use_differential_reward is True
        assert config.reward_baseline_momentum == 0.05
        assert config.max_actions_per_episode == 3_000
        assert config.seed == 0
